//! The machine room: every system of the paper's Table 1 plus the SX-4,
//! measured on three very different yardsticks — RADABS (vector-friendly),
//! HINT (scalar/cache-friendly) and STREAM triad (raw memory bandwidth).
//! This is the paper's §3 argument as a runnable program: a single
//! benchmark number cannot rank machines; the workload decides.
//!
//! Run with: `cargo run --release --example machine_room`

use ncar_sx4::kernels::radabs::radabs_benchmark;
use ncar_sx4::others::hint_mquips;
use ncar_sx4::others::stream::{run_op, StreamOp};
use ncar_sx4::sim::presets;

fn main() {
    let machines = std::iter::once(presets::sx4_benchmarked())
        .chain(presets::table1_machines())
        .collect::<Vec<_>>();

    println!("{:<22} {:>14} {:>12} {:>14}", "machine", "RADABS MF", "HINT MQUIPS", "STREAM MB/s");
    let mut rows = Vec::new();
    for m in &machines {
        let radabs = radabs_benchmark(m);
        let hint = hint_mquips(m);
        let stream = run_op(m, StreamOp::Triad, 500_000).mb_per_s;
        println!("{:<22} {radabs:>14.1} {hint:>12.2} {stream:>14.0}", m.name.clone());
        rows.push((m.name.clone(), radabs, hint));
    }

    // The §3.3 punchline, computed live:
    let sparc = rows.iter().find(|r| r.0.contains("SPARC")).unwrap();
    let ymp = rows.iter().find(|r| r.0.contains("Y-MP")).unwrap();
    println!(
        "\nHINT ranks the SPARC20 ({:.1} MQUIPS) above the Y-MP ({:.1}), while RADABS says the \
         Y-MP is {:.0}x faster — \"HINT is better tuned to measuring scalar processor \
         performance than the performance of vector processors.\"",
        sparc.2,
        ymp.2,
        ymp.1 / sparc.1
    );
}
