//! A day in the SX-4 machine room: submit a batch mix through NQS with
//! Resource Blocks, checkpoint a long run mid-flight, let SXBackStore
//! migrate cold history tapes, and watch the MLS policy gate who can read
//! what — the SUPER-UX feature list of paper §2.6 as one program.
//!
//! Run with: `cargo run --release --example operations_day`

use ncar_sx4::climate::history::{checkpoint, read_checkpoint, restore};
use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::os::mls::{check_read, Decision, Policy};
use ncar_sx4::os::nqs::{JobSpec, Nqs, ResourceBlock};
use ncar_sx4::os::{BackStore, Sfs};
use ncar_sx4::sim::{presets, Node};

fn main() {
    let machine = presets::sx4_benchmarked();
    let node = Node::new(machine.clone());

    // --- morning: configure Resource Blocks and submit the batch mix -----
    let nqs = Nqs::with_blocks(
        &node,
        vec![
            ResourceBlock { name: "interactive".into(), procs: 4, memory_bytes: 4 << 30 },
            ResourceBlock { name: "batch".into(), procs: 28, memory_bytes: 4 << 30 },
        ],
    )
    .expect("4 + 28 processors fit the node");
    let mut jobs = vec![JobSpec {
        name: "ccm2-production".into(),
        procs: 16,
        memory_bytes: 2 << 30,
        solo_seconds: 3600.0,
        bytes_per_cycle_per_proc: 35.0,
        block: 1,
        after: vec![],
    }];
    for i in 0..3 {
        jobs.push(JobSpec {
            name: format!("mom-test-{i}"),
            procs: 8,
            memory_bytes: 1 << 30,
            solo_seconds: 600.0,
            bytes_per_cycle_per_proc: 40.0,
            block: 1,
            after: vec![],
        });
    }
    jobs.push(JobSpec {
        name: "analysis-session".into(),
        procs: 4,
        memory_bytes: 256 << 20,
        solo_seconds: 120.0,
        bytes_per_cycle_per_proc: 10.0,
        block: 0,
        after: vec![],
    });
    let schedule = nqs.run(&jobs).expect("the day's mix is schedulable");
    println!("NQS schedule (32-processor node, 4-proc interactive block):");
    for (job, rec) in jobs.iter().zip(&schedule.records) {
        println!(
            "  {:<18} {:>3} procs   start {:>8.1}s   end {:>8.1}s",
            job.name, job.procs, rec.start_s, rec.end_s
        );
    }
    println!("  makespan: {:.1} s\n", schedule.makespan_s);

    // --- midday: checkpoint the climate run and restart it ---------------
    let mut model = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), machine.clone());
    for _ in 0..3 {
        model.step(16);
    }
    let record = checkpoint(&model);
    let mut fs = Sfs::benchmarked();
    let io = fs.write(0.0, record.len() as u64, 64);
    println!(
        "checkpoint: {:.1} MB written through SFS, application blocked {:.0} ms (durable after {:.2} s)",
        record.len() as f64 / 1e6,
        io.blocked_s * 1e3,
        io.durable_s
    );
    let parsed = read_checkpoint(&record, model.transform.nspec()).unwrap();
    let mut resumed = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), machine);
    restore(&mut resumed, &parsed);
    model.step(16);
    resumed.step(16);
    println!(
        "restart check: mean phi original {:.10} == resumed {:.10}\n",
        model.mean_phi(0),
        resumed.mean_phi(0)
    );

    // --- afternoon: SXBackStore migrates last season's history tapes -----
    let per_day = model.history_bytes_per_day();
    let mut store = BackStore::new(per_day * 30, 14.0 * 86400.0);
    for day in 0..90u64 {
        let now = day as f64 * 86400.0;
        store.track(format!("h{day:03}"), per_day, now);
        store.sweep(now);
    }
    println!(
        "SXBackStore after 90 days of history: {:.1} GB online (cap {:.1} GB), old tapes on mass storage",
        store.online_bytes() as f64 / 1e9,
        (per_day * 30) as f64 / 1e9
    );
    let recall = store.access("h000", 91.0 * 86400.0).unwrap();
    println!("  recalling day-0 tape stalls the reader {:.1} s over HIPPI\n", recall.stall_s);

    // --- evening: the MLS audit ------------------------------------------
    let policy = Policy::site_default();
    let operator = policy.label("classified", &["climate"]).unwrap();
    let visitor = policy.label("public", &[]).unwrap();
    let tape = policy.label("restricted", &["climate"]).unwrap();
    println!("MLS: operator reads restricted/climate tape: {:?}", check_read(&operator, &tape));
    println!("MLS: visitor  reads restricted/climate tape: {:?}", check_read(&visitor, &tape));
    assert_eq!(check_read(&visitor, &tape), Decision::Deny);
}
