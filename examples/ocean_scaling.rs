//! Ocean models: MOM fixed-size scaling (the shape of the paper's Table 7)
//! at the low "porting verification" resolution, and the POP CSHIFT
//! compiler ablation (§4.7.3).
//!
//! Run with: `cargo run --release --example ocean_scaling`

use ncar_sx4::ocean::{Mom, MomConfig, Pop, PopConfig};
use ncar_sx4::sim::presets;

fn main() {
    println!("MOM (3-degree, 25 levels), 40 time steps:");
    println!("{:>6} {:>12} {:>9}", "CPUs", "seconds", "speedup");
    let mut base = None;
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let mut m = Mom::new(MomConfig::low_resolution(), presets::sx4_benchmarked());
        let secs = m.run(40, procs);
        let one = *base.get_or_insert(secs);
        println!("{procs:>6} {secs:>12.2} {:>9.2}", one / secs);
    }

    println!("\nPOP (2-degree), 5 steps on one processor:");
    for (label, vectorized) in
        [("scalar CSHIFT (pre-release F90)", false), ("vectorized CSHIFT", true)]
    {
        let mut cfg = PopConfig::two_degree();
        cfg.cshift_vectorized = vectorized;
        let mut p = Pop::new(cfg, presets::sx4_benchmarked());
        let rate = p.mflops(5);
        println!("  {label:<34} {rate:>7.0} Mflops");
    }
    println!("  paper (scalar CSHIFT)                  537 Mflops");
}
