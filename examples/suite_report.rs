//! One-page suite report: run a quick instance of every NCAR benchmark on
//! the simulated SX-4, grade the headline anchors on the paper scorecard,
//! and print the audit — the "did the reproduction hold" view.
//!
//! Run with: `cargo run --release --example suite_report`

use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::kernels::elefunt;
use ncar_sx4::kernels::fft::{run_fft_point, LoopOrder};
use ncar_sx4::kernels::membw::{run_point, MembwKind};
use ncar_sx4::kernels::paranoia;
use ncar_sx4::kernels::radabs::radabs_benchmark;
use ncar_sx4::ocean::{Mom, MomConfig, Pop, PopConfig};
use ncar_sx4::os::iobench::hippi_test_seconds;
use ncar_sx4::sim::presets;
use ncar_sx4::suite::{suite, Instance, PaperAnchor, Scorecard, Tolerance};

fn main() {
    let m = presets::sx4_benchmarked();
    println!("NCAR Benchmark Suite — quick pass on {}\n", m.name);

    println!("{:<10} {:<38} {:>14}", "benchmark", "what ran", "result");
    let row = |name: &str, what: &str, result: String| {
        println!("{name:<10} {what:<38} {result:>14}");
    };

    for entry in suite() {
        match entry.name {
            "PARANOIA" => row(
                "PARANOIA",
                "arithmetic battery",
                if paranoia::run().passed() { "PASSED".into() } else { "FAILED".into() },
            ),
            "ELEFUNT" => {
                let (ok, _) = elefunt::accuracy_suite();
                let exp = elefunt::mcalls_per_second(&m, ncar_sx4::sim::Intrinsic::Exp, 100_000);
                row(
                    "ELEFUNT",
                    "accuracy + EXP throughput",
                    format!("{} / {exp:.0} Mc/s", if ok { "PASS" } else { "FAIL" }),
                );
            }
            "COPY" => row(
                "COPY",
                "1 MB unit-stride copy",
                format!(
                    "{:.0} MB/s",
                    run_point(&m, MembwKind::Copy, Instance { n: 131_072, m: 8 }, 2).mb_per_s
                ),
            ),
            "IA" => row(
                "IA",
                "1 MB gather",
                format!(
                    "{:.0} MB/s",
                    run_point(&m, MembwKind::Ia, Instance { n: 131_072, m: 8 }, 2).mb_per_s
                ),
            ),
            "XPOSE" => row(
                "XPOSE",
                "512x512 transposes",
                format!(
                    "{:.0} MB/s",
                    run_point(&m, MembwKind::Xpose, Instance { n: 512, m: 4 }, 2).mb_per_s
                ),
            ),
            "RFFT" => row(
                "RFFT",
                "N=256, scalar loop order",
                format!("{:.0} Mflops", run_fft_point(&m, 256, 500, LoopOrder::AxisFastest).mflops),
            ),
            "VFFT" => row(
                "VFFT",
                "N=256, M=500, vector order",
                format!(
                    "{:.0} Mflops",
                    run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest).mflops
                ),
            ),
            "RADABS" => row(
                "RADABS",
                "full-grid radiation physics",
                format!("{:.0} CrayMF", radabs_benchmark(&m)),
            ),
            "I/O" => row("I/O", "T42 history tape", "see io exp".into()),
            "HIPPI" => row("HIPPI", "packet ladder", format!("{:.0} s", hippi_test_seconds())),
            "NETWORK" => row("NETWORK", "FDDI command list", "see network".into()),
            "PRODLOAD" => row("PRODLOAD", "job-mix DES", "see prodload".into()),
            "CCM2" => {
                let mut model = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), m.clone());
                model.step(8);
                let t = model.step(8);
                row("CCM2", "T42L18 step on 8 procs", format!("{:.3} sim s", t.seconds));
            }
            "MOM" => {
                let mut model = Mom::new(MomConfig::low_resolution(), m.clone());
                row("MOM", "3-deg step on 8 procs", format!("{:.3} sim s", model.step(8).seconds));
            }
            "POP" => {
                let mut model = Pop::new(PopConfig::two_degree(), m.clone());
                row(
                    "POP",
                    "2-deg Mflops (scalar CSHIFT)",
                    format!("{:.0} Mflops", model.mflops(2)),
                );
            }
            _ => {}
        }
    }

    // Grade the two fastest headline anchors live.
    let mut sc = Scorecard::new();
    sc.record(
        PaperAnchor::new("§4.4", "RADABS Cray-equiv Mflops", 865.9, Tolerance::Percent(15.0)),
        radabs_benchmark(&m),
    );
    let mut pop = Pop::new(PopConfig::two_degree(), m);
    sc.record(
        PaperAnchor::new("§4.7.3", "POP Mflops", 537.0, Tolerance::Factor(1.8)),
        pop.mflops(2),
    );
    println!("\n{}", sc.render());
    if sc.all_pass() {
        println!("headline anchors: all in band");
    }
}
