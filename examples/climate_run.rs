//! Run the CCM2 proxy for a simulated day at T42L18 on 8 processors of the
//! simulated SX-4/32, reporting conservation diagnostics and sustained
//! performance — the workload behind the paper's Figure 8 and Table 5.
//!
//! Run with: `cargo run --release --example climate_run`

use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::sim::presets;

fn main() {
    let res = Resolution::T42;
    let procs = 8;
    let machine = presets::sx4_benchmarked();
    let clock = machine.clock_ns;
    let mut model = Ccm2Proxy::new(Ccm2Config::benchmark(res), machine);

    println!(
        "CCM2 proxy {} on {procs} processors ({} steps/day, dt = {} min)",
        res.name(),
        res.steps_per_day(),
        res.timestep_minutes()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "step", "mean phi (0)", "energy (0)", "moisture", "sim s/step", "CrayGF"
    );

    let steps = res.steps_per_day(); // one model day
    let mut total_seconds = 0.0;
    for step in 1..=steps {
        let t = model.step(procs);
        total_seconds += t.seconds;
        if step % 12 == 0 || step == 1 {
            println!(
                "{step:>6} {:>14.4} {:>14.4e} {:>14.6} {:>12.4} {:>10.2}",
                model.mean_phi(0),
                model.energy(0),
                model.total_moisture(),
                t.seconds,
                t.timing.cray_gflops(clock)
            );
        }
    }
    println!(
        "\none simulated day took {total_seconds:.1} machine-seconds on the simulated SX-4 \
         ({:.1} machine-minutes per model year)",
        total_seconds * 365.0 / 60.0
    );
    println!(
        "history volume: {:.1} MB/day written through SFS",
        model.history_bytes_per_day() as f64 / 1e6
    );
}
