//! Quickstart: simulate a few operations on the benchmarked SX-4, compare
//! against the paper's comparison machines, and price a multi-node
//! exchange over the IXS.
//!
//! Run with: `cargo run --release --example quickstart`

use ncar_sx4::kernels::radabs::radabs_benchmark;
use ncar_sx4::sim::{presets, Ixs, Vm};

fn main() {
    // --- one processor of the February-1996 benchmark system ------------
    let machine = presets::sx4_benchmarked();
    println!("machine: {}", machine.name);
    println!(
        "  peak {:.2} Gflops/processor, {} processors/node",
        machine.peak_gflops_per_proc(),
        machine.procs
    );

    let mut vm = Vm::new(machine.clone());
    let n = 1 << 20;
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    vm.add(&mut c, &a, &b);
    vm.mul(&mut c, &a, &b);
    let t = vm.take_cost();
    println!(
        "  2 x {n}-element vector ops: {:.1} simulated microseconds ({:.0} Mflops)",
        t.seconds(machine.clock_ns) * 1e6,
        t.mflops(machine.clock_ns)
    );

    let mut ex = vec![0.0f64; n];
    vm.exp(&mut ex, &a);
    let t = vm.take_cost();
    println!(
        "  vectorized EXP over {n} elements: {:.1} simulated microseconds ({:.1} Mcalls/s)",
        t.seconds(machine.clock_ns) * 1e6,
        n as f64 / t.seconds(machine.clock_ns) / 1e6
    );

    // --- the RADABS yardstick across the paper's machines ----------------
    println!("\nRADABS (Cray Y-MP equivalent Mflops):");
    for m in std::iter::once(machine).chain(presets::table1_machines()) {
        println!("  {:<22} {:>8.1}", m.name.clone(), radabs_benchmark(&m));
    }

    // --- the PROGINF epilogue for this processor --------------------------
    println!();
    print!("{}", vm.proginf());

    // --- a multi-node exchange over the IXS ------------------------------
    println!("\nIXS internode crossbar:");
    for nodes in [2usize, 4, 16] {
        let ixs = Ixs::new(nodes);
        let secs = ixs.all_to_all_seconds(64 << 20);
        println!(
            "  {nodes:>2}-node all-to-all of 64 MB/pair: {:.1} ms (barrier {:.1} us)",
            secs * 1e3,
            ixs.barrier_seconds() * 1e6
        );
    }
}
