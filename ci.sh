#!/usr/bin/env bash
# Local CI gate. Everything runs offline against the committed Cargo.lock —
# the build is hermetic (zero external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo clippy --offline --workspace --all-targets --features sxcheck/audit,ncar-bench/audit -- -D warnings

echo "==> cargo test"
cargo test --offline --workspace -q
cargo test --offline -q -p sxcheck -p ncar-bench --features sxcheck/audit,ncar-bench/audit

echo "==> ncar-bench check --deny-warnings (fixtures must flag, reports deterministic)"
out1="$(cargo run --offline -q -p ncar-bench --features audit -- check --deny-warnings)" && rc=0 || rc=$?
# Findings are expected (the seeded pathologies report), so --deny-warnings
# must fail with exit 1; exit 2 would mean the checker missed a pathology.
if [ "$rc" -ne 1 ]; then
    echo "expected exit 1 from check --deny-warnings, got $rc" >&2
    exit 1
fi
out2="$(cargo run --offline -q -p ncar-bench --features audit -- check --deny-warnings)" || true
if [ "$out1" != "$out2" ]; then
    echo "check report is not byte-identical across runs" >&2
    exit 1
fi

echo "==> CI OK"
