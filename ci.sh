#!/usr/bin/env bash
# Local CI gate. Everything runs offline against the committed Cargo.lock —
# the build is hermetic (zero external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo clippy --offline --workspace --all-targets --features sxcheck/audit,ncar-bench/audit -- -D warnings
cargo clippy --offline --workspace --all-targets --features sxd/faults,ncar-bench/faults -- -D warnings
cargo clippy --offline --workspace --all-targets --features ncar-suite/lockcheck,sxd/lockcheck -- -D warnings

echo "==> cargo test"
cargo test --offline --workspace -q
cargo test --offline -q -p sxcheck -p ncar-bench --features sxcheck/audit,ncar-bench/audit

echo "==> reactor unit + lifecycle regressions (decoder parity, timer wheel, conn churn, fd hygiene)"
cargo test --offline -q -p ncar-suite reactor
cargo test --offline -q -p sxd --test reactor_lifecycle

echo "==> lock-order audit (lockcheck feature: registry round-trip + flooded daemon AND cluster graphs)"
cargo test --offline -q -p ncar-suite -p sxd --features ncar-suite/lockcheck,sxd/lockcheck

echo "==> crash-recovery fault matrix (SXD_FAULTPOINT, kill-and-restart at every point)"
cargo test --offline -q -p ncar-bench --features faults --test crash_recovery

echo "==> ncar-bench check --deny-warnings (fixtures must flag, reports deterministic)"
out1="$(cargo run --offline -q -p ncar-bench --features audit -- check --deny-warnings)" && rc=0 || rc=$?
# Findings are expected (the seeded pathologies report), so --deny-warnings
# must fail with exit 1; exit 2 would mean the checker missed a pathology.
if [ "$rc" -ne 1 ]; then
    echo "expected exit 1 from check --deny-warnings, got $rc" >&2
    exit 1
fi
out2="$(cargo run --offline -q -p ncar-bench --features audit -- check --deny-warnings)" || true
if [ "$out1" != "$out2" ]; then
    echo "check report is not byte-identical across runs" >&2
    exit 1
fi

echo "==> ncar-bench check --matrix --deny-warnings (baseline gates only new findings)"
# Every preset x stock kernel, gated against the committed sxcheck.baseline:
# known findings are suppressed, any NEW finding fails this stage.
cargo run --offline -q -p ncar-bench -- check --matrix --deny-warnings
# The machine-readable surface must parse as JSON (core::json is strict).
cargo run --offline -q -p ncar-bench -- check --matrix --json >/dev/null

echo "==> sxd smoke test (serve, cache hit, typed error, clean shutdown)"
cargo build --offline -q -p ncar-bench
bench="target/debug/ncar-bench"
smoke_log="$(mktemp)"
"$bench" serve --addr 127.0.0.1:0 >"$smoke_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$smoke_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "sxd never reported a listening address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
first="$("$bench" submit radabs --addr "$addr" --json true)"
second="$("$bench" submit radabs --addr "$addr" --json true)"
case "$first" in *'"cached":false'*) ;; *) echo "first submit should be uncached: $first" >&2; exit 1;; esac
case "$second" in *'"cached":true'*) ;; *) echo "second identical submit must hit the cache: $second" >&2; exit 1;; esac
if [ "$second" != "${first/\"cached\":false/\"cached\":true}" ]; then
    echo "cache hit is not byte-identical to the original reply" >&2
    exit 1
fi
garbage="$("$bench" raw 'this frame is not json' --addr "$addr")"
case "$garbage" in
    '{"ok":false,"error":{"kind":"bad_json"'*) ;;
    *) echo "malformed frame must get a typed bad_json reply: $garbage" >&2; exit 1;;
esac
echo "==> sxd metrics smoke (flood, then METRICS must reconcile and show coalescing)"
# fig5 is not in the result cache yet, so the flood's barrier-synchronized
# first wave must be deduplicated by single-flight coalescing, not the cache.
if ! "$bench" flood --addr "$addr" --clients 8 --jobs 64 --suite fig5; then
    echo "flood failed its acceptance checks" >&2
    exit 1
fi
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "METRICS snapshot must reconcile with STATS: $metrics" >&2; exit 1;;
esac
case "$metrics" in
    *'"coalesced":0,'*) echo "flood of one config must coalesce submits: $metrics" >&2; exit 1;;
    *'"coalesced":'*) ;;
    *) echo "METRICS must report the coalesced counter: $metrics" >&2; exit 1;;
esac
# The human rendering carries the FTRACE-style analysis list.
"$bench" metrics --addr "$addr" | grep -q 'FTRACE ANALYSIS LIST'

"$bench" shutdown --addr "$addr" >/dev/null
if ! wait "$serve_pid"; then
    echo "sxd did not exit 0 after graceful shutdown" >&2
    exit 1
fi
rm -f "$smoke_log"

echo "==> sxd crash-recovery smoke (flood, kill -9, restart on the same state dir, replayed cache)"
state_dir="$(mktemp -d)"
crash_log="$(mktemp)"
"$bench" serve --addr 127.0.0.1:0 --state-dir "$state_dir" >"$crash_log" 2>&1 &
crash_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$crash_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "durable sxd never reported a listening address" >&2
    kill "$crash_pid" 2>/dev/null || true
    exit 1
fi
if ! "$bench" flood --addr "$addr" --clients 8 --jobs 48 >/dev/null; then
    echo "pre-crash flood failed its acceptance checks" >&2
    exit 1
fi
before="$("$bench" submit radabs --addr "$addr" --json true)"
case "$before" in *'"cached":true'*) ;; *) echo "flooded config should already be cached: $before" >&2; exit 1;; esac
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
: >"$crash_log"
"$bench" serve --addr 127.0.0.1:0 --state-dir "$state_dir" >"$crash_log" 2>&1 &
crash_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$crash_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "restarted sxd never reported a listening address" >&2
    kill "$crash_pid" 2>/dev/null || true
    exit 1
fi
# Every configuration the flood completed must be a cache hit after the
# restart — the journal replay is the only thing that can make it one.
for s in fig5 radabs table3; do
    reply="$("$bench" submit "$s" --addr "$addr" --json true)"
    case "$reply" in
        *'"cached":true'*) ;;
        *) echo "post-restart submit of $s must replay from the journal: $reply" >&2; exit 1;;
    esac
done
after="$("$bench" submit radabs --addr "$addr" --json true)"
if [ "$after" != "$before" ]; then
    echo "replayed radabs result is not byte-identical to the pre-crash reply" >&2
    exit 1
fi
stats="$("$bench" stats --addr "$addr")"
case "$stats" in
    *'"replayed":3'*) ;;
    *) echo "restarted daemon must report three replayed journal records: $stats" >&2; exit 1;;
esac
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "restarted daemon's counters must reconcile: $metrics" >&2; exit 1;;
esac
# Exit through the new drain verb: nothing is pending, so it exits 0 fast.
"$bench" drain --addr "$addr" --deadline 5 >/dev/null
if ! wait "$crash_pid"; then
    echo "sxd did not exit 0 after drain" >&2
    exit 1
fi
rm -rf "$state_dir" "$crash_log"

echo "==> sxd reactor smoke (1k-connection flood against a durable daemon, reconciled METRICS, drain)"
reactor_dir="$(mktemp -d)"
reactor_log="$(mktemp)"
"$bench" serve --addr 127.0.0.1:0 --state-dir "$reactor_dir" --idle-timeout 30 >"$reactor_log" 2>&1 &
reactor_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$reactor_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "reactor-smoke sxd never reported a listening address" >&2
    kill "$reactor_pid" 2>/dev/null || true
    exit 1
fi
# 1000 concurrent connections through one reactor thread: every job must
# complete and the admission counters must reconcile under the load.
if ! "$bench" flood --addr "$addr" --clients 1000 --jobs 2000; then
    echo "1k-connection flood failed its acceptance checks" >&2
    exit 1
fi
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "METRICS must reconcile after the 1k-connection flood: $metrics" >&2; exit 1;;
esac
stats="$("$bench" stats --addr "$addr")"
case "$stats" in
    *'"conns":{'*) ;;
    *) echo "STATS must surface the reactor connection counters: $stats" >&2; exit 1;;
esac
"$bench" drain --addr "$addr" --deadline 5 >/dev/null
if ! wait "$reactor_pid"; then
    echo "sxd did not exit 0 after the reactor-smoke drain" >&2
    exit 1
fi
rm -rf "$reactor_dir" "$reactor_log"

echo "==> sxd pipelined-flood smoke (depth-8 pipeline against a durable daemon, fast path engaged)"
pipe_dir="$(mktemp -d)"
pipe_log="$(mktemp)"
"$bench" serve --addr 127.0.0.1:0 --state-dir "$pipe_dir" --pipeline-depth 8 >"$pipe_log" 2>&1 &
pipe_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$pipe_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "pipelined-flood sxd never reported a listening address" >&2
    kill "$pipe_pid" 2>/dev/null || true
    exit 1
fi
# Pipelined clients (8 frames in flight per connection) against a depth-8
# server: replies must stay in order and byte-identical (the flood's
# per-reply key check enforces this), counters must reconcile, and the
# repeat configurations must have been answered inline on the reactor
# thread — fastpath_hits is required to be positive.
if ! "$bench" flood --addr "$addr" --clients 8 --jobs 256 --suite fig5 --suite radabs --pipeline 8; then
    echo "pipelined flood failed its acceptance checks" >&2
    exit 1
fi
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "METRICS must reconcile after the pipelined flood: $metrics" >&2; exit 1;;
esac
case "$metrics" in
    *'"fastpath_hits":0,'*) echo "pipelined flood must engage the reactor fast path: $metrics" >&2; exit 1;;
    *'"fastpath_hits":'*) ;;
    *) echo "METRICS must report the fastpath_hits counter: $metrics" >&2; exit 1;;
esac
"$bench" drain --addr "$addr" --deadline 5 >/dev/null
if ! wait "$pipe_pid"; then
    echo "sxd did not exit 0 after the pipelined-flood drain" >&2
    exit 1
fi
rm -rf "$pipe_dir" "$pipe_log"

echo "==> sxd cluster smoke (3 shards, routed flood, member drain + keyspace hand-off)"
cluster_dir="$(mktemp -d)"
cluster_log="$(mktemp)"
"$bench" serve --addr 127.0.0.1:0 --cluster 3 --state-dir "$cluster_dir" >"$cluster_log" 2>&1 &
cluster_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^sxd listening on //p' "$cluster_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "cluster router never reported a listening address" >&2
    kill "$cluster_pid" 2>/dev/null || true
    exit 1
fi
grep -q '^sxd cluster: 3 shards on ' "$cluster_log" || {
    echo "cluster serve must announce its members" >&2
    exit 1
}
# Routed flood across the default suites: the merged counters must
# reconcile across members exactly as a single daemon's do.
if ! "$bench" flood --addr "$addr" --clients 8 --jobs 48; then
    echo "routed flood failed its acceptance checks" >&2
    exit 1
fi
# Spread distinct configs over the ring so every shard journals a slice
# of the keyspace before the membership change.
for n in 0 1 2 3 4 5 6 7; do
    "$bench" submit fig5 --addr "$addr" --param "n=$n" --json true >/dev/null
done
routed="$("$bench" submit radabs --addr "$addr" --show-route true --json true)"
case "$routed" in
    'route: member='*) ;;
    *) echo "submit --show-route must print the shard placement first: $routed" >&2; exit 1;;
esac
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "cluster METRICS must reconcile across members: $metrics" >&2; exit 1;;
esac
# Drain shard 0: the router hands its journal to the ring successors
# before acknowledging, so every config — including shard 0's — must
# still answer from a surviving member's cache.
"$bench" drain --addr "$addr" --member 0 --deadline 5 >/dev/null
for s in fig5 radabs table3; do
    reply="$("$bench" submit "$s" --addr "$addr" --json true)"
    case "$reply" in
        *'"cached":true'*) ;;
        *) echo "post-drain submit of $s must hit a surviving cache: $reply" >&2; exit 1;;
    esac
done
for n in 0 1 2 3 4 5 6 7; do
    reply="$("$bench" submit fig5 --addr "$addr" --param "n=$n" --json true)"
    case "$reply" in
        *'"cached":true'*) ;;
        *) echo "post-drain submit of fig5 n=$n must hit a surviving cache: $reply" >&2; exit 1;;
    esac
done
stats="$("$bench" stats --addr "$addr")"
case "$stats" in
    *'"members_alive":2'*) ;;
    *) echo "router stats must show 2 surviving members: $stats" >&2; exit 1;;
esac
metrics="$("$bench" metrics --addr "$addr" --json true)"
case "$metrics" in
    *'"reconciled":true'*) ;;
    *) echo "cluster METRICS must still reconcile after the hand-off: $metrics" >&2; exit 1;;
esac
"$bench" shutdown --addr "$addr" >/dev/null
if ! wait "$cluster_pid"; then
    echo "cluster did not exit 0 after shutdown" >&2
    exit 1
fi
rm -rf "$cluster_dir" "$cluster_log"

echo "==> perf smoke (release harness, schema validation, batched-vs-loop equivalence)"
# The equivalence property tests — including charge-program record/replay —
# must also hold under release-mode float optimization: bit-identical
# ledgers are the whole point.
cargo test --offline -q -p sxsim --release --test batch_props
cargo test --offline -q -p ccm-proxy --release program_tests
cargo test --offline -q -p ocean-models --release program_tests
cargo build --offline -q --release -p ncar-bench
perf_json="$(mktemp)"
target/release/ncar-bench perf --smoke --out "$perf_json" >/dev/null
target/release/ncar-bench perf --validate "$perf_json"
rm -f "$perf_json"
# The committed baseline must stay schema-valid too.
target/release/ncar-bench perf --validate BENCH_7.json

echo "==> CI OK"
