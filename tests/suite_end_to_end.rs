//! End-to-end integration: run a small instance of every benchmark in the
//! suite, across crates, the way the harness does — and check the suite's
//! own bookkeeping.

use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::kernels::elefunt;
use ncar_sx4::kernels::fft::{run_fft_point, LoopOrder};
use ncar_sx4::kernels::membw::{run_point, MembwKind};
use ncar_sx4::kernels::paranoia;
use ncar_sx4::kernels::radabs::radabs_mflops;
use ncar_sx4::ocean::{Mom, MomConfig, Pop, PopConfig};
use ncar_sx4::os::iobench::{hippi_benchmark, io_benchmark, network_table};
use ncar_sx4::os::prodload::{prodload, CcmRates};
use ncar_sx4::others::stream::stream_table;
use ncar_sx4::others::{hint_mquips, linpack};
use ncar_sx4::sim::{presets, Node};
use ncar_sx4::suite::{suite, Category, Instance};

/// Every benchmark in the suite's table has a runnable implementation.
#[test]
fn every_suite_entry_is_executable() {
    let m = presets::sx4_benchmarked();
    for entry in suite() {
        match entry.name {
            "PARANOIA" => assert!(paranoia::run().passed()),
            "ELEFUNT" => {
                let (ok, _) = elefunt::accuracy_suite();
                assert!(ok);
                assert!(
                    elefunt::mcalls_per_second(&m, ncar_sx4::sim::Intrinsic::Exp, 10_000) > 0.0
                );
            }
            "COPY" => assert!(
                run_point(&m, MembwKind::Copy, Instance { n: 4096, m: 4 }, 2).mb_per_s > 0.0
            ),
            "IA" => {
                assert!(run_point(&m, MembwKind::Ia, Instance { n: 4096, m: 4 }, 2).mb_per_s > 0.0)
            }
            "XPOSE" => {
                assert!(run_point(&m, MembwKind::Xpose, Instance { n: 64, m: 4 }, 2).mb_per_s > 0.0)
            }
            "RFFT" => assert!(run_fft_point(&m, 64, 100, LoopOrder::AxisFastest).mflops > 0.0),
            "VFFT" => assert!(run_fft_point(&m, 64, 100, LoopOrder::InstanceFastest).mflops > 0.0),
            "RADABS" => assert!(radabs_mflops(&m, 256, 1) > 0.0),
            "I/O" => assert_eq!(io_benchmark().len(), 5),
            "HIPPI" => assert_eq!(hippi_benchmark().len(), 2),
            "NETWORK" => assert!(!network_table().rows.is_empty()),
            "PRODLOAD" => {
                let node = Node::new(m.clone());
                assert!(prodload(&node, &CcmRates::synthetic()).total_seconds > 0.0);
            }
            "CCM2" => {
                let mut model = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), m.clone());
                assert!(model.step(4).seconds > 0.0);
            }
            "MOM" => {
                let mut model = Mom::new(
                    MomConfig {
                        nlat: 16,
                        nlon: 32,
                        nlev: 4,
                        dt: 3600.0,
                        diag_every: 10,
                        jacobi_sweeps: 5,
                    },
                    m.clone(),
                );
                assert!(model.step(4).seconds > 0.0);
            }
            "POP" => {
                let mut model = Pop::new(PopConfig::tiny(), m.clone());
                assert!(model.step(2).seconds > 0.0);
            }
            other => panic!("unknown suite entry {other}"),
        }
    }
}

/// The seven categories of §4 are all populated.
#[test]
fn categories_cover_section_four() {
    let s = suite();
    for cat in [
        Category::Correctness,
        Category::MemoryBandwidth,
        Category::CodingStyle,
        Category::RawPerformance,
        Category::InputOutput,
        Category::ProductionMix,
        Category::Applications,
    ] {
        assert!(s.iter().any(|e| e.category == cat), "{cat:?} is empty");
    }
}

/// The §3 comparison suites run on every machine model.
#[test]
fn comparison_suites_run_everywhere() {
    for m in presets::table1_machines() {
        assert!(hint_mquips(&m) > 0.0, "{}", m.name);
        assert!(linpack(&m, 50).mflops > 0.0, "{}", m.name);
        assert!(stream_table(&m).iter().all(|r| r.mb_per_s > 0.0), "{}", m.name);
    }
}

/// Simulated results are identical across repeated runs (no wall clocks,
/// fixed seeds) — the property KTRIES best-of relies on.
#[test]
fn whole_pipeline_deterministic() {
    let m = presets::sx4_benchmarked();
    let a = radabs_mflops(&m, 512, 1);
    let b = radabs_mflops(&m, 512, 1);
    assert_eq!(a, b);

    let p1 = run_fft_point(&m, 48, 20, LoopOrder::InstanceFastest);
    let p2 = run_fft_point(&m, 48, 20, LoopOrder::InstanceFastest);
    assert_eq!(p1.cost.cycles, p2.cost.cycles);

    let mut c1 = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), m.clone());
    let mut c2 = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), m);
    let s1 = c1.step(8);
    let s2 = c2.step(8);
    assert_eq!(s1.timing.wall_cycles, s2.timing.wall_cycles);
    assert_eq!(c1.mean_phi(0), c2.mean_phi(0));
}
