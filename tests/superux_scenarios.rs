//! Operating-software scenarios spanning crates: checkpoint/restart
//! through SFS, archiving under capacity pressure, Resource Block
//! partitioning, and MLS gating — the SUPER-UX features of paper §2.6
//! working together on real model state.

use ncar_sx4::climate::history::{checkpoint, read_checkpoint, restore};
use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::os::mls::{check_read, Decision, Policy};
use ncar_sx4::os::nqs::{checkpoint_split, JobSpec, Nqs, ResourceBlock};
use ncar_sx4::os::{BackStore, Sfs};
use ncar_sx4::sim::{presets, Node};

/// §2.6.2: checkpoint a running CCM2, push the record through SFS, restart
/// from it, and verify the restarted run is bit-identical — while the NQS
/// schedule accounts for the I/O time.
#[test]
fn checkpoint_restart_through_sfs() {
    let machine = presets::sx4_benchmarked();
    let mut original = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), machine.clone());
    for _ in 0..3 {
        original.step(4);
    }

    // Write the checkpoint through the file system.
    let record = checkpoint(&original);
    let mut fs = Sfs::benchmarked();
    let io = fs.write(0.0, record.len() as u64, 64);
    assert!(io.blocked_s < 1.0, "checkpoint write should stage quickly: {}", io.blocked_s);

    // Split the batch job around the checkpoint in the NQS schedule.
    let job = JobSpec {
        name: "ccm2-longrun".into(),
        procs: 4,
        memory_bytes: 512 << 20,
        solo_seconds: 1000.0,
        bytes_per_cycle_per_proc: 35.0,
        block: 0,
        after: vec![],
    };
    let (first, rest) = checkpoint_split(&job, 0.3, io.blocked_s, io.blocked_s).unwrap();
    let node = Node::new(machine.clone());
    let nqs = Nqs::whole_node(&node);
    let mut rest_dep = rest.clone();
    rest_dep.after = vec![0];
    let schedule = nqs.run(&[first, rest_dep]).unwrap();
    assert!(schedule.makespan_s >= 1000.0, "split job still does all its work");

    // Restore into a fresh model and verify bit-exact continuation.
    let parsed = read_checkpoint(&record, original.transform.nspec()).unwrap();
    let mut resumed = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), machine);
    restore(&mut resumed, &parsed);
    original.step(4);
    resumed.step(4);
    assert_eq!(original.mean_phi(0), resumed.mean_phi(0));
    assert_eq!(original.energy(3), resumed.energy(3));
}

/// §2.6.5: a year of daily history tapes overflows the online disk; the
/// archiver migrates cold tapes to mass storage and recalls stall readers.
#[test]
fn history_year_drives_archiver() {
    let model = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T63), presets::sx4_benchmarked());
    let per_day = model.history_bytes_per_day();
    // Online capacity holds only ~2 months of T63 history.
    let mut store = BackStore::new(per_day * 60, 30.0 * 86400.0);
    let mut migrated_total = 0;
    for day in 0..365u64 {
        let now = day as f64 * 86400.0;
        store.track(format!("h{day:03}"), per_day, now);
        let (migrated, _) = store.sweep(now);
        migrated_total += migrated;
    }
    assert!(migrated_total > 250, "most of the year must migrate: {migrated_total}");
    assert!(store.online_bytes() <= per_day * 61);
    // Reading back an old tape stalls for the HIPPI recall.
    let recall = store.access("h000", 366.0 * 86400.0).unwrap();
    assert!(recall.stall_s > 0.3, "recall of {per_day} bytes: {}", recall.stall_s);
}

/// §2.6.4: an interactive Resource Block keeps short work responsive while
/// the batch block grinds a long job.
#[test]
fn resource_blocks_protect_interactive_work() {
    let node = Node::new(presets::sx4_benchmarked());
    let nqs = Nqs::with_blocks(
        &node,
        vec![
            ResourceBlock { name: "interactive".into(), procs: 4, memory_bytes: 4 << 30 },
            ResourceBlock { name: "batch".into(), procs: 28, memory_bytes: 4 << 30 },
        ],
    )
    .unwrap();
    let big = JobSpec {
        name: "mom-highres".into(),
        procs: 28,
        memory_bytes: 4 << 30,
        solo_seconds: 10_000.0,
        bytes_per_cycle_per_proc: 40.0,
        block: 1,
        after: vec![],
    };
    let quick: Vec<JobSpec> = (0..5)
        .map(|i| JobSpec {
            name: format!("edit-{i}"),
            procs: 2,
            memory_bytes: 64 << 20,
            solo_seconds: 10.0,
            bytes_per_cycle_per_proc: 5.0,
            block: 0,
            after: vec![],
        })
        .collect();
    let mut jobs = vec![big];
    jobs.extend(quick);
    let s = nqs.run(&jobs).unwrap();
    // The interactive jobs all finish in well under a minute despite the
    // 10,000-second batch job, because they never queue behind it.
    for r in &s.records[1..] {
        assert!(r.end_s < 60.0, "interactive job delayed to {}", r.end_s);
    }
}

/// §2.6.6: classified model output is invisible to uncleared users even
/// though both share the machine.
#[test]
fn mls_gates_history_files() {
    let policy = Policy::site_default();
    let operator = policy.label("classified", &["climate"]).unwrap();
    let student = policy.label("public", &[]).unwrap();
    let tape_label = policy.label("restricted", &["climate"]).unwrap();

    assert_eq!(check_read(&operator, &tape_label), Decision::Grant);
    assert_eq!(check_read(&student, &tape_label), Decision::Deny);
}
