//! Integration tests pinning the paper's headline results — the
//! qualitative and quantitative shape every reproduction must preserve.

use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::kernels::fft::{run_fft_point, LoopOrder};
use ncar_sx4::kernels::membw::{run_point, MembwKind};
use ncar_sx4::kernels::radabs::radabs_benchmark;
use ncar_sx4::ocean::{Mom, MomConfig, Pop, PopConfig};
use ncar_sx4::others::hint_mquips;
use ncar_sx4::sim::{presets, JobDemand, Node};
use ncar_sx4::suite::Instance;

/// §4.4: "The performance demonstrated on this benchmark on the SX-4/1 is
/// 865.9 Cray Y-MP equivalent Mflops."
#[test]
fn radabs_headline_within_15_percent() {
    let got = radabs_benchmark(&presets::sx4_benchmarked());
    let rel = (got - 865.9).abs() / 865.9;
    assert!(rel < 0.15, "RADABS {got} vs 865.9 (rel {rel:.2})");
}

/// Table 1: HINT ranks both workstations above both Cray machines, while
/// RADABS reverses the ranking by an order of magnitude.
#[test]
fn table1_inversion() {
    let sparc = presets::sparc20();
    let ymp = presets::cray_ymp();
    assert!(hint_mquips(&sparc) > hint_mquips(&ymp));
    assert!(radabs_benchmark(&ymp) > 10.0 * radabs_benchmark(&sparc));
}

/// Figure 5: COPY far exceeds XPOSE and IA on the SX-4/1.
#[test]
fn fig5_copy_dominates() {
    let m = presets::sx4_benchmarked();
    let copy = run_point(&m, MembwKind::Copy, Instance { n: 262_144, m: 4 }, 2);
    let ia = run_point(&m, MembwKind::Ia, Instance { n: 262_144, m: 4 }, 2);
    let xpose = run_point(&m, MembwKind::Xpose, Instance { n: 512, m: 4 }, 2);
    assert!(copy.mb_per_s > 2.0 * ia.mb_per_s);
    assert!(copy.mb_per_s > 1.5 * xpose.mb_per_s);
}

/// Figures 6-7: "The VFFT performance results are approximately an order
/// of magnitude faster than those from RFFT."
#[test]
fn vfft_order_of_magnitude_over_rfft() {
    let m = presets::sx4_benchmarked();
    let mut ratios = Vec::new();
    for n in [64usize, 256, 512] {
        let r = run_fft_point(&m, n, 500, LoopOrder::AxisFastest);
        let v = run_fft_point(&m, n, 500, LoopOrder::InstanceFastest);
        ratios.push(v.mflops / r.mflops);
    }
    let geo_mean = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
    assert!((4.0..60.0).contains(&geo_mean), "VFFT/RFFT geometric mean {geo_mean}");
}

/// Figure 8's shape: CCM2 runs faster with more processors, and the bigger
/// problem uses the machine more efficiently ("the SX-4 runs most
/// efficiently on long vector problems").
#[test]
fn fig8_shape() {
    let clock = presets::sx4_benchmarked().clock_ns;
    let gflops = |res: Resolution, procs: usize| {
        let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
        m.step(procs);
        let t = m.step(procs);
        t.timing.cray_gflops(clock)
    };
    let t42_8 = gflops(Resolution::T42, 8);
    let t42_32 = gflops(Resolution::T42, 32);
    let t106_32 = gflops(Resolution::T106, 32);
    assert!(t42_32 > t42_8, "more processors, more Gflops");
    assert!(t106_32 > 1.2 * t42_32, "bigger problem scales better: {t106_32} vs {t42_32}");
}

/// Table 6: "The relative degradation of the job is only 1.89%."
#[test]
fn ensemble_degradation_small() {
    let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
    m.step(4);
    let t = m.step(4);
    let node = Node::new(presets::sx4_benchmarked());
    let job = JobDemand {
        solo_cycles: 0.0,
        procs: 4,
        bytes_per_cycle_per_proc: t.bytes_per_cycle_per_proc,
    };
    let stretch = node.coschedule_stretch(&[job; 8]).expect("8 x 4 procs fit a 32-processor node");
    let deg = (stretch - 1.0) * 100.0;
    assert!(deg > 0.1 && deg < 5.0, "ensemble degradation {deg:.2}% vs paper 1.89%");
}

/// Table 7's shape: MOM speedup is modest — well below linear, but still
/// several-fold at 32 CPUs.
#[test]
fn mom_scaling_modest() {
    let run = |procs: usize| {
        let mut m = Mom::new(MomConfig::low_resolution(), presets::sx4_benchmarked());
        m.run(10, procs)
    };
    let t1 = run(1);
    let t32 = run(32);
    let speedup = t1 / t32;
    assert!((4.0..14.0).contains(&speedup), "MOM speedup at 32 CPUs: {speedup} (paper: 9.06)");
}

/// §4.7.3: "we observed 537 Mflops on the 2-degree POP benchmark on one
/// processor of the SX-4" with an unvectorized CSHIFT.
#[test]
fn pop_headline_band() {
    let mut p = Pop::new(PopConfig::two_degree(), presets::sx4_benchmarked());
    let rate = p.mflops(3);
    assert!((300.0..900.0).contains(&rate), "POP {rate} Mflops vs 537");
}

/// Table 5's ratio: a T63 year costs ~2.6x a T42 year (more columns, more
/// steps/day).
#[test]
fn table5_ratio() {
    let step = |res: Resolution| {
        let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
        m.step(32);
        m.step(32).seconds * res.steps_per_day() as f64
    };
    let t42_day = step(Resolution::T42);
    let t63_day = step(Resolution::T63);
    let ratio = t63_day / t42_day;
    // Paper: 3452.48 / 1327.53 = 2.60.
    assert!((1.8..4.0).contains(&ratio), "T63/T42 yearly ratio {ratio} vs paper 2.60");
}
