//! Cross-crate property-based tests on the core invariants.
//!
//! Inputs are drawn by the workspace's seeded [`SmallRng`] (hermetic
//! replacement for proptest), so every run exercises the same
//! deterministic case set.

use ncar_sx4::climate::gauss::gauss_legendre;
use ncar_sx4::climate::legendre::{pack_index, pack_len, plm_at};
use ncar_sx4::climate::slt::advect_row;
use ncar_sx4::kernels::fft::{factorize, fft, irfft, rfft_spectrum, Direction, C64};
use ncar_sx4::sim::node::partition;
use ncar_sx4::sim::{presets, Vm};
use ncar_sx4::suite::SmallRng;

const CASES: usize = 96;

/// Arbitrary FFT-legal length: 2^a * 3^b * 5^c, bounded.
fn fft_len(rng: &mut SmallRng) -> usize {
    let a = rng.next_below(7);
    let b = rng.next_below(3);
    let c = rng.next_below(2);
    (1usize << a) * 3usize.pow(b as u32) * 5usize.pow(c as u32)
}

#[test]
fn fft_roundtrip_any_235_length() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut tried = 0;
    while tried < CASES {
        let n = fft_len(&mut rng);
        if !(2..=2000).contains(&n) {
            continue;
        }
        tried += 1;
        let seed = rng.next_below(1000) as f64;
        let input: Vec<C64> = (0..n)
            .map(|i| {
                let x = (i as f64 + seed) * 0.61803398875;
                C64::new(x.sin(), (2.0 * x).cos())
            })
            .collect();
        let mut y = input.clone();
        fft(&mut y, Direction::Forward);
        fft(&mut y, Direction::Inverse);
        for (a, b) in y.iter().zip(&input) {
            let scaled = *a * (1.0 / n as f64);
            assert!((scaled - *b).abs() < 1e-8 * (n as f64));
        }
    }
}

#[test]
fn rfft_parseval_any_235_length() {
    let mut rng = SmallRng::seed_from_u64(12);
    let mut tried = 0;
    while tried < CASES {
        let n = fft_len(&mut rng);
        if !(4..=2000).contains(&n) || !n.is_multiple_of(2) {
            continue;
        }
        tried += 1;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.2).collect();
        let spec = rfft_spectrum(&signal);
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        // Hermitian spectrum: double the interior bins.
        let mut freq_energy = spec[0].norm_sqr();
        for (k, c) in spec.iter().enumerate().skip(1) {
            let w = if k == n / 2 { 1.0 } else { 2.0 };
            freq_energy += w * c.norm_sqr();
        }
        freq_energy /= n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
        // And the inverse really inverts.
        let back = irfft(&spec, n);
        for (a, b) in back.iter().zip(&signal) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

#[test]
fn factorize_agrees_with_arithmetic() {
    for n in 1usize..5000 {
        match factorize(n) {
            Some(f) => {
                let prod: usize = f.iter().product();
                assert_eq!(prod, n);
                assert!(f.iter().all(|r| [2, 3, 5].contains(r)));
            }
            None => {
                // Must have a prime factor other than 2, 3, 5.
                let mut m = n;
                for p in [2usize, 3, 5] {
                    while m % p == 0 {
                        m /= p;
                    }
                }
                assert!(m > 1);
            }
        }
    }
}

#[test]
fn gather_scatter_are_inverse_permutations() {
    let mut rng = SmallRng::seed_from_u64(13);
    for _ in 0..CASES {
        let n = rng.range(2, 300);
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut mid = vec![0.0; n];
        let mut out = vec![0.0; n];
        vm.gather(&mut mid, &src, &idx);
        vm.scatter(&mut out, &mid, &idx);
        assert_eq!(out, src);
    }
}

#[test]
fn partition_is_balanced_cover() {
    let mut rng = SmallRng::seed_from_u64(14);
    for _ in 0..CASES {
        let n = rng.next_below(10_000);
        let p = rng.range(1, 64);
        let parts = partition(n, p);
        assert_eq!(parts.len(), p);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, n);
        let max = parts.iter().map(|r| r.len()).max().unwrap();
        let min = parts.iter().map(|r| r.len()).min().unwrap();
        assert!(max - min <= 1);
    }
}

#[test]
fn gauss_weights_positive_sum_two() {
    for n in 2usize..200 {
        let (x, w) = gauss_legendre(n);
        assert!(w.iter().all(|&v| v > 0.0));
        let s: f64 = w.iter().sum();
        assert!((s - 2.0).abs() < 1e-10);
        assert!(x.windows(2).all(|p| p[0] < p[1]));
    }
}

#[test]
fn legendre_pack_bijective() {
    for trunc in 0usize..80 {
        let len = pack_len(trunc);
        let mut seen = vec![false; len];
        for m in 0..=trunc {
            for n in m..=trunc {
                let i = pack_index(trunc, m, n);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}

#[test]
fn legendre_values_bounded() {
    let mut rng = SmallRng::seed_from_u64(15);
    for _ in 0..CASES {
        let trunc = rng.range(1, 40);
        let mu = rng.next_f64() * 1.998 - 0.999;
        // Orthonormal P̄ on [-1,1] are bounded by ~sqrt(n + 1/2).
        let p = plm_at(trunc, mu);
        let bound = ((trunc as f64) + 1.0).sqrt() * 2.0;
        assert!(p.iter().all(|v| v.abs() <= bound));
    }
}

#[test]
fn slt_never_creates_extrema() {
    let mut rng = SmallRng::seed_from_u64(16);
    for _ in 0..CASES {
        let n = rng.range(8, 128);
        let shift = rng.next_f64() * 3.0;
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let q: Vec<f64> = (0..n).map(|j| if j % 7 < 3 { 1.0 } else { 0.0 }).collect();
        let u = vec![shift; n];
        let out = advect_row(&mut vm, &q, &u);
        let eps = 1e-12;
        assert!(out.iter().all(|&v| v >= -eps && v <= 1.0 + eps));
    }
}

#[test]
fn timing_monotone_in_length() {
    use ncar_sx4::sim::{Access, VecOp, VopClass};
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..CASES {
        let n1 = rng.range(1, 100_000);
        let n2 = rng.range(1, 100_000);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let m = presets::sx4_benchmarked();
        let cost = |n: usize| {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&VecOp::new(
                n,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ));
            vm.cost().cycles
        };
        assert!(cost(lo) <= cost(hi));
    }
}
