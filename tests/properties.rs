//! Cross-crate property-based tests (proptest) on the core invariants.

use ncar_sx4::climate::gauss::gauss_legendre;
use ncar_sx4::climate::legendre::{pack_index, pack_len, plm_at};
use ncar_sx4::climate::slt::advect_row;
use ncar_sx4::kernels::fft::{fft, factorize, irfft, rfft_spectrum, C64, Direction};
use ncar_sx4::sim::node::partition;
use ncar_sx4::sim::{presets, Vm};
use proptest::prelude::*;

/// Arbitrary FFT-legal length: 2^a * 3^b * 5^c, bounded.
fn fft_len() -> impl Strategy<Value = usize> {
    (0u32..7, 0u32..3, 0u32..2).prop_map(|(a, b, c)| {
        (1usize << a) * 3usize.pow(b) * 5usize.pow(c)
    })
}

proptest! {
    #[test]
    fn fft_roundtrip_any_235_length(n in fft_len(), seed in 0u64..1000) {
        prop_assume!((2..=2000).contains(&n));
        let input: Vec<C64> = (0..n)
            .map(|i| {
                let x = (i as f64 + seed as f64) * 0.61803398875;
                C64::new(x.sin(), (2.0 * x).cos())
            })
            .collect();
        let mut y = input.clone();
        fft(&mut y, Direction::Forward);
        fft(&mut y, Direction::Inverse);
        for (a, b) in y.iter().zip(&input) {
            let scaled = *a * (1.0 / n as f64);
            prop_assert!((scaled - *b).abs() < 1e-8 * (n as f64));
        }
    }

    #[test]
    fn rfft_parseval_any_235_length(n in fft_len()) {
        prop_assume!((4..=2000).contains(&n) && n % 2 == 0);
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.2).collect();
        let spec = rfft_spectrum(&signal);
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        // Hermitian spectrum: double the interior bins.
        let mut freq_energy = spec[0].norm_sqr();
        for (k, c) in spec.iter().enumerate().skip(1) {
            let w = if k == n / 2 { 1.0 } else { 2.0 };
            freq_energy += w * c.norm_sqr();
        }
        freq_energy /= n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
        // And the inverse really inverts.
        let back = irfft(&spec, n);
        for (a, b) in back.iter().zip(&signal) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn factorize_agrees_with_arithmetic(n in 1usize..5000) {
        match factorize(n) {
            Some(f) => {
                let prod: usize = f.iter().product();
                prop_assert_eq!(prod, n);
                prop_assert!(f.iter().all(|r| [2, 3, 5].contains(r)));
            }
            None => {
                // Must have a prime factor other than 2, 3, 5.
                let mut m = n;
                for p in [2usize, 3, 5] {
                    while m % p == 0 {
                        m /= p;
                    }
                }
                prop_assert!(m > 1);
            }
        }
    }

    #[test]
    fn gather_scatter_are_inverse_permutations(n in 2usize..300, seed in 0u64..100) {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        // A deterministic pseudo-random permutation from the seed.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut mid = vec![0.0; n];
        let mut out = vec![0.0; n];
        vm.gather(&mut mid, &src, &idx);
        vm.scatter(&mut out, &mid, &idx);
        prop_assert_eq!(out, src);
    }

    #[test]
    fn partition_is_balanced_cover(n in 0usize..10_000, p in 1usize..64) {
        let parts = partition(n, p);
        prop_assert_eq!(parts.len(), p);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, n);
        let max = parts.iter().map(|r| r.len()).max().unwrap();
        let min = parts.iter().map(|r| r.len()).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn gauss_weights_positive_sum_two(n in 2usize..200) {
        let (x, w) = gauss_legendre(n);
        prop_assert!(w.iter().all(|&v| v > 0.0));
        let s: f64 = w.iter().sum();
        prop_assert!((s - 2.0).abs() < 1e-10);
        prop_assert!(x.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn legendre_pack_bijective(trunc in 0usize..80) {
        let len = pack_len(trunc);
        let mut seen = vec![false; len];
        for m in 0..=trunc {
            for n in m..=trunc {
                let i = pack_index(trunc, m, n);
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn legendre_values_bounded(trunc in 1usize..40, mu in -0.999f64..0.999) {
        // Orthonormal P̄ on [-1,1] are bounded by ~sqrt(n + 1/2).
        let p = plm_at(trunc, mu);
        let bound = ((trunc as f64) + 1.0).sqrt() * 2.0;
        prop_assert!(p.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn slt_never_creates_extrema(n in 8usize..128, shift in 0.0f64..3.0) {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let q: Vec<f64> = (0..n).map(|j| if j % 7 < 3 { 1.0 } else { 0.0 }).collect();
        let u = vec![shift; n];
        let out = advect_row(&mut vm, &q, &u);
        let eps = 1e-12;
        prop_assert!(out.iter().all(|&v| v >= -eps && v <= 1.0 + eps));
    }

    #[test]
    fn timing_monotone_in_length(n1 in 1usize..100_000, n2 in 1usize..100_000) {
        use ncar_sx4::sim::{Access, VecOp, VopClass};
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let m = presets::sx4_benchmarked();
        let cost = |n: usize| {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&VecOp::new(
                n,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ));
            vm.cost().cycles
        };
        prop_assert!(cost(lo) <= cost(hi));
    }
}
