//! The executable EXPERIMENTS.md: every quantitative anchor the paper
//! publishes, measured on the simulator and checked against its claimed
//! band through one scorecard. If this test passes, the reproduction's
//! headline claims hold; its rendered output is the audit table.

use ncar_sx4::climate::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_sx4::kernels::radabs::radabs_benchmark;
use ncar_sx4::ocean::{Mom, MomConfig, Pop, PopConfig};
use ncar_sx4::others::hint_mquips;
use ncar_sx4::sim::{presets, JobDemand, Node};
use ncar_sx4::suite::{PaperAnchor, Scorecard, Tolerance};

#[test]
fn scorecard_of_published_anchors() {
    let mut sc = Scorecard::new();
    let sx4 = presets::sx4_benchmarked();

    // §4.4 — the RADABS headline (calibration anchor: tight band).
    sc.record(
        PaperAnchor::new(
            "§4.4",
            "RADABS SX-4/1 Cray-equiv Mflops",
            865.9,
            Tolerance::Percent(15.0),
        ),
        radabs_benchmark(&sx4),
    );

    // Table 1 — RADABS row (calibration anchors) and HINT row (predicted).
    for (machine, name, radabs_paper, hint_paper) in [
        (presets::sparc20(), "SPARC20", 12.8, 3.5),
        (presets::rs6000_590(), "RS6K 590", 16.5, 5.2),
        (presets::cri_j90(), "J90", 60.8, 1.7),
        (presets::cray_ymp(), "Y-MP", 178.1, 3.1),
    ] {
        sc.record(
            PaperAnchor::new(
                "Table 1",
                format!("RADABS {name} Mflops"),
                radabs_paper,
                Tolerance::Percent(20.0),
            ),
            radabs_benchmark(&machine),
        );
        sc.record(
            PaperAnchor::new(
                "Table 1",
                format!("HINT {name} MQUIPS"),
                hint_paper,
                Tolerance::Factor(2.0),
            ),
            hint_mquips(&machine),
        );
    }

    // Table 6 — ensemble degradation.
    {
        let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), sx4.clone());
        m.step(4);
        let t = m.step(4);
        let node = Node::new(sx4.clone());
        let job = JobDemand {
            solo_cycles: 0.0,
            procs: 4,
            bytes_per_cycle_per_proc: t.bytes_per_cycle_per_proc,
        };
        let deg = (node.coschedule_stretch(&[job; 8]).unwrap() - 1.0) * 100.0;
        sc.record(
            PaperAnchor::new("Table 6", "ensemble degradation %", 1.89, Tolerance::Factor(2.5)),
            deg,
        );
    }

    // Table 5 — the T63/T42 one-year ratio (per-step basis).
    {
        let day = |res: Resolution| {
            let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), sx4.clone());
            m.step(32);
            m.step(32).seconds * res.steps_per_day() as f64
        };
        let ratio = day(Resolution::T63) / day(Resolution::T42);
        sc.record(
            PaperAnchor::new(
                "Table 5",
                "T63/T42 yearly time ratio",
                3452.48 / 1327.53,
                Tolerance::Percent(40.0),
            ),
            ratio,
        );
    }

    // Table 7 — MOM speedup at 32 CPUs (one diagnostics block).
    {
        let run = |procs: usize| {
            let mut m = Mom::new(MomConfig::high_resolution(), sx4.clone());
            (0..10).map(|_| m.step(procs).seconds).sum::<f64>()
        };
        let speedup = run(1) / run(32);
        sc.record(
            PaperAnchor::new("Table 7", "MOM speedup at 32 CPUs", 9.06, Tolerance::Percent(35.0)),
            speedup,
        );
    }

    // §4.7.3 — POP single-processor Mflops.
    {
        let mut p = Pop::new(PopConfig::two_degree(), sx4);
        sc.record(
            PaperAnchor::new("§4.7.3", "POP 2-deg 1-proc Mflops", 537.0, Tolerance::Factor(1.8)),
            p.mflops(3),
        );
    }

    let report = sc.render();
    println!("{report}");
    assert!(sc.all_pass(), "scorecard failures:\n{report}");
}
