//! A small deterministic pseudo-random generator for benchmark inputs.
//!
//! The suite needs randomness only to build test data (the IA shuffle, the
//! LINPACK matrix, property-test sampling), and every run must be
//! bit-reproducible from a fixed seed. A 64-bit SplitMix generator is more
//! than adequate for that and keeps the workspace free of external
//! dependencies, which matters because the build environment is hermetic
//! (no crates.io access).

/// SplitMix64: a tiny, statistically solid, seedable generator.
///
/// Sequence and constants follow Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create a generator from a seed; equal seeds give equal sequences.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1): the top 53 bits scaled.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping (Lemire); bias is below
        // 2^-64 * bound, irrelevant for test-data generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(0x6e63_6172);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left the identity");
    }
}
