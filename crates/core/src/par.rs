//! Host-parallel helpers over `std::thread` (the workspace builds with no
//! external crates, so this replaces the former `rayon` fan-outs).
//!
//! Simulated time never depends on host parallelism — every ladder point
//! builds its own `Vm` — so `par_map` only shortens wall-clock time of the
//! harness. Results always come back in input order.

/// Map `f` over `items` using up to `available_parallelism` host threads,
/// preserving input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    par_map_with(items, threads, f)
}

/// [`par_map`] with an explicit thread cap (1 = sequential).
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Work queue: (index, item) pairs pulled by worker threads; results are
    // reassembled by index so output order matches input order.
    let queue: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().rev().collect());
    let f = &f;
    let queue = &queue;
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results: std::sync::Mutex<Vec<(usize, R)>> = std::sync::Mutex::new(Vec::with_capacity(n));
    let results_ref = &results;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let next = queue.lock().expect("worker panicked holding queue").pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results_ref.lock().expect("worker panicked holding results").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    for (i, r) in results.into_inner().expect("worker panicked holding results") {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every index produced exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<usize>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = par_map(Vec::<usize>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_cap_matches_parallel() {
        let items: Vec<usize> = (0..37).collect();
        let seq = par_map_with(items.clone(), 1, |x| x + 1);
        let par = par_map_with(items, 8, |x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(vec![1, 2, 3], 64, |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
