//! Host-parallel helpers over `std::thread` (the workspace builds with no
//! external crates, so this replaces the former `rayon` fan-outs).
//!
//! Simulated time never depends on host parallelism — every ladder point
//! builds its own `Vm` — so `par_map` only shortens wall-clock time of the
//! harness. Results always come back in input order.

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub mod lockreg;

/// Lock `m`, recovering the data if a previous holder panicked.
///
/// `Mutex::lock().unwrap()` turns one panic while the lock is held into a
/// poisoned-lock cascade: every later locker panics too, and a daemon
/// wedges forever on the first bug. Shared state guarded by counters and
/// queues here stays structurally valid across a panicking critical
/// section (all updates are single-field or push/pop), so recovering the
/// guard is always safe; the panic itself still propagates to whoever
/// caused it.
pub fn plock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A [`plock`] guard carrying the name of the lock *site* it holds.
///
/// With the `lockcheck` feature enabled, constructing one (via
/// [`plock_named`]) records the acquisition in [`lockreg`] — the held-site
/// stack of the current thread grows an entry, and an ordering edge is
/// recorded from every site already held — and dropping it pops the stack.
/// Without the feature it is exactly a [`MutexGuard`]: no registry, no
/// bookkeeping, nothing to pay.
pub struct SiteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    site: &'static str,
    guard: MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for SiteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for SiteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for SiteGuard<'_, T> {
    fn drop(&mut self) {
        lockreg::release(self.site);
    }
}

/// [`plock`] with a named lock site, feeding the [`lockreg`] registry.
///
/// `site` names the *role* of the mutex (e.g. `"sxd.cache"`), not a code
/// location: every acquisition of the same mutex should pass the same
/// name, so the recorded ordering graph speaks about the daemon's lock
/// hierarchy rather than about call sites. Poison recovery is identical to
/// [`plock`].
pub fn plock_named<'a, T: ?Sized>(m: &'a Mutex<T>, site: &'static str) -> SiteGuard<'a, T> {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    #[cfg(feature = "lockcheck")]
    lockreg::acquire(site);
    #[cfg(not(feature = "lockcheck"))]
    let _ = site;
    SiteGuard {
        #[cfg(feature = "lockcheck")]
        site,
        guard,
    }
}

/// Process-wide host-parallelism cap. 0 = no cap (use every core); set by
/// the `ncar-bench --jobs N` flag so CI boxes and laptops can bound how
/// many host threads the experiment fan-outs spawn.
static HOST_PARALLELISM_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap [`par_map`] (and anything else consulting [`host_parallelism`]) at
/// `threads` host threads; 0 removes the cap. Simulated time is unaffected
/// — this only bounds wall-clock concurrency of the harness.
pub fn set_host_parallelism(threads: usize) {
    HOST_PARALLELISM_CAP.store(threads, Ordering::Relaxed);
}

/// The number of host threads fan-outs should use: the configured cap if
/// one is set, else `available_parallelism`.
pub fn host_parallelism() -> usize {
    match HOST_PARALLELISM_CAP.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Map `f` over `items` using up to [`host_parallelism`] host threads,
/// preserving input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, host_parallelism(), f)
}

/// [`par_map`] with an explicit thread cap (1 = sequential).
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Work queue: (index, item) pairs pulled by worker threads; results are
    // reassembled by index so output order matches input order.
    let queue: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().rev().collect());
    let f = &f;
    let queue = &queue;
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results: std::sync::Mutex<Vec<(usize, R)>> = std::sync::Mutex::new(Vec::with_capacity(n));
    let results_ref = &results;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let next = queue.lock().expect("worker panicked holding queue").pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results_ref.lock().expect("worker panicked holding results").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    for (i, r) in results.into_inner().expect("worker panicked holding results") {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every index produced exactly once")).collect()
}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<PoolJob>,
    shutting_down: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    ready: Condvar,
    /// Workers currently executing a job (not parked, not between jobs).
    busy: AtomicUsize,
}

/// A bounded pool of long-lived worker threads.
///
/// [`par_map`] fans out one *batch* and joins; a daemon instead needs jobs
/// executed as they arrive while keeping host concurrency fixed. Jobs
/// submitted beyond the worker count queue FIFO. Dropping the pool drains
/// the queue, then joins every worker.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue { jobs: VecDeque::new(), shutting_down: false }),
            ready: Condvar::new(),
            busy: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = plock(&shared.queue);
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break Some(job);
                            }
                            if q.shutting_down {
                                break None;
                            }
                            q = shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    match job {
                        Some(job) => {
                            // Guarded so a panicking job (which kills this
                            // worker) still leaves the busy gauge correct.
                            struct Busy<'a>(&'a AtomicUsize);
                            impl Drop for Busy<'_> {
                                fn drop(&mut self) {
                                    self.0.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            shared.busy.fetch_add(1, Ordering::Relaxed);
                            let _busy = Busy(&shared.busy);
                            job();
                        }
                        None => break,
                    }
                })
            })
            .collect();
        WorkerPool { shared, handles, threads }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        plock(&self.shared.queue).jobs.len()
    }

    /// Workers currently executing a job.
    pub fn busy_workers(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Enqueue a fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = plock(&self.shared.queue);
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.ready.notify_one();
    }

    /// Run `f` on a worker and block until its result comes back.
    pub fn run<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        let (tx, rx) = mpsc::channel();
        self.submit(move || {
            let _ = tx.send(f());
        });
        rx.recv().expect("pool worker died before returning a result")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = plock(&self.shared.queue);
            q.shutting_down = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<usize>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = par_map(Vec::<usize>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_cap_matches_parallel() {
        let items: Vec<usize> = (0..37).collect();
        let seq = par_map_with(items.clone(), 1, |x| x + 1);
        let par = par_map_with(items, 8, |x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(vec![1, 2, 3], 64, |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn host_parallelism_cap_round_trips() {
        // par_map stays correct at any cap, so racing other tests is safe.
        set_host_parallelism(1);
        assert_eq!(host_parallelism(), 1);
        let out = par_map((0..10).collect::<Vec<usize>>(), |x| x * 2);
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        set_host_parallelism(0);
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn worker_pool_executes_queued_jobs_and_drains_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // run() gives back results from arbitrary workers.
        assert_eq!(pool.run(|| 6 * 7), 42);
        drop(pool); // must drain the 50 submits before joining
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn plock_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        *plock(&m) += 1;
        assert_eq!(*plock(&m), 8);
    }

    #[test]
    fn worker_pool_reports_queue_depth_and_busy_workers() {
        let pool = WorkerPool::new(1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        // One worker is occupied; two more jobs pile up behind it.
        pool.submit(|| {});
        pool.submit(|| {});
        assert_eq!(pool.busy_workers(), 1);
        assert_eq!(pool.queue_depth(), 2);
        release_tx.send(()).unwrap();
        drop(pool); // drains the queue
    }

    #[test]
    fn worker_pool_busy_gauge_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        pool.run(|| {
            // run() from inside a catch to keep the test thread alive.
        });
        pool.submit(|| panic!("job dies on a worker"));
        // Wait for the panicking job to be consumed.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(pool.busy_workers(), 0, "busy gauge must not leak on panic");
    }

    #[test]
    fn worker_pool_bounds_concurrency() {
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            pool.submit(move || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool exceeded its bound");
    }
}
