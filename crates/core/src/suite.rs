//! The composition of the NCAR Benchmark Suite: thirteen kernels and three
//! complete geophysical simulation codes, grouped into the paper's seven
//! categories (§4).

/// The seven categories of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Correctness of arithmetic and accuracy/performance of intrinsics.
    Correctness,
    /// Memory bandwidth tests.
    MemoryBandwidth,
    /// Coding style comparison — scalar versus vector processor.
    CodingStyle,
    /// Raw performance.
    RawPerformance,
    /// I/O to disk system and network.
    InputOutput,
    /// Production mix.
    ProductionMix,
    /// Complete applications.
    Applications,
}

impl Category {
    pub fn description(self) -> &'static str {
        match self {
            Category::Correctness => {
                "Correctness of basic floating point arithmetic as well as accuracy and performance of intrinsics"
            }
            Category::MemoryBandwidth => "Memory bandwidth tests",
            Category::CodingStyle => "Coding style comparison - scalar versus vector processor",
            Category::RawPerformance => "Raw performance",
            Category::InputOutput => "I/O to disk system and network",
            Category::ProductionMix => "Production mix",
            Category::Applications => "Complete applications",
        }
    }
}

/// One entry of the suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The benchmark's name as the paper spells it.
    pub name: &'static str,
    pub category: Category,
    pub description: &'static str,
    /// Whether this entry is a kernel (13 of them) or an application (3).
    pub is_application: bool,
}

/// The full suite, in the paper's order.
pub fn suite() -> Vec<SuiteEntry> {
    use Category::*;
    vec![
        SuiteEntry {
            name: "PARANOIA",
            category: Correctness,
            description: "arithmetic operation test",
            is_application: false,
        },
        SuiteEntry {
            name: "ELEFUNT",
            category: Correctness,
            description: "elementary function test",
            is_application: false,
        },
        SuiteEntry {
            name: "COPY",
            category: MemoryBandwidth,
            description: "memory to memory",
            is_application: false,
        },
        SuiteEntry {
            name: "IA",
            category: MemoryBandwidth,
            description: "indirect addressing speed",
            is_application: false,
        },
        SuiteEntry {
            name: "XPOSE",
            category: MemoryBandwidth,
            description: "array transpose",
            is_application: false,
        },
        SuiteEntry {
            name: "RFFT",
            category: CodingStyle,
            description: "\"scalar\" FFT",
            is_application: false,
        },
        SuiteEntry {
            name: "VFFT",
            category: CodingStyle,
            description: "\"vectorized\" FFT",
            is_application: false,
        },
        SuiteEntry {
            name: "RADABS",
            category: RawPerformance,
            description: "processor performance",
            is_application: false,
        },
        SuiteEntry {
            name: "I/O",
            category: InputOutput,
            description: "memory to disk",
            is_application: false,
        },
        SuiteEntry {
            name: "HIPPI",
            category: InputOutput,
            description: "HIPPI throughput",
            is_application: false,
        },
        SuiteEntry {
            name: "NETWORK",
            category: InputOutput,
            description: "external network evaluation",
            is_application: false,
        },
        SuiteEntry {
            name: "PRODLOAD",
            category: ProductionMix,
            description: "simulated production job load",
            is_application: false,
        },
        SuiteEntry {
            name: "CCM2",
            category: Applications,
            description: "global climate model",
            is_application: true,
        },
        SuiteEntry {
            name: "MOM",
            category: Applications,
            description: "F77 ocean model",
            is_application: true,
        },
        SuiteEntry {
            name: "POP",
            category: Applications,
            description: "F90 ocean model",
            is_application: true,
        },
    ]
}

/// Look up a suite entry by its paper name, case-insensitively ("radabs"
/// finds "RADABS"). Serving-layer requests arrive as text.
pub fn find(name: &str) -> Option<SuiteEntry> {
    suite().into_iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("radabs").unwrap().name, "RADABS");
        assert_eq!(find("CcM2").unwrap().name, "CCM2");
        assert!(find("radabs").unwrap().category == Category::RawPerformance);
        assert!(find("no-such-benchmark").is_none());
    }

    #[test]
    fn thirteen_kernels_three_applications() {
        let s = suite();
        // The paper counts PRODLOAD among the 13 kernels; CCM2/MOM/POP are
        // the three complete applications.
        assert_eq!(s.iter().filter(|e| !e.is_application).count(), 12);
        assert_eq!(s.iter().filter(|e| e.is_application).count(), 3);
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn seven_categories_all_used() {
        let s = suite();
        let mut cats: Vec<Category> = s.iter().map(|e| e.category).collect();
        cats.sort_by_key(|c| format!("{c:?}"));
        cats.dedup();
        assert_eq!(cats.len(), 7);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = suite().iter().map(|e| e.name).collect();
        for expect in [
            "PARANOIA", "ELEFUNT", "COPY", "IA", "XPOSE", "RFFT", "VFFT", "RADABS", "I/O", "HIPPI",
            "NETWORK", "PRODLOAD", "CCM2", "MOM", "POP",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn categories_have_descriptions() {
        for e in suite() {
            assert!(!e.category.description().is_empty());
            assert!(!e.description.is_empty());
        }
    }
}
