//! Paper-vs-measured comparison machinery.
//!
//! EXPERIMENTS.md records, for every table and figure, the paper's value
//! and the reproduction's. This module makes those records executable:
//! each [`PaperAnchor`] carries the published number, the tolerance the
//! reproduction claims, and how the measured value is labelled; a
//! [`Scorecard`] collects comparisons and renders the audit table. The
//! `paper_scorecard` integration test drives the whole suite through it.

/// How close a reproduction claims to land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Within `pct` percent of the paper's value.
    Percent(f64),
    /// Within a multiplicative factor (e.g. 2.0 = anywhere in [x/2, 2x]).
    Factor(f64),
    /// Only the ordering/sign of the comparison matters; any positive
    /// finite value passes (used where the paper gives no number).
    ShapeOnly,
}

/// One published value and the band the reproduction claims.
#[derive(Debug, Clone)]
pub struct PaperAnchor {
    /// Which experiment this belongs to (e.g. "Table 7").
    pub experiment: String,
    /// What is being measured (e.g. "MOM speedup at 32 CPUs").
    pub quantity: String,
    /// The paper's number.
    pub paper: f64,
    pub tolerance: Tolerance,
}

impl PaperAnchor {
    pub fn new(
        experiment: impl Into<String>,
        quantity: impl Into<String>,
        paper: f64,
        tolerance: Tolerance,
    ) -> PaperAnchor {
        PaperAnchor { experiment: experiment.into(), quantity: quantity.into(), paper, tolerance }
    }

    /// Does `measured` fall inside the claimed band?
    pub fn check(&self, measured: f64) -> bool {
        if !measured.is_finite() {
            return false;
        }
        match self.tolerance {
            Tolerance::Percent(p) => (measured - self.paper).abs() <= self.paper.abs() * p / 100.0,
            Tolerance::Factor(f) => {
                assert!(f >= 1.0, "factor tolerance must be >= 1");
                let (lo, hi) = (self.paper / f, self.paper * f);
                (lo.min(hi)..=lo.max(hi)).contains(&measured)
            }
            Tolerance::ShapeOnly => measured > 0.0,
        }
    }

    /// Ratio measured/paper (the number a reviewer asks for first).
    pub fn ratio(&self, measured: f64) -> f64 {
        measured / self.paper
    }
}

/// One filled-in comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub anchor: PaperAnchor,
    pub measured: f64,
    pub pass: bool,
}

/// The audit table.
#[derive(Debug, Clone, Default)]
pub struct Scorecard {
    pub rows: Vec<Comparison>,
}

impl Scorecard {
    pub fn new() -> Scorecard {
        Scorecard::default()
    }

    /// Record a measurement against an anchor; returns pass/fail.
    pub fn record(&mut self, anchor: PaperAnchor, measured: f64) -> bool {
        let pass = anchor.check(measured);
        self.rows.push(Comparison { anchor, measured, pass });
        pass
    }

    pub fn all_pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    pub fn failures(&self) -> Vec<&Comparison> {
        self.rows.iter().filter(|r| !r.pass).collect()
    }

    /// Render the audit table.
    pub fn render(&self) -> String {
        let mut out = String::from("paper-vs-measured scorecard\n");
        out.push_str(&format!(
            "{:<12} {:<42} {:>12} {:>12} {:>7} {:>6}\n",
            "experiment", "quantity", "paper", "measured", "ratio", "pass"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:<42} {:>12.2} {:>12.2} {:>7.2} {:>6}\n",
                r.anchor.experiment,
                r.anchor.quantity,
                r.anchor.paper,
                r.measured,
                r.anchor.ratio(r.measured),
                if r.pass { "ok" } else { "FAIL" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_tolerance() {
        let a = PaperAnchor::new("§4.4", "RADABS Mflops", 865.9, Tolerance::Percent(15.0));
        assert!(a.check(865.9));
        assert!(a.check(911.6));
        assert!(a.check(750.0));
        assert!(!a.check(600.0));
        assert!(!a.check(1100.0));
    }

    #[test]
    fn factor_tolerance() {
        let a = PaperAnchor::new("Fig 8", "T170/32 Gflops", 24.0, Tolerance::Factor(2.5));
        assert!(a.check(24.0));
        assert!(a.check(11.0));
        assert!(a.check(55.0));
        assert!(!a.check(9.0));
        assert!(!a.check(65.0));
    }

    #[test]
    fn shape_only_accepts_any_positive() {
        let a = PaperAnchor::new("Table 3", "EXP Mcalls/s", 0.0, Tolerance::ShapeOnly);
        assert!(a.check(44.4));
        assert!(!a.check(-1.0));
        assert!(!a.check(f64::NAN));
    }

    #[test]
    fn nan_never_passes() {
        for tol in [Tolerance::Percent(1000.0), Tolerance::Factor(1000.0), Tolerance::ShapeOnly] {
            let a = PaperAnchor::new("x", "y", 1.0, tol);
            assert!(!a.check(f64::NAN));
        }
    }

    #[test]
    fn scorecard_collects_and_renders() {
        let mut sc = Scorecard::new();
        assert!(sc.record(
            PaperAnchor::new("Table 6", "ensemble degradation %", 1.89, Tolerance::Factor(3.0)),
            1.80,
        ));
        assert!(!sc.record(
            PaperAnchor::new("Table 7", "speedup at 32", 9.06, Tolerance::Percent(5.0)),
            7.2,
        ));
        assert!(!sc.all_pass());
        assert_eq!(sc.failures().len(), 1);
        let text = sc.render();
        assert!(text.contains("Table 6"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    #[should_panic(expected = "factor tolerance")]
    fn sub_unit_factor_rejected() {
        let a = PaperAnchor::new("x", "y", 1.0, Tolerance::Factor(0.5));
        a.check(1.0);
    }
}
