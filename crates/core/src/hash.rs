//! Content hashing for the result cache: 64-bit FNV-1a.
//!
//! The `sxd` daemon addresses cached suite reports by a digest of the full
//! run configuration (suite name, machine preset bytes, parameter set,
//! code version). The hash only has to be *stable* and well-distributed —
//! it keys an in-memory map, not a security boundary — so FNV-1a keeps the
//! workspace hermetic (no external crates) and the digests reproducible
//! across platforms and runs.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte streams.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"fig5|sx4-9.2|");
        h.write(b"ktries=3");
        assert_eq!(h.finish(), fnv64(b"fig5|sx4-9.2|ktries=3"));
    }

    #[test]
    fn small_perturbations_change_the_digest() {
        assert_ne!(fnv64(b"fig5"), fnv64(b"fig6"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
