//! A small, fully fallible JSON document model: the other half of the
//! hand-rolled serializer in [`crate::report`].
//!
//! The `sxd` daemon speaks newline-delimited JSON over TCP, so it needs to
//! *parse* untrusted text, not just emit it. This parser never panics on
//! any input: truncated documents, garbage bytes, hostile nesting depth
//! and trailing junk all come back as a typed [`JsonError`] with a byte
//! position. Serialization is deterministic — object members keep
//! insertion order, and numbers print via [`crate::report::json_f64`]
//! (shortest round-tripping form) — so parse → print → parse is a fixed
//! point and byte-level comparisons of re-serialized documents are
//! meaningful.

use crate::report::{json_escape, json_f64};

/// Nesting depth beyond which the parser refuses to recurse (a hostile
/// `[[[[…` document must not overflow the stack).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve member order (no hashing — the
/// serializer stays deterministic and the workspace stays hermetic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub detail: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document (trailing whitespace allowed,
    /// trailing junk rejected). Never panics.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric member as a non-negative integer counter.
    ///
    /// The upper bound is strict: `u64::MAX as f64` rounds *up* to 2^64,
    /// so accepting `x <= u64::MAX as f64` would admit 2^64 itself, which
    /// no `u64` can hold (`as u64` silently saturates). Every f64 below
    /// 2^64 converts exactly, the largest being 2^64 − 2048.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&json_f64(*x)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &'static str) -> JsonError {
        JsonError { pos: self.pos, detail }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.pos) {
            None => Err(self.err("unexpected end of document")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.b.get(self.pos), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a value"));
        }
        // The byte class above is ASCII-only, so the slice is valid UTF-8.
        let token = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii token");
        match token.parse::<f64>() {
            // `f64::from_str` accepts "inf"/"nan" spellings JSON forbids,
            // but those never reach it: the scanner only collects numeric
            // bytes. A bare '-' or "1e" still parse-fails here.
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => {
                self.pos = start;
                Err(self.err("malformed number"))
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.b.get(self.pos) {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            self.pos += 1;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        let opened = self.eat(b'"');
        debug_assert!(opened);
        let mut out = String::new();
        let mut run = self.pos; // start of the current plain segment
        loop {
            match self.b.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.segment(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.segment(run)?);
                    self.pos += 1;
                    let esc = match self.b.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low half must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("lone surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                // A low surrogate with no preceding high
                                // half (lone, or an inverted pair) can
                                // never form a scalar value. Reporting it
                                // here keeps the diagnosis precise;
                                // `char::from_u32` below would reject it
                                // anyway, so no surrogate ever leaks
                                // through as U+FFFD or worse.
                                return Err(self.err("lone surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                            run = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    };
                    out.push(esc);
                    self.pos += 1;
                    run = self.pos;
                }
                Some(c) if *c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The plain (escape-free) bytes `run..self.pos` of a string literal.
    fn segment(&self, run: usize) -> Result<&'a str, JsonError> {
        std::str::from_utf8(&self.b[run..self.pos])
            .map_err(|_| JsonError { pos: run, detail: "invalid UTF-8 in string" })
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        let opened = self.eat(b'[');
        debug_assert!(opened);
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        let opened = self.eat(b'{');
        debug_assert!(opened);
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected member name"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}'"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn parses_the_basic_shapes() {
        let doc = r#"{"op":"submit","suite":"RADABS","n":3,"x":-1.5e2,"ok":true,"none":null,"params":["a","b"]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("params").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_u64_rejects_the_two_to_the_64_boundary() {
        // Largest f64 strictly below 2^64: converts exactly, must pass.
        let below = 18_446_744_073_709_549_568.0; // 2^64 - 2048
        assert_eq!(Json::Num(below).as_u64(), Some(18_446_744_073_709_549_568));
        // 2^64 itself is representable as an f64 but not as a u64; the old
        // `<= u64::MAX as f64` bound admitted it and `as u64` saturated.
        let exactly = 18_446_744_073_709_551_616.0; // 2^64
        assert_eq!(Json::Num(exactly).as_u64(), None);
        // The next representable f64 above 2^64 must also be rejected.
        let above = 18_446_744_073_709_555_712.0; // 2^64 + 4096
        assert_eq!(Json::Num(above).as_u64(), None);
        // Sanity at the small end and for non-integers.
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn print_parse_is_a_fixed_point() {
        let doc = r#"{ "a" : [1, 2.5, {"b":"c\nd"}, []] , "e": {} }"#;
        let v = Json::parse(doc).unwrap();
        let printed = v.to_string();
        let reparsed = Json::parse(&printed).unwrap();
        assert_eq!(v, reparsed);
        assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::parse(r#""tab\t quote\" back\\ solidus\/ unicodeé 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" back\\ solidus/ unicode\u{e9} 😀"));
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "tru",
            "nul",
            "-",
            "1e",
            "+",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "1 2",
            "{} []",
            "[1] trailing",
            "\u{1}",
            "nan",
            "Infinity",
            "'single'",
            "[01,,]",
            "{\"dup\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_escapes_pair_or_fail_typed() {
        // A valid pair decodes to the astral code point.
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));

        // Every malformed surrogate shape is a typed JsonError — never a
        // panic, never a silent U+FFFD replacement.
        for (doc, detail) in [
            // Unpaired high surrogate: end of string, non-escape tail,
            // or followed by a non-surrogate escape.
            (r#""\ud800""#, "lone surrogate"),
            (r#""\ud800 tail""#, "lone surrogate"),
            (r#""\ud800\n""#, "lone surrogate"),
            (r#""\ud800A""#, "lone surrogate"),
            // Two high halves in a row.
            (r#""\ud800\ud801""#, "lone surrogate"),
            // Lone low surrogate, both range edges.
            (r#""\udc00""#, "lone surrogate"),
            (r#""\udfff x""#, "lone surrogate"),
            // Inverted pair: low half first.
            (r#""\udc00\ud800""#, "lone surrogate"),
            // Truncated escapes inside the pair.
            (r#""\ud800\u00""#, "bad \\u escape"),
            (r#""\ud800\u""#, "bad \\u escape"),
            (r#""\ud8""#, "bad \\u escape"),
        ] {
            let err = Json::parse(doc).unwrap_err();
            assert_eq!(err.detail, detail, "doc {doc}");
        }

        // The surrogate range boundaries themselves are ordinary escapes.
        assert_eq!(Json::parse(r#""\ud7ff\ue000""#).unwrap().as_str(), Some("\u{d7ff}\u{e000}"));
    }

    #[test]
    fn hostile_nesting_depth_is_rejected() {
        let deep = "[".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.detail, "nesting too deep");
        // Just inside the cap still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_print_shortest_roundtrip_form() {
        let v = Json::parse("[0.1, 1, 1e3, -2.5]").unwrap();
        assert_eq!(v.to_string(), "[0.1,1.0,1000.0,-2.5]");
    }

    /// Fuzz-ish: seeded random byte soup and random truncations of a valid
    /// document must parse to `Ok` or `Err`, never panic or hang.
    #[test]
    fn random_inputs_never_panic() {
        let mut rng = SmallRng::seed_from_u64(0x4a53_4f4e); // "JSON"
        let alphabet: Vec<char> =
            "{}[]\",:0123456789.eE+-truefalsnl\\u \t\n\u{e9}".chars().collect();
        for _ in 0..2000 {
            let len = rng.next_below(80);
            let s: String = (0..len).map(|_| alphabet[rng.next_below(alphabet.len())]).collect();
            let _ = Json::parse(&s);
        }
        let valid = r#"{"op":"submit","suite":"fig5","params":{"m":"sx4-9.2","k":[1,2,3]}}"#;
        for cut in 0..valid.len() {
            if valid.is_char_boundary(cut) {
                let _ = Json::parse(&valid[..cut]);
            }
        }
    }
}
