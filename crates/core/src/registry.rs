//! A small ordered name → value registry with case-insensitive lookup.
//!
//! The suite harness and the `sxd` daemon both need to resolve benchmark
//! names arriving as text (CLI arguments, wire requests) to runnable
//! entries. Registration order is preserved so listings are deterministic,
//! and lookup is case-insensitive because the paper spells benchmark names
//! in caps ("RADABS") while the CLI uses lowercase experiment names.

/// Ordered name → `T` map. Linear scan: registries hold tens of entries.
#[derive(Debug, Clone)]
pub struct Registry<T> {
    entries: Vec<(String, T)>,
}

impl<T> Registry<T> {
    pub fn new() -> Registry<T> {
        Registry { entries: Vec::new() }
    }

    /// Register `name`; replaces and returns any previous entry under the
    /// same (case-insensitive) name, keeping its position.
    pub fn register(&mut self, name: impl Into<String>, value: T) -> Option<T> {
        let name = name.into();
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(&name)) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((name, value));
        None
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Option<&T> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &T)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Registry<T> {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_and_order() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.register("fig5", 1), None);
        assert_eq!(r.register("RADABS", 2), None);
        assert_eq!(r.get("fig5"), Some(&1));
        assert_eq!(r.get("radabs"), Some(&2));
        assert_eq!(r.get("Fig5"), Some(&1));
        assert_eq!(r.get("pop"), None);
        assert_eq!(r.names(), vec!["fig5", "RADABS"]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn reregistration_replaces_in_place() {
        let mut r = Registry::new();
        r.register("a", 1);
        r.register("b", 2);
        assert_eq!(r.register("A", 10), Some(1));
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.get("a"), Some(&10));
    }
}
