//! # ncar-suite — the NCAR Benchmark Suite framework
//!
//! The paper's primary contribution is a benchmark *suite*: thirteen
//! kernels and three complete geophysical applications chosen to
//! characterize NCAR's climate-modeling workload, together with a
//! measurement discipline (KTRIES best-of repetition, constant-data-volume
//! parameter ladders, Cray-equivalent Mflops). This crate implements that
//! framework:
//!
//! - [`mod@suite`] — the suite's composition and seven categories (§4);
//! - [`ktries`] — best-of-KTRIES repetition (§4);
//! - [`sweep`] — constant-volume (M, N) ladders and the FFT length
//!   families (§4.2–4.3);
//! - [`report`] — tables, figures and JSON artifacts the harness emits;
//! - [`compare`] — paper-vs-measured anchors and the audit scorecard.
//!
//! The kernels themselves live in `ncar-kernels`; applications in
//! `ccm-proxy` and `ocean-models`; the machine under test in `sxsim`.

pub mod compare;
pub mod ktries;
pub mod par;
pub mod report;
pub mod rng;
pub mod suite;
pub mod sweep;

pub use compare::{Comparison, PaperAnchor, Scorecard, Tolerance};
pub use ktries::{best_of, KTRIES_DEFAULT, KTRIES_VFFT};
pub use par::{par_map, par_map_with};
pub use report::{Artifact, Figure, Series, Table};
pub use rng::SmallRng;
pub use suite::{suite, Category, SuiteEntry};
pub use sweep::{
    constant_volume_ladder, rfft_instances, xpose_ladder, FftFamily, Instance, VFFT_M,
};
