//! # ncar-suite — the NCAR Benchmark Suite framework
//!
//! The paper's primary contribution is a benchmark *suite*: thirteen
//! kernels and three complete geophysical applications chosen to
//! characterize NCAR's climate-modeling workload, together with a
//! measurement discipline (KTRIES best-of repetition, constant-data-volume
//! parameter ladders, Cray-equivalent Mflops). This crate implements that
//! framework:
//!
//! - [`mod@suite`] — the suite's composition and seven categories (§4);
//! - [`ktries`] — best-of-KTRIES repetition (§4);
//! - [`sweep`] — constant-volume (M, N) ladders and the FFT length
//!   families (§4.2–4.3);
//! - [`report`] — tables, figures and JSON artifacts the harness emits;
//! - [`compare`] — paper-vs-measured anchors and the audit scorecard;
//! - [`wire`] — the hermetic big-endian codec (history tapes, cache keys);
//! - [`json`] — fallible JSON parsing for the `sxd` wire protocol;
//! - [`hash`] — FNV-1a content hashing for the result cache;
//! - [`registry`] — ordered name → value lookup for runnable benchmarks;
//! - [`par`] — host-thread fan-out, the `--jobs` cap, the bounded
//!   [`WorkerPool`] the serving daemon executes on, and (behind the
//!   `lockcheck` feature) the [`par::lockreg`] named-lock-site registry
//!   that feeds sxcheck's lock-order deadlock analysis;
//! - [`reactor`] — the hermetic epoll/poll event loop the `sxd` daemon
//!   and cluster router serve on (readiness-driven frame decoding,
//!   idle-timeout wheel, shutdown as a wake event).
//!
//! The kernels themselves live in `ncar-kernels`; applications in
//! `ccm-proxy` and `ocean-models`; the machine under test in `sxsim`.

pub mod compare;
pub mod hash;
pub mod json;
pub mod ktries;
pub mod metrics;
pub mod par;
pub mod reactor;
pub mod registry;
pub mod report;
pub mod rng;
pub mod suite;
pub mod sweep;
pub mod wire;

pub use compare::{Comparison, PaperAnchor, Scorecard, Tolerance};
pub use hash::{fnv64, Fnv64};
pub use json::{Json, JsonError};
pub use ktries::{best_of, KTRIES_DEFAULT, KTRIES_VFFT};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS,
};
pub use par::{
    host_parallelism, par_map, par_map_with, plock, plock_named, set_host_parallelism, SiteGuard,
    WorkerPool,
};
pub use reactor::{Reactor, ReactorConfig, ReactorHandle};
pub use registry::Registry;
pub use report::{Artifact, Figure, Series, Table};
pub use rng::SmallRng;
pub use suite::{find, suite, Category, SuiteEntry};
pub use sweep::{
    constant_volume_ladder, rfft_instances, xpose_ladder, FftFamily, Instance, VFFT_M,
};
pub use wire::{WireError, WireReader, WireWriter};
