//! Hermetic readiness-driven serving: the epoll/poll reactor from ROADMAP
//! item 1, with no external crates (no tokio — the workspace builds
//! `--offline`).
//!
//! The previous serving model spawned one OS thread per accepted
//! connection; at the connection counts the paper's PRODLOAD scenario
//! implies ("millions of users"), thread stacks alone blow past memory,
//! and the accept loop hid three real lifecycle bugs (join-handle leaks,
//! unbounded idle clients, shutdown racing `accept`). The reactor
//! replaces that model with one event loop and a small *bounded*
//! dispatcher pool:
//!
//! ```text
//!            epoll/poll readiness                 bounded WorkerPool
//!  sockets ──────────────► reactor thread ──frame──► dispatchers ──┐
//!     ▲                      │    ▲                                │
//!     └──────── replies ─────┘    └────── completions + waker ─────┘
//! ```
//!
//! Per connection the reactor runs a three-state machine:
//!
//! - **Reading**: read-readiness drains the socket into a
//!   [`LineDecoder`] (same accept/reject semantics as the blocking frame
//!   reader). A complete frame moves the connection to Dispatching.
//! - **Dispatching**: the frame and the per-connection service state are
//!   handed to a dispatcher thread, which may block (NQS admission,
//!   journal writes) without stalling the event loop. Read interest is
//!   disarmed so level-triggered polling cannot spin on pipelined bytes;
//!   one frame is in flight per connection, which both preserves reply
//!   ordering and gives natural backpressure (further pipelined frames
//!   wait in the kernel socket buffer).
//! - **Writing**: the reply is flushed as write-readiness allows, then
//!   the connection returns to Reading (or closes, for terminal replies).
//!
//! Shutdown is a first-class wake event: [`ReactorHandle::shutdown`]
//! flips a flag and writes the self-pipe, the loop closes the listener
//! immediately (new connects are refused rather than silently queued),
//! drops idle connections, and gives in-flight work a short grace window
//! to flush its replies. Idle connections are bounded by a
//! [`TimerWheel`]: a client that connects and sends nothing (or
//! drip-feeds a frame forever) is closed after the configured idle
//! timeout and counted in the `idle_closed` stat.

mod decode;
mod poller;
mod wheel;

pub use decode::{DecodeError, LineDecoder};
pub use poller::{Event, Interest, Poller};
pub use wheel::TimerWheel;

use crate::par::WorkerPool;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const TOK_BASE: u64 = 2;

/// What a [`Service`] wants sent back for one frame.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Reply line, written with a trailing newline. Empty means "send
    /// nothing" (used with `close` when there is no meaningful reply,
    /// e.g. after a handler panic).
    pub line: String,
    /// Close the connection once the reply is flushed.
    pub close: bool,
}

impl Reply {
    pub fn send(line: String) -> Reply {
        Reply { line, close: false }
    }

    pub fn send_and_close(line: String) -> Reply {
        Reply { line, close: true }
    }
}

/// The application half of the reactor: frame in, reply out.
///
/// `handle` runs on a dispatcher thread and may block (admission waits,
/// journal writes); the reactor thread itself never calls it. Each
/// connection owns one `Conn` value of per-connection service state,
/// created at accept and travelling with the frame through dispatch.
pub trait Service: Send + Sync + 'static {
    type Conn: Send + 'static;

    /// A connection was accepted; build its per-connection state.
    fn open(&self, id: u64) -> Self::Conn;

    /// Handle one decoded frame. Runs on a dispatcher thread.
    fn handle(&self, conn: &mut Self::Conn, frame: &str) -> Reply;

    /// Render the reply line for a frame that could not be decoded. The
    /// connection always closes after this reply (there is no resync
    /// point inside a lost frame).
    fn decode_error_reply(&self, err: &DecodeError) -> String;

    /// A connection closed; reclaim its state. Runs on the reactor
    /// thread — keep it cheap.
    fn closed(&self, id: u64, conn: Self::Conn) {
        let _ = (id, conn);
    }
}

/// Reactor tuning. `Default` matches the daemon's protocol limits.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Frame content cap in bytes (the decoder rejects longer frames).
    pub max_frame: usize,
    /// Close connections idle longer than this; `None` disables the
    /// timeout wheel entirely.
    pub idle_timeout: Option<Duration>,
    /// Dispatcher threads running [`Service::handle`]. This bounds
    /// frame-handling concurrency the way the old model's thread count
    /// bounded connections — but it no longer bounds *connections*.
    pub dispatchers: usize,
    /// Grace window for flushing in-flight replies at shutdown.
    pub shutdown_flush: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_frame: 64 * 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            dispatchers: 8,
            shutdown_flush: Duration::from_secs(2),
        }
    }
}

#[derive(Debug, Default)]
struct ReactorStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    idle_closed: AtomicU64,
    frames: AtomicU64,
    open: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    stats: ReactorStats,
    /// Write end of the self-pipe; any thread can nudge the loop.
    waker: UnixStream,
}

/// Cloneable remote control for a running reactor: wake it, shut it
/// down, read its connection counters.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    /// Nudge the event loop (used by dispatchers delivering completions).
    pub fn wake(&self) {
        // A full pipe already guarantees a pending wake: WouldBlock is
        // success here, and both ends are non-blocking so this never
        // stalls the caller.
        let _ = (&self.shared.waker).write(&[1u8]);
    }

    /// Request shutdown and wake the loop. Idempotent; returns
    /// immediately (the reactor drains in its own thread).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wake();
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections accepted over the reactor's lifetime.
    pub fn accepted(&self) -> u64 {
        self.shared.stats.accepted.load(Ordering::Relaxed)
    }

    /// Connections fully closed (all causes, idle included).
    pub fn closed(&self) -> u64 {
        self.shared.stats.closed.load(Ordering::Relaxed)
    }

    /// Connections closed by the idle-timeout wheel.
    pub fn idle_closed(&self) -> u64 {
        self.shared.stats.idle_closed.load(Ordering::Relaxed)
    }

    /// Frames decoded and dispatched.
    pub fn frames(&self) -> u64 {
        self.shared.stats.frames.load(Ordering::Relaxed)
    }

    /// Currently open connections.
    pub fn open(&self) -> u64 {
        self.shared.stats.open.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (or decoding) request bytes; read interest armed.
    Reading,
    /// A frame is on a dispatcher thread; all interest disarmed.
    Dispatching,
    /// Flushing a reply; write interest armed on demand.
    Writing,
}

struct Conn<C> {
    stream: TcpStream,
    decoder: LineDecoder,
    state: ConnState,
    out: Vec<u8>,
    outpos: usize,
    /// Per-connection service state; `None` while it rides a dispatch.
    sconn: Option<C>,
    last_activity: Instant,
    /// Peer half-closed its write side (read returned 0).
    eof: bool,
    close_after_write: bool,
    /// An idle-wheel entry currently points at this connection.
    timer_armed: bool,
}

struct Completion<C> {
    id: u64,
    reply: Reply,
    sconn: C,
}

/// What `advance_reading` decided while the connection was borrowed.
enum Step {
    Dispatch(String),
    DecodeErr(DecodeError),
    CloseClean,
    Wait,
}

/// The event loop. Build with [`Reactor::new`], grab a
/// [`ReactorHandle`], then give the loop its thread with
/// [`Reactor::run`].
pub struct Reactor<S: Service> {
    listener: Option<TcpListener>,
    poller: Poller,
    service: Arc<S>,
    config: ReactorConfig,
    shared: Arc<Shared>,
    waker_rx: UnixStream,
    conns: HashMap<u64, Conn<S::Conn>>,
    next_id: u64,
    in_flight: usize,
    wheel: Option<TimerWheel>,
    tx: Sender<Completion<S::Conn>>,
    rx: Receiver<Completion<S::Conn>>,
    winding_down: bool,
    flush_deadline: Option<Instant>,
}

impl<S: Service> Reactor<S> {
    pub fn new(listener: TcpListener, service: S, config: ReactorConfig) -> io::Result<Reactor<S>> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        let (waker_rx, waker_tx) = poller::waker_pair()?;
        poller.register(poller::raw_fd(&listener), TOK_LISTENER, Interest::READ)?;
        poller.register(poller::raw_fd(&waker_rx), TOK_WAKER, Interest::READ)?;
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        Ok(Reactor {
            listener: Some(listener),
            poller,
            service: Arc::new(service),
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                stats: ReactorStats::default(),
                waker: waker_tx,
            }),
            waker_rx,
            conns: HashMap::new(),
            next_id: TOK_BASE,
            in_flight: 0,
            wheel: config.idle_timeout.map(|idle| TimerWheel::for_horizon(idle, now)),
            config,
            tx,
            rx,
            winding_down: false,
            flush_deadline: None,
        })
    }

    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle { shared: Arc::clone(&self.shared) }
    }

    /// Run the event loop until shutdown completes. Consumes the
    /// reactor; on return every connection is closed and every
    /// dispatched frame has either flushed its reply or overstayed the
    /// flush grace window.
    pub fn run(mut self) -> io::Result<()> {
        let pool = WorkerPool::new(self.config.dispatchers.max(1));
        let mut events: Vec<Event> = Vec::new();
        loop {
            loop {
                let done = match self.rx.try_recv() {
                    Ok(done) => done,
                    Err(_) => break,
                };
                self.in_flight -= 1;
                self.apply_completion(done, &pool);
            }

            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.wind_down();
                if self.in_flight == 0 {
                    let flushed = self.conns.is_empty();
                    let expired = self.flush_deadline.is_some_and(|d| Instant::now() >= d);
                    if flushed || expired {
                        break;
                    }
                }
            }

            let now = Instant::now();
            if let Some(idle) = self.config.idle_timeout {
                let mut due: Vec<u64> = Vec::new();
                if let Some(wheel) = self.wheel.as_mut() {
                    wheel.expire(now, &mut due);
                }
                for token in due {
                    self.check_idle(token, idle, now);
                }
            }

            let mut timeout = self.wheel.as_ref().and_then(|w| w.next_tick(now));
            if self.winding_down {
                // Re-check the flush deadline even if no fd turns ready.
                let cap = Duration::from_millis(20);
                timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
            }
            events.clear();
            self.poller.wait(timeout, &mut events)?;

            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.drain_waker(),
                    token => self.conn_ready(token, *ev, &pool),
                }
            }
            events = batch;
        }

        // Teardown: hand every surviving connection's state back. The
        // loop only exits with `in_flight == 0`, so every connection owns
        // its service state again (no completion is outstanding).
        let service = Arc::clone(&self.service);
        for (id, mut conn) in self.conns.drain() {
            self.shared.stats.closed.fetch_add(1, Ordering::Relaxed);
            if let Some(sconn) = conn.sconn.take() {
                service.closed(id, sconn);
            }
        }
        self.shared.stats.open.store(0, Ordering::Relaxed);
        // Dropping the pool joins the dispatchers; the completion
        // channel outlives it (`self.rx`), so a late send is dropped,
        // never a panic.
        drop(pool);
        Ok(())
    }

    /// First shutdown observation: stop accepting *now* (close the
    /// listener so new connects are refused, not queued), drop idle
    /// connections, start the flush grace window for the rest.
    fn wind_down(&mut self) {
        if self.winding_down {
            return;
        }
        self.winding_down = true;
        self.flush_deadline = Some(Instant::now() + self.config.shutdown_flush);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(poller::raw_fd(&listener));
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading)
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            self.close_conn(id, false);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let res = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match res {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if self.poller.register(poller::raw_fd(&stream), id, Interest::READ).is_err() {
                        continue;
                    }
                    let now = Instant::now();
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.stats.open.fetch_add(1, Ordering::Relaxed);
                    let sconn = self.service.open(id);
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: LineDecoder::new(self.config.max_frame),
                            state: ConnState::Reading,
                            out: Vec::new(),
                            outpos: 0,
                            sconn: Some(sconn),
                            last_activity: now,
                            eof: false,
                            close_after_write: false,
                            timer_armed: false,
                        },
                    );
                    self.arm_idle_timer(id, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (ECONNABORTED, EMFILE...):
                // stop for this readiness round; level-triggered polling
                // re-reports the listener if connections still wait.
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event, pool: &WorkerPool) {
        let state = match self.conns.get(&token) {
            Some(conn) => conn.state,
            None => return, // closed earlier in this event batch
        };
        if state == ConnState::Reading && ev.readable {
            self.read_ready(token, pool);
        } else if state == ConnState::Writing && ev.writable && self.flush_out(token) {
            self.after_write(token, pool);
        }
        // Dispatching (or a stale readiness bit): nothing to do; the
        // completion drives the next transition.
    }

    fn read_ready(&mut self, token: u64, pool: &WorkerPool) {
        let max_frame = self.config.max_frame;
        let mut broken = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let mut buf = [0u8; 16 * 1024];
            loop {
                let res = conn.stream.read(&mut buf);
                match res {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.push(&buf[..n]);
                        conn.last_activity = Instant::now();
                        // One frame dispatches at a time; once one is
                        // surely buffered, let the kernel hold the rest
                        // (backpressure against pipelining floods).
                        if conn.decoder.buffered() > max_frame {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            self.close_conn(token, false);
            return;
        }
        self.advance_reading(token, pool);
    }

    /// A connection back in Reading state: pull the next frame out of
    /// the decoder and dispatch it, queue a decode-error reply, close at
    /// clean EOF, or stay put awaiting more bytes.
    fn advance_reading(&mut self, token: u64, pool: &WorkerPool) {
        let step = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => Step::Dispatch(frame),
                Ok(None) if conn.eof => match conn.decoder.finish() {
                    // A final unterminated frame still gets served; the
                    // EOF closes the connection on the *next* advance,
                    // after its reply flushes.
                    Ok(Some(frame)) => Step::Dispatch(frame),
                    Ok(None) => Step::CloseClean,
                    Err(e) => Step::DecodeErr(e),
                },
                Ok(None) => Step::Wait,
                Err(e) => Step::DecodeErr(e),
            }
        };
        match step {
            Step::Dispatch(frame) => self.dispatch(token, frame, pool),
            Step::DecodeErr(e) => self.queue_decode_error(token, &e),
            Step::CloseClean => self.close_conn(token, false),
            Step::Wait => {
                if self.set_interest(token, Interest::READ) {
                    self.arm_idle_timer(token, Instant::now());
                }
            }
        }
    }

    fn dispatch(&mut self, token: u64, frame: String, pool: &WorkerPool) {
        let sconn = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.state = ConnState::Dispatching;
            conn.sconn.take()
        };
        let Some(mut sconn) = sconn else {
            // One frame in flight per connection: the state machine makes
            // a second dispatch unreachable, but close rather than wedge.
            self.close_conn(token, false);
            return;
        };
        if !self.set_interest(token, Interest::NONE) {
            return;
        }
        self.shared.stats.frames.fetch_add(1, Ordering::Relaxed);
        self.in_flight += 1;
        let service = Arc::clone(&self.service);
        let tx = self.tx.clone();
        let wake = self.handle();
        pool.submit(move || {
            // A panicking handler must not kill the dispatcher's worker
            // loop or strand the connection: turn it into "no reply,
            // close". The daemon's own panic accounting happens inside
            // `handle` (its job runner has its own catch_unwind).
            let reply = match catch_unwind(AssertUnwindSafe(|| service.handle(&mut sconn, &frame)))
            {
                Ok(reply) => reply,
                Err(_) => Reply { line: String::new(), close: true },
            };
            let _ = tx.send(Completion { id: token, reply, sconn });
            wake.wake();
        });
    }

    fn apply_completion(&mut self, done: Completion<S::Conn>, pool: &WorkerPool) {
        let Completion { id, reply, sconn } = done;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                // Closed while the frame was in flight (teardown); give
                // the service its state back for cleanup.
                self.service.closed(id, sconn);
                return;
            };
            conn.sconn = Some(sconn);
            conn.close_after_write |= reply.close;
            conn.out.clear();
            conn.outpos = 0;
            if !reply.line.is_empty() {
                conn.out.extend_from_slice(reply.line.as_bytes());
                conn.out.push(b'\n');
            }
            conn.state = ConnState::Writing;
        }
        if self.flush_out(id) {
            self.after_write(id, pool);
        }
    }

    /// Queue a typed reply for an undecodable frame; the connection
    /// closes after the flush (no resync point mid-frame).
    fn queue_decode_error(&mut self, token: u64, err: &DecodeError) {
        let line = self.service.decode_error_reply(err);
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.close_after_write = true;
            conn.out.clear();
            conn.out.extend_from_slice(line.as_bytes());
            conn.out.push(b'\n');
            conn.outpos = 0;
            conn.state = ConnState::Writing;
        }
        if self.flush_out(token) {
            self.close_conn(token, false);
        }
    }

    /// Write as much of the pending reply as the socket accepts. Returns
    /// true when the reply is fully flushed. On WouldBlock, write
    /// interest is armed and the idle wheel covers a peer that never
    /// drains its side.
    fn flush_out(&mut self, token: u64) -> bool {
        enum Outcome {
            Done,
            Blocked,
            Broken,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            loop {
                if conn.outpos >= conn.out.len() {
                    break Outcome::Done;
                }
                let res = conn.stream.write(&conn.out[conn.outpos..]);
                match res {
                    Ok(0) => break Outcome::Broken,
                    Ok(n) => {
                        conn.outpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Outcome::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Outcome::Broken,
                }
            }
        };
        match outcome {
            Outcome::Done => true,
            Outcome::Blocked => {
                if self.set_interest(token, Interest::WRITE) {
                    self.arm_idle_timer(token, Instant::now());
                }
                false
            }
            Outcome::Broken => {
                self.close_conn(token, false);
                false
            }
        }
    }

    /// A reply finished flushing: close terminal connections, otherwise
    /// return to Reading and immediately consume any pipelined frame.
    fn after_write(&mut self, token: u64, pool: &WorkerPool) {
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.out.clear();
            conn.outpos = 0;
            if conn.close_after_write || self.winding_down {
                true
            } else {
                conn.state = ConnState::Reading;
                false
            }
        };
        if close {
            self.close_conn(token, false);
            return;
        }
        self.advance_reading(token, pool);
    }

    /// An idle-wheel entry fired: close the connection if it has truly
    /// been idle past the horizon, else re-arm at its live deadline.
    fn check_idle(&mut self, token: u64, idle: Duration, now: Instant) {
        let deadline = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.timer_armed = false;
            if conn.state == ConnState::Dispatching {
                // A blocked dispatch (e.g. admission wait) is work, not
                // idleness; the post-dispatch transition re-arms.
                return;
            }
            let deadline = conn.last_activity + idle;
            if now >= deadline {
                None
            } else {
                Some(deadline)
            }
        };
        match deadline {
            None => self.close_conn(token, true),
            Some(deadline) => {
                if let Some(wheel) = self.wheel.as_mut() {
                    wheel.schedule(token, deadline, now);
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.timer_armed = true;
                }
            }
        }
    }

    /// Ensure exactly one idle-wheel entry points at the connection.
    fn arm_idle_timer(&mut self, token: u64, now: Instant) {
        let Some(idle) = self.config.idle_timeout else { return };
        let deadline = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.timer_armed {
                return;
            }
            conn.timer_armed = true;
            conn.last_activity + idle
        };
        if let Some(wheel) = self.wheel.as_mut() {
            wheel.schedule(token, deadline, now);
        }
    }

    /// Update poller interest; on failure the connection is closed and
    /// `false` returned.
    fn set_interest(&mut self, token: u64, interest: Interest) -> bool {
        let fd = match self.conns.get(&token) {
            Some(conn) => poller::raw_fd(&conn.stream),
            None => return false,
        };
        if self.poller.modify(fd, token, interest).is_err() {
            self.close_conn(token, false);
            return false;
        }
        true
    }

    fn close_conn(&mut self, token: u64, idle: bool) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(poller::raw_fd(&conn.stream));
        self.shared.stats.closed.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.open.fetch_sub(1, Ordering::Relaxed);
        if idle {
            self.shared.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(sconn) = conn.sconn.take() {
            self.service.closed(token, sconn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::Shutdown;
    use std::sync::atomic::AtomicUsize;

    struct Echo {
        closed: AtomicUsize,
    }

    impl Echo {
        fn new() -> Echo {
            Echo { closed: AtomicUsize::new(0) }
        }
    }

    impl Service for Echo {
        type Conn = u64;

        fn open(&self, id: u64) -> u64 {
            id
        }

        fn handle(&self, conn: &mut u64, frame: &str) -> Reply {
            match frame {
                "quit" => Reply::send_and_close("bye".into()),
                "boom" => panic!("handler exploded (expected by test)"),
                f => Reply::send(format!("echo[{conn}]:{f}")),
            }
        }

        fn decode_error_reply(&self, err: &DecodeError) -> String {
            match err {
                DecodeError::FrameTooLong { len, max } => format!("err:too_long:{len}:{max}"),
                DecodeError::NotUtf8 => "err:not_utf8".into(),
            }
        }

        fn closed(&self, _id: u64, _conn: u64) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct Running {
        addr: std::net::SocketAddr,
        handle: ReactorHandle,
        thread: std::thread::JoinHandle<io::Result<()>>,
    }

    fn start(config: ReactorConfig) -> Running {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::new(listener, Echo::new(), config).unwrap();
        let handle = reactor.handle();
        let thread = std::thread::spawn(move || reactor.run());
        Running { addr, handle, thread }
    }

    fn finish(r: Running) {
        r.handle.shutdown();
        r.thread.join().unwrap().unwrap();
    }

    fn read_line(reader: &mut impl BufRead) -> Option<String> {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read_line: {e}"),
        }
    }

    #[test]
    fn echo_roundtrips_and_pipelined_frames_reply_in_order() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());

        // Three pipelined frames in one write: replies must come back in
        // order even though each dispatch is a separate pool job.
        (&sock).write_all(b"a\nb\nc\n").unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":a"));
        assert!(read_line(&mut reader).unwrap().ends_with(":b"));
        assert!(read_line(&mut reader).unwrap().ends_with(":c"));

        (&sock).write_all(b"quit\n").unwrap();
        assert_eq!(read_line(&mut reader).unwrap(), "bye");
        assert_eq!(read_line(&mut reader), None, "terminal reply closes");
        assert_eq!(r.handle.frames(), 4);
        finish(r);
    }

    #[test]
    fn unterminated_final_frame_is_served_before_the_close() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"last-words").unwrap();
        sock.shutdown(Shutdown::Write).unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":last-words"));
        assert_eq!(read_line(&mut reader), None);
        finish(r);
    }

    #[test]
    fn oversized_frame_gets_a_typed_reply_then_close() {
        let config = ReactorConfig { max_frame: 64, ..ReactorConfig::default() };
        let r = start(config);
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(&[b'x'; 200]).unwrap();
        assert_eq!(read_line(&mut reader).unwrap(), "err:too_long:65:64");
        assert_eq!(read_line(&mut reader), None, "no resync inside a lost frame");
        finish(r);
    }

    #[test]
    fn silent_connection_is_idle_closed_and_counted() {
        let config =
            ReactorConfig { idle_timeout: Some(Duration::from_millis(150)), ..Default::default() };
        let r = start(config);
        let sock = TcpStream::connect(r.addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        // Never send a byte: the wheel must close us.
        assert_eq!(read_line(&mut reader), None);
        assert_eq!(r.handle.idle_closed(), 1);

        // A half-fed frame (slowloris) is idle too.
        let sock = TcpStream::connect(r.addr).unwrap();
        (&sock).write_all(b"{\"op\":").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        assert_eq!(read_line(&mut reader), None);
        assert_eq!(r.handle.idle_closed(), 2);
        assert_eq!(r.handle.open(), 0);
        finish(r);
    }

    #[test]
    fn a_panicking_handler_closes_only_its_connection() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"boom\n").unwrap();
        assert_eq!(read_line(&mut reader), None, "panic closes with no reply");

        // The reactor and its dispatchers are still alive.
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"still-here\n").unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":still-here"));
        finish(r);
    }

    #[test]
    fn shutdown_with_zero_clients_completes_promptly() {
        let r = start(ReactorConfig::default());
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let handle = r.handle.clone();
        let thread = r.thread;
        std::thread::spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(thread.join().unwrap());
        });
        let res = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown must not wait for a follow-on client");
        res.unwrap();
        // New connections are refused once the listener is gone.
        assert!(TcpStream::connect(r.addr).is_err());
    }

    #[test]
    fn connection_churn_leaves_nothing_behind() {
        let r = start(ReactorConfig::default());
        for i in 0..100 {
            let sock = TcpStream::connect(r.addr).unwrap();
            let mut reader = io::BufReader::new(sock.try_clone().unwrap());
            (&sock).write_all(format!("req-{i}\n").as_bytes()).unwrap();
            assert!(read_line(&mut reader).unwrap().ends_with(&format!(":req-{i}")));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while r.handle.open() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(r.handle.open(), 0, "all churned connections reaped");
        assert_eq!(r.handle.accepted(), 100);
        assert_eq!(r.handle.closed(), 100);
        finish(r);
    }
}
