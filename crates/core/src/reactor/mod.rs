//! Hermetic readiness-driven serving: the epoll/poll reactor from ROADMAP
//! item 1, with no external crates (no tokio — the workspace builds
//! `--offline`).
//!
//! The previous serving model spawned one OS thread per accepted
//! connection; at the connection counts the paper's PRODLOAD scenario
//! implies ("millions of users"), thread stacks alone blow past memory,
//! and the accept loop hid three real lifecycle bugs (join-handle leaks,
//! unbounded idle clients, shutdown racing `accept`). The reactor
//! replaces that model with one event loop and a small *bounded*
//! dispatcher pool:
//!
//! ```text
//!            epoll/poll readiness                 bounded WorkerPool
//!  sockets ──────────────► reactor thread ──frame──► dispatchers ──┐
//!     ▲                      │    ▲                                │
//!     └──────── replies ─────┘    └────── completions + waker ─────┘
//! ```
//!
//! Per connection the reactor runs a pipelined sequence-window protocol:
//!
//! - **Decode**: read-readiness drains the socket into a [`LineDecoder`]
//!   (same accept/reject semantics as the blocking frame reader). Each
//!   complete frame is assigned the connection's next sequence number.
//! - **Fast path**: before paying a dispatcher handoff, the frame is
//!   offered to [`Service::fast_handle`] *on the reactor thread*. A
//!   service answers inline when the reply is cheap to produce (cache
//!   hits, stats snapshots, typed protocol errors); everything else
//!   returns `None` and takes the pool.
//! - **Dispatch window**: up to [`ReactorConfig::pipeline_depth`] frames
//!   may be in flight per connection (consumed but not yet replied).
//!   Dispatcher threads may block (NQS admission, journal writes) without
//!   stalling the event loop; once the window is full, read interest is
//!   disarmed so level-triggered polling cannot spin, and further
//!   pipelined bytes wait in the kernel socket buffer (backpressure).
//! - **Ordered release**: completions can arrive in any order; replies
//!   park in a per-connection reorder buffer and are released strictly in
//!   sequence, so the byte stream a client sees is identical to the
//!   unpipelined path. A terminal reply (or a decode error, which is
//!   assigned a sequence number like any frame) pins the close point:
//!   earlier in-flight frames still answer in order, later ones are
//!   dropped with the connection.
//! - **Vectored flush**: released replies render into pooled buffers and
//!   leave via `writev`-style vectored writes, so N pipelined replies
//!   coalesce into one syscall. [`ReactorConfig::flush_batch`] can
//!   observe the per-syscall batch size. Successful writes count as
//!   activity for the idle wheel — a client slowly draining a large reply
//!   while making progress is never idle-closed mid-flush.
//!
//! Shutdown is a first-class wake event: [`ReactorHandle::shutdown`]
//! flips a flag and writes the self-pipe, the loop closes the listener
//! immediately (new connects are refused rather than silently queued),
//! drops idle connections, and gives in-flight work a short grace window
//! to flush its replies. Idle connections are bounded by a
//! [`TimerWheel`]: a client that connects and sends nothing (or
//! drip-feeds a frame forever) is closed after the configured idle
//! timeout and counted in the `idle_closed` stat.

mod decode;
mod poller;
mod wheel;

pub use decode::{DecodeError, LineDecoder};
pub use poller::{Event, Interest, Poller};
pub use wheel::TimerWheel;

use crate::metrics::Histogram;
use crate::par::WorkerPool;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const TOK_BASE: u64 = 2;

/// Most reply buffers a connection's flush will hand to one vectored
/// write. Far below any platform IOV_MAX; past this, batching returns
/// are flat anyway.
const MAX_FLUSH_VEC: usize = 64;

/// Render buffers are recycled through a reactor-owned freelist instead
/// of reallocated per reply; oversized buffers (a giant rendered figure)
/// are dropped rather than hoarded.
const BUF_POOL_CAP: usize = 64;
const BUF_POOL_MAX_CAPACITY: usize = 64 * 1024;

/// What a [`Service`] wants sent back for one frame.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Reply line, written with a trailing newline. Empty means "send
    /// nothing" (used with `close` when there is no meaningful reply,
    /// e.g. after a handler panic).
    pub line: String,
    /// Close the connection once the reply is flushed.
    pub close: bool,
}

impl Reply {
    pub fn send(line: String) -> Reply {
        Reply { line, close: false }
    }

    pub fn send_and_close(line: String) -> Reply {
        Reply { line, close: true }
    }
}

/// The application half of the reactor: frame in, reply out.
///
/// `handle` runs on a dispatcher thread and may block (admission waits,
/// journal writes); the reactor thread itself never calls it.
/// `fast_handle` is the opposite contract: it runs *on the reactor
/// thread* and must not block, returning `Some` only when the reply is
/// cheap to produce. Each connection owns one `Conn` value of
/// per-connection service state, created at accept and shared by
/// reference with every (possibly concurrent, under pipelining) handler
/// invocation for that connection.
pub trait Service: Send + Sync + 'static {
    type Conn: Send + Sync + 'static;

    /// A connection was accepted; build its per-connection state.
    fn open(&self, id: u64) -> Self::Conn;

    /// Handle one decoded frame. Runs on a dispatcher thread.
    fn handle(&self, conn: &Self::Conn, frame: &str) -> Reply;

    /// Try to answer a frame inline on the reactor thread, skipping the
    /// dispatcher handoff. Must not block: no waits, no runs, at most
    /// short leaf-lock critical sections. Return `None` to send the
    /// frame down the normal `handle` path.
    fn fast_handle(&self, conn: &Self::Conn, frame: &str) -> Option<Reply> {
        let _ = (conn, frame);
        None
    }

    /// Render the reply line for a frame that could not be decoded. The
    /// connection always closes after this reply (there is no resync
    /// point inside a lost frame).
    fn decode_error_reply(&self, err: &DecodeError) -> String;

    /// A connection closed; a handler for it may still be completing on
    /// a dispatcher thread (its reply will be dropped). Runs on the
    /// reactor thread — keep it cheap.
    fn closed(&self, id: u64, conn: &Self::Conn) {
        let _ = (id, conn);
    }
}

/// Reactor tuning. `Default` matches the daemon's protocol limits.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Frame content cap in bytes (the decoder rejects longer frames).
    pub max_frame: usize,
    /// Close connections idle longer than this; `None` disables the
    /// timeout wheel entirely.
    pub idle_timeout: Option<Duration>,
    /// Dispatcher threads running [`Service::handle`]. This bounds
    /// frame-handling concurrency the way the old model's thread count
    /// bounded connections — but it no longer bounds *connections*.
    pub dispatchers: usize,
    /// Grace window for flushing in-flight replies at shutdown.
    pub shutdown_flush: Duration,
    /// Frames that may be in flight (consumed but unanswered) per
    /// connection. 1 preserves the strict request/reply lockstep of the
    /// unpipelined reactor; higher values let a pipelining client keep
    /// the dispatchers busy. Replies always leave in request order.
    pub pipeline_depth: usize,
    /// Observes the number of reply buffers handed to each vectored
    /// write — the coalescing win of pipelining, measured per syscall.
    pub flush_batch: Option<Arc<Histogram>>,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_frame: 64 * 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            dispatchers: 8,
            shutdown_flush: Duration::from_secs(2),
            pipeline_depth: 1,
            flush_batch: None,
        }
    }
}

#[derive(Debug, Default)]
struct ReactorStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    idle_closed: AtomicU64,
    frames: AtomicU64,
    open: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    stats: ReactorStats,
    /// Write end of the self-pipe; any thread can nudge the loop.
    waker: UnixStream,
}

/// Cloneable remote control for a running reactor: wake it, shut it
/// down, read its connection counters.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    /// Nudge the event loop (used by dispatchers delivering completions).
    pub fn wake(&self) {
        // A full pipe already guarantees a pending wake: WouldBlock is
        // success here, and both ends are non-blocking so this never
        // stalls the caller.
        let _ = (&self.shared.waker).write(&[1u8]);
    }

    /// Request shutdown and wake the loop. Idempotent; returns
    /// immediately (the reactor drains in its own thread).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wake();
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections accepted over the reactor's lifetime.
    pub fn accepted(&self) -> u64 {
        self.shared.stats.accepted.load(Ordering::Relaxed)
    }

    /// Connections fully closed (all causes, idle included).
    pub fn closed(&self) -> u64 {
        self.shared.stats.closed.load(Ordering::Relaxed)
    }

    /// Connections closed by the idle-timeout wheel.
    pub fn idle_closed(&self) -> u64 {
        self.shared.stats.idle_closed.load(Ordering::Relaxed)
    }

    /// Frames decoded, whether answered inline or dispatched.
    pub fn frames(&self) -> u64 {
        self.shared.stats.frames.load(Ordering::Relaxed)
    }

    /// Currently open connections.
    pub fn open(&self) -> u64 {
        self.shared.stats.open.load(Ordering::Relaxed)
    }
}

struct Conn<C> {
    stream: TcpStream,
    decoder: LineDecoder,
    /// Per-connection service state, shared with every in-flight handler.
    sconn: Arc<C>,
    /// Rendered replies awaiting the socket, oldest first; the front
    /// buffer's first `outpos` bytes are already written.
    out: VecDeque<Vec<u8>>,
    outpos: usize,
    /// Sequence number the next consumed frame will get.
    next_seq: u64,
    /// Sequence number of the next reply to release into `out`; frames
    /// with `next_reply <= seq < next_seq` are in flight.
    next_reply: u64,
    /// Out-of-order completions parked until their turn.
    pending: BTreeMap<u64, Reply>,
    /// Set when the reply at this seq was terminal: it closes the
    /// connection once flushed, and replies past it are dropped.
    close_at: Option<u64>,
    /// No further frames will ever be pulled from the decoder (clean
    /// EOF, or a decode error already queued as the final reply).
    input_done: bool,
    last_activity: Instant,
    /// Peer half-closed its write side (read returned 0).
    eof: bool,
    /// An idle-wheel entry currently points at this connection.
    timer_armed: bool,
    /// Interest currently registered with the poller (skip redundant
    /// `epoll_ctl` calls — under pipelining, most advances keep it).
    interest: Interest,
}

impl<C> Conn<C> {
    /// Frames consumed but not yet released as replies.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_reply
    }
}

struct Completion {
    id: u64,
    seq: u64,
    reply: Reply,
}

/// What the frame pump decided while the connection was borrowed.
enum Step {
    Frame(String),
    DecodeErr(DecodeError),
    Hold,
}

/// The event loop. Build with [`Reactor::new`], grab a
/// [`ReactorHandle`], then give the loop its thread with
/// [`Reactor::run`].
pub struct Reactor<S: Service> {
    listener: Option<TcpListener>,
    poller: Poller,
    service: Arc<S>,
    config: ReactorConfig,
    shared: Arc<Shared>,
    waker_rx: UnixStream,
    conns: HashMap<u64, Conn<S::Conn>>,
    next_id: u64,
    in_flight: usize,
    wheel: Option<TimerWheel>,
    tx: Sender<Completion>,
    rx: Receiver<Completion>,
    winding_down: bool,
    flush_deadline: Option<Instant>,
    /// Cleared render buffers awaiting reuse.
    buf_pool: Vec<Vec<u8>>,
}

impl<S: Service> Reactor<S> {
    pub fn new(listener: TcpListener, service: S, config: ReactorConfig) -> io::Result<Reactor<S>> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        let (waker_rx, waker_tx) = poller::waker_pair()?;
        poller.register(poller::raw_fd(&listener), TOK_LISTENER, Interest::READ)?;
        poller.register(poller::raw_fd(&waker_rx), TOK_WAKER, Interest::READ)?;
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        Ok(Reactor {
            listener: Some(listener),
            poller,
            service: Arc::new(service),
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                stats: ReactorStats::default(),
                waker: waker_tx,
            }),
            waker_rx,
            conns: HashMap::new(),
            next_id: TOK_BASE,
            in_flight: 0,
            wheel: config.idle_timeout.map(|idle| TimerWheel::for_horizon(idle, now)),
            config,
            tx,
            rx,
            winding_down: false,
            flush_deadline: None,
            buf_pool: Vec::new(),
        })
    }

    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle { shared: Arc::clone(&self.shared) }
    }

    /// Run the event loop until shutdown completes. Consumes the
    /// reactor; on return every connection is closed and every
    /// dispatched frame has either flushed its reply or overstayed the
    /// flush grace window.
    pub fn run(mut self) -> io::Result<()> {
        let pool = WorkerPool::new(self.config.dispatchers.max(1));
        let mut events: Vec<Event> = Vec::new();
        loop {
            while let Ok(done) = self.rx.try_recv() {
                self.in_flight -= 1;
                self.apply_completion(done, &pool);
            }

            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.wind_down();
                if self.in_flight == 0 {
                    let flushed = self.conns.is_empty();
                    let expired = self.flush_deadline.is_some_and(|d| Instant::now() >= d);
                    if flushed || expired {
                        break;
                    }
                }
            }

            let now = Instant::now();
            if let Some(idle) = self.config.idle_timeout {
                let mut due: Vec<u64> = Vec::new();
                if let Some(wheel) = self.wheel.as_mut() {
                    wheel.expire(now, &mut due);
                }
                for token in due {
                    self.check_idle(token, idle, now);
                }
            }

            let mut timeout = self.wheel.as_ref().and_then(|w| w.next_tick(now));
            if self.winding_down {
                // Re-check the flush deadline even if no fd turns ready.
                let cap = Duration::from_millis(20);
                timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
            }
            events.clear();
            self.poller.wait(timeout, &mut events)?;

            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.drain_waker(),
                    token => self.conn_ready(token, *ev, &pool),
                }
            }
            events = batch;
        }

        // Teardown: notify the service for every surviving connection.
        let service = Arc::clone(&self.service);
        for (id, conn) in self.conns.drain() {
            self.shared.stats.closed.fetch_add(1, Ordering::Relaxed);
            service.closed(id, &conn.sconn);
        }
        self.shared.stats.open.store(0, Ordering::Relaxed);
        // Dropping the pool joins the dispatchers; the completion
        // channel outlives it (`self.rx`), so a late send is dropped,
        // never a panic.
        drop(pool);
        Ok(())
    }

    /// First shutdown observation: stop accepting *now* (close the
    /// listener so new connects are refused, not queued), drop idle
    /// connections, start the flush grace window for the rest.
    fn wind_down(&mut self) {
        if self.winding_down {
            return;
        }
        self.winding_down = true;
        self.flush_deadline = Some(Instant::now() + self.config.shutdown_flush);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(poller::raw_fd(&listener));
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.in_flight() == 0 && c.out.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            self.close_conn(id, false);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let res = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match res {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if self.poller.register(poller::raw_fd(&stream), id, Interest::READ).is_err() {
                        continue;
                    }
                    let now = Instant::now();
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.stats.open.fetch_add(1, Ordering::Relaxed);
                    let sconn = Arc::new(self.service.open(id));
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: LineDecoder::new(self.config.max_frame),
                            sconn,
                            out: VecDeque::new(),
                            outpos: 0,
                            next_seq: 0,
                            next_reply: 0,
                            pending: BTreeMap::new(),
                            close_at: None,
                            input_done: false,
                            last_activity: now,
                            eof: false,
                            timer_armed: false,
                            interest: Interest::READ,
                        },
                    );
                    self.arm_idle_timer(id, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (ECONNABORTED, EMFILE...):
                // stop for this readiness round; level-triggered polling
                // re-reports the listener if connections still wait.
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event, pool: &WorkerPool) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this event batch
        }
        if ev.readable && !self.read_ready(token) {
            return; // connection broke and was closed
        }
        // Write readiness, newly decoded frames, and EOF all funnel into
        // the same driver: pump, release, flush, close or re-arm.
        self.advance(token, pool);
    }

    /// Drain the socket into the decoder. Returns false when the
    /// connection broke (and was closed).
    fn read_ready(&mut self, token: u64) -> bool {
        let max_frame = self.config.max_frame;
        let mut broken = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            if !conn.interest.read {
                // Stale readiness from an earlier batch: the window is
                // full; the kernel buffer keeps the backpressure.
                return true;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                let res = conn.stream.read(&mut buf);
                match res {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.push(&buf[..n]);
                        conn.last_activity = Instant::now();
                        // Once at least one frame (or an oversize error)
                        // is surely buffered, let the kernel hold the
                        // rest (backpressure against pipelining floods).
                        if conn.decoder.buffered() > max_frame {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            self.close_conn(token, false);
            return false;
        }
        true
    }

    /// The per-connection driver: pump decoded frames through the fast
    /// path or the dispatch window, release in-order replies, flush them
    /// vectored, then decide between closing and re-arming interest.
    fn advance(&mut self, token: u64, pool: &WorkerPool) {
        let depth = self.config.pipeline_depth.max(1) as u64;
        loop {
            // Release first so inline replies free their window slot
            // before the next frame is considered.
            if !self.release_ready(token) {
                return;
            }
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.close_at.is_some() || conn.input_done || conn.in_flight() >= depth {
                    Step::Hold
                } else {
                    match conn.decoder.next_frame() {
                        Ok(Some(frame)) => Step::Frame(frame),
                        Ok(None) if conn.eof => match conn.decoder.finish() {
                            // A final unterminated frame still gets
                            // served; the EOF closes the connection once
                            // everything in flight has flushed.
                            Ok(Some(frame)) => Step::Frame(frame),
                            Ok(None) => {
                                conn.input_done = true;
                                Step::Hold
                            }
                            Err(e) => Step::DecodeErr(e),
                        },
                        Ok(None) => Step::Hold,
                        Err(e) => Step::DecodeErr(e),
                    }
                }
            };
            match step {
                Step::Frame(frame) => {
                    self.shared.stats.frames.fetch_add(1, Ordering::Relaxed);
                    let (seq, fast) = {
                        let Some(conn) = self.conns.get_mut(&token) else { return };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let fast = self.service.fast_handle(&conn.sconn, &frame);
                        (seq, fast)
                    };
                    match fast {
                        Some(reply) => {
                            let Some(conn) = self.conns.get_mut(&token) else { return };
                            conn.pending.insert(seq, reply);
                        }
                        None => self.dispatch(token, seq, frame, pool),
                    }
                }
                Step::DecodeErr(e) => {
                    // The error reply is an ordinary terminal reply with
                    // the next sequence number: frames already in flight
                    // still answer, in order, before it.
                    let line = self.service.decode_error_reply(&e);
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(seq, Reply::send_and_close(line));
                    conn.input_done = true;
                }
                Step::Hold => break,
            }
        }
        self.finish_advance(token);
    }

    /// Move consecutively-sequenced replies from the reorder buffer into
    /// rendered output buffers. Returns false if the connection is gone.
    fn release_ready(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        while conn.close_at.is_none() {
            let Some(reply) = conn.pending.remove(&conn.next_reply) else { break };
            if !reply.line.is_empty() {
                let mut buf = self.buf_pool.pop().unwrap_or_default();
                buf.extend_from_slice(reply.line.as_bytes());
                buf.push(b'\n');
                conn.out.push_back(buf);
            }
            if reply.close {
                conn.close_at = Some(conn.next_reply);
                // Later replies will never be sent; drop them now.
                conn.pending.clear();
            }
            conn.next_reply += 1;
        }
        true
    }

    /// Flush, then close or recompute poller interest.
    fn finish_advance(&mut self, token: u64) {
        enum Decision {
            Close,
            Keep(Interest),
        }
        if !self.flush_conn(token) {
            return; // broken (closed) or already gone
        }
        let depth = self.config.pipeline_depth.max(1) as u64;
        let max_frame = self.config.max_frame;
        let decision = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let drained = conn.out.is_empty();
            let quiescent = conn.in_flight() == 0;
            let closing = conn.close_at.is_some_and(|c| conn.next_reply > c);
            if drained && (closing || (quiescent && (conn.input_done || self.winding_down))) {
                Decision::Close
            } else {
                let want = Interest {
                    read: !conn.eof
                        && conn.close_at.is_none()
                        && conn.in_flight() < depth
                        && conn.decoder.buffered() <= max_frame,
                    write: !drained,
                };
                Decision::Keep(want)
            }
        };
        match decision {
            Decision::Close => self.close_conn(token, false),
            Decision::Keep(want) => {
                if self.update_interest(token, want) {
                    self.arm_idle_timer(token, Instant::now());
                }
            }
        }
    }

    fn dispatch(&mut self, token: u64, seq: u64, frame: String, pool: &WorkerPool) {
        let sconn = {
            let Some(conn) = self.conns.get(&token) else { return };
            Arc::clone(&conn.sconn)
        };
        self.in_flight += 1;
        let service = Arc::clone(&self.service);
        let tx = self.tx.clone();
        let wake = self.handle();
        pool.submit(move || {
            // A panicking handler must not kill the dispatcher's worker
            // loop or strand the connection: turn it into "no reply,
            // close". The daemon's own panic accounting happens inside
            // `handle` (its job runner has its own catch_unwind).
            let reply = match catch_unwind(AssertUnwindSafe(|| service.handle(&sconn, &frame))) {
                Ok(reply) => reply,
                Err(_) => Reply { line: String::new(), close: true },
            };
            let _ = tx.send(Completion { id: token, seq, reply });
            wake.wake();
        });
    }

    fn apply_completion(&mut self, done: Completion, pool: &WorkerPool) {
        let Completion { id, seq, reply } = done;
        let Some(conn) = self.conns.get_mut(&id) else {
            // Closed while the frame was in flight; the service was
            // already notified at close time.
            return;
        };
        conn.pending.insert(seq, reply);
        self.advance(id, pool);
    }

    /// Write as much of the output queue as the socket accepts, handing
    /// up to [`MAX_FLUSH_VEC`] reply buffers to each vectored write.
    /// Returns false when the connection broke (and was closed) or does
    /// not exist. Successful writes refresh `last_activity`, so the idle
    /// wheel never closes a peer that is draining a large reply slowly
    /// but steadily.
    fn flush_conn(&mut self, token: u64) -> bool {
        enum Outcome {
            Clean,
            Blocked,
            Broken,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            loop {
                if conn.out.is_empty() {
                    conn.outpos = 0;
                    break Outcome::Clean;
                }
                let mut slices: Vec<IoSlice<'_>> =
                    Vec::with_capacity(conn.out.len().min(MAX_FLUSH_VEC));
                let mut iter = conn.out.iter();
                if let Some(front) = iter.next() {
                    slices.push(IoSlice::new(&front[conn.outpos..]));
                }
                for buf in iter.take(MAX_FLUSH_VEC - 1) {
                    slices.push(IoSlice::new(buf));
                }
                match (&conn.stream).write_vectored(&slices) {
                    Ok(0) => break Outcome::Broken,
                    Ok(mut n) => {
                        if let Some(h) = &self.config.flush_batch {
                            h.observe(slices.len() as f64);
                        }
                        drop(slices);
                        conn.last_activity = Instant::now();
                        while n > 0 {
                            let rem = conn.out[0].len() - conn.outpos;
                            if n < rem {
                                conn.outpos += n;
                                break;
                            }
                            n -= rem;
                            conn.outpos = 0;
                            let mut buf = conn.out.pop_front().expect("front buffer exists");
                            if self.buf_pool.len() < BUF_POOL_CAP
                                && buf.capacity() <= BUF_POOL_MAX_CAPACITY
                            {
                                buf.clear();
                                self.buf_pool.push(buf);
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Outcome::Blocked,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Outcome::Broken,
                }
            }
        };
        match outcome {
            Outcome::Clean | Outcome::Blocked => true,
            Outcome::Broken => {
                self.close_conn(token, false);
                false
            }
        }
    }

    /// An idle-wheel entry fired: close the connection if it has truly
    /// been idle past the horizon, else re-arm at its live deadline.
    fn check_idle(&mut self, token: u64, idle: Duration, now: Instant) {
        let deadline = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.timer_armed = false;
            if conn.in_flight() > 0 {
                // A blocked dispatch (e.g. admission wait) is work, not
                // idleness; the completion's advance re-arms.
                return;
            }
            let deadline = conn.last_activity + idle;
            if now >= deadline {
                None
            } else {
                Some(deadline)
            }
        };
        match deadline {
            None => self.close_conn(token, true),
            Some(deadline) => {
                if let Some(wheel) = self.wheel.as_mut() {
                    wheel.schedule(token, deadline, now);
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.timer_armed = true;
                }
            }
        }
    }

    /// Ensure exactly one idle-wheel entry points at the connection.
    fn arm_idle_timer(&mut self, token: u64, now: Instant) {
        let Some(idle) = self.config.idle_timeout else { return };
        let deadline = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.timer_armed {
                return;
            }
            conn.timer_armed = true;
            conn.last_activity + idle
        };
        if let Some(wheel) = self.wheel.as_mut() {
            wheel.schedule(token, deadline, now);
        }
    }

    /// Update poller interest if it changed; on failure the connection
    /// is closed and `false` returned.
    fn update_interest(&mut self, token: u64, want: Interest) -> bool {
        let fd = {
            let Some(conn) = self.conns.get(&token) else { return false };
            if conn.interest == want {
                return true;
            }
            poller::raw_fd(&conn.stream)
        };
        if self.poller.modify(fd, token, want).is_err() {
            self.close_conn(token, false);
            return false;
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.interest = want;
        }
        true
    }

    fn close_conn(&mut self, token: u64, idle: bool) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(poller::raw_fd(&conn.stream));
        self.shared.stats.closed.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.open.fetch_sub(1, Ordering::Relaxed);
        if idle {
            self.shared.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
        }
        self.service.closed(token, &conn.sconn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmallRng;
    use std::io::BufRead;
    use std::net::Shutdown;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    struct Echo {
        closed: Arc<AtomicUsize>,
        fast_hits: Arc<AtomicUsize>,
    }

    impl Echo {
        fn new() -> Echo {
            Echo { closed: Arc::new(AtomicUsize::new(0)), fast_hits: Arc::new(AtomicUsize::new(0)) }
        }
    }

    impl Service for Echo {
        type Conn = u64;

        fn open(&self, id: u64) -> u64 {
            id
        }

        fn handle(&self, conn: &u64, frame: &str) -> Reply {
            match frame {
                "quit" => Reply::send_and_close("bye".into()),
                "boom" => panic!("handler exploded (expected by test)"),
                "big" => Reply::send("B".repeat(96 * 1024 * 1024)),
                f => Reply::send(format!("echo[{conn}]:{f}")),
            }
        }

        fn fast_handle(&self, conn: &u64, frame: &str) -> Option<Reply> {
            let hot = frame.strip_prefix("fast:")?;
            self.fast_hits.fetch_add(1, Ordering::SeqCst);
            Some(Reply::send(format!("fast[{conn}]:{hot}")))
        }

        fn decode_error_reply(&self, err: &DecodeError) -> String {
            match err {
                DecodeError::FrameTooLong { len, max } => format!("err:too_long:{len}:{max}"),
                DecodeError::NotUtf8 => "err:not_utf8".into(),
            }
        }

        fn closed(&self, _id: u64, _conn: &u64) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct Running {
        addr: std::net::SocketAddr,
        handle: ReactorHandle,
        thread: std::thread::JoinHandle<io::Result<()>>,
    }

    fn start(config: ReactorConfig) -> Running {
        start_with(Echo::new(), config)
    }

    fn start_with<S: Service>(service: S, config: ReactorConfig) -> Running {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::new(listener, service, config).unwrap();
        let handle = reactor.handle();
        let thread = std::thread::spawn(move || reactor.run());
        Running { addr, handle, thread }
    }

    fn finish(r: Running) {
        r.handle.shutdown();
        r.thread.join().unwrap().unwrap();
    }

    fn read_line(reader: &mut impl BufRead) -> Option<String> {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read_line: {e}"),
        }
    }

    #[test]
    fn echo_roundtrips_and_pipelined_frames_reply_in_order() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());

        // Three pipelined frames in one write: replies must come back in
        // order even though each dispatch is a separate pool job.
        (&sock).write_all(b"a\nb\nc\n").unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":a"));
        assert!(read_line(&mut reader).unwrap().ends_with(":b"));
        assert!(read_line(&mut reader).unwrap().ends_with(":c"));

        (&sock).write_all(b"quit\n").unwrap();
        assert_eq!(read_line(&mut reader).unwrap(), "bye");
        assert_eq!(read_line(&mut reader), None, "terminal reply closes");
        assert_eq!(r.handle.frames(), 4);
        finish(r);
    }

    #[test]
    fn unterminated_final_frame_is_served_before_the_close() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"last-words").unwrap();
        sock.shutdown(Shutdown::Write).unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":last-words"));
        assert_eq!(read_line(&mut reader), None);
        finish(r);
    }

    #[test]
    fn oversized_frame_gets_a_typed_reply_then_close() {
        let config = ReactorConfig { max_frame: 64, ..ReactorConfig::default() };
        let r = start(config);
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(&[b'x'; 200]).unwrap();
        assert_eq!(read_line(&mut reader).unwrap(), "err:too_long:65:64");
        assert_eq!(read_line(&mut reader), None, "no resync inside a lost frame");
        finish(r);
    }

    #[test]
    fn silent_connection_is_idle_closed_and_counted() {
        let config =
            ReactorConfig { idle_timeout: Some(Duration::from_millis(150)), ..Default::default() };
        let r = start(config);
        let sock = TcpStream::connect(r.addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        // Never send a byte: the wheel must close us.
        assert_eq!(read_line(&mut reader), None);
        assert_eq!(r.handle.idle_closed(), 1);

        // A half-fed frame (slowloris) is idle too.
        let sock = TcpStream::connect(r.addr).unwrap();
        (&sock).write_all(b"{\"op\":").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        assert_eq!(read_line(&mut reader), None);
        assert_eq!(r.handle.idle_closed(), 2);
        assert_eq!(r.handle.open(), 0);
        finish(r);
    }

    /// Satellite bugfix regression: a client draining a reply much larger
    /// than the socket buffers, slowly but with steady progress, must
    /// never be idle-closed mid-flush — successful writes are activity.
    /// The drain takes several idle horizons end to end; only the
    /// write-progress refresh keeps the connection alive through it.
    #[test]
    fn slow_draining_client_with_write_progress_is_not_idle_closed() {
        let config = ReactorConfig {
            idle_timeout: Some(Duration::from_millis(400)),
            ..ReactorConfig::default()
        };
        let r = start(config);
        let sock = TcpStream::connect(r.addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        (&sock).write_all(b"big\n").unwrap();

        let total = 96 * 1024 * 1024 + 1; // reply body + newline
        let mut seen = 0usize;
        let mut buf = vec![0u8; 1024 * 1024];
        let t0 = Instant::now();
        while seen < total {
            let n = (&sock).read(&mut buf).expect("reply must keep flowing");
            assert!(n > 0, "connection closed after {seen}/{total} bytes");
            seen += n;
            std::thread::sleep(Duration::from_millis(8));
        }
        assert!(
            t0.elapsed() > Duration::from_millis(400),
            "drain finished inside one idle horizon; the test lost its teeth"
        );
        assert_eq!(seen, total);
        assert_eq!(r.handle.idle_closed(), 0, "write progress must count as activity");
        finish(r);
    }

    #[test]
    fn a_panicking_handler_closes_only_its_connection() {
        let r = start(ReactorConfig::default());
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"boom\n").unwrap();
        assert_eq!(read_line(&mut reader), None, "panic closes with no reply");

        // The reactor and its dispatchers are still alive.
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        (&sock).write_all(b"still-here\n").unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":still-here"));
        finish(r);
    }

    #[test]
    fn shutdown_with_zero_clients_completes_promptly() {
        let r = start(ReactorConfig::default());
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let handle = r.handle.clone();
        let thread = r.thread;
        std::thread::spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(thread.join().unwrap());
        });
        let res = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown must not wait for a follow-on client");
        res.unwrap();
        // New connections are refused once the listener is gone.
        assert!(TcpStream::connect(r.addr).is_err());
    }

    #[test]
    fn connection_churn_leaves_nothing_behind() {
        let r = start(ReactorConfig::default());
        for i in 0..100 {
            let sock = TcpStream::connect(r.addr).unwrap();
            let mut reader = io::BufReader::new(sock.try_clone().unwrap());
            (&sock).write_all(format!("req-{i}\n").as_bytes()).unwrap();
            assert!(read_line(&mut reader).unwrap().ends_with(&format!(":req-{i}")));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while r.handle.open() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(r.handle.open(), 0, "all churned connections reaped");
        assert_eq!(r.handle.accepted(), 100);
        assert_eq!(r.handle.closed(), 100);
        finish(r);
    }

    /// A service whose handler latency is a deterministic hash of the
    /// frame, so adjacent pipelined frames complete on the dispatchers in
    /// thoroughly shuffled order.
    struct Jitter;

    impl Service for Jitter {
        type Conn = ();

        fn open(&self, _id: u64) {}

        fn handle(&self, _conn: &(), frame: &str) -> Reply {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in frame.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            std::thread::sleep(Duration::from_micros(h % 2500));
            Reply::send(format!("ok:{frame}"))
        }

        fn decode_error_reply(&self, _err: &DecodeError) -> String {
            "err:decode".into()
        }
    }

    /// Pipelined-ordering property: N frames written in randomly sized
    /// chunks, completed by the dispatchers in shuffled order, must come
    /// back byte-identical and in request order.
    #[test]
    fn shuffled_dispatcher_completions_release_replies_in_request_order() {
        let mut rng = SmallRng::seed_from_u64(0x5049_5045); // "PIPE"
        for trial in 0..4 {
            let r = start_with(
                Jitter,
                ReactorConfig { pipeline_depth: 8, dispatchers: 8, ..ReactorConfig::default() },
            );
            let sock = TcpStream::connect(r.addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let mut reader = io::BufReader::new(sock.try_clone().unwrap());

            let n = 40;
            let wire: Vec<u8> =
                (0..n).flat_map(|i| format!("t{trial}-f{i}\n").into_bytes()).collect();
            // Deliver the stream in random-size chunks so frames split at
            // arbitrary byte boundaries across reads.
            let mut off = 0;
            while off < wire.len() {
                let take = rng.range(1, 17).min(wire.len() - off);
                (&sock).write_all(&wire[off..off + take]).unwrap();
                off += take;
            }
            for i in 0..n {
                assert_eq!(
                    read_line(&mut reader).unwrap(),
                    format!("ok:t{trial}-f{i}"),
                    "reply {i} out of order (trial {trial})"
                );
            }
            assert_eq!(r.handle.frames(), n);
            finish(r);
        }
    }

    /// Inline fast-path replies interleave with dispatched ones without
    /// breaking request order, and skip the pool entirely.
    #[test]
    fn fast_path_replies_inline_and_preserve_order_with_dispatched_frames() {
        let echo = Echo::new();
        let fast_hits = Arc::clone(&echo.fast_hits);
        let r = start_with(echo, ReactorConfig { pipeline_depth: 4, ..ReactorConfig::default() });
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());

        (&sock).write_all(b"slow-1\nfast:x\nslow-2\nfast:y\n").unwrap();
        assert!(read_line(&mut reader).unwrap().ends_with(":slow-1"));
        assert!(read_line(&mut reader).unwrap().starts_with("fast["));
        assert!(read_line(&mut reader).unwrap().ends_with(":slow-2"));
        assert!(read_line(&mut reader).unwrap().ends_with("]:y"));
        assert_eq!(r.handle.frames(), 4, "inline frames count too");
        assert_eq!(fast_hits.load(Ordering::SeqCst), 2);
        finish(r);
    }

    /// Write coalescing: a burst of inline replies leaves in far fewer
    /// vectored writes than replies, and the batch histogram sees it.
    #[test]
    fn pipelined_replies_coalesce_into_vectored_writes() {
        let hist = Arc::new(Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]));
        let r = start_with(
            Echo::new(),
            ReactorConfig {
                pipeline_depth: 8,
                flush_batch: Some(Arc::clone(&hist)),
                ..ReactorConfig::default()
            },
        );
        let sock = TcpStream::connect(r.addr).unwrap();
        let mut reader = io::BufReader::new(sock.try_clone().unwrap());
        // Eight inline-answerable frames sent in one write: when they
        // arrive in one read the reactor answers them in one advance pass
        // and flushes them together. The kernel may split the burst
        // across reads on a loaded machine, so retry until a burst lands
        // intact — coalescing must happen on at least one of them.
        let burst: String = (0..8).map(|i| format!("fast:{i}\n")).collect();
        let mut coalesced = false;
        for _ in 0..20 {
            let before = hist.snapshot();
            (&sock).write_all(burst.as_bytes()).unwrap();
            for i in 0..8 {
                assert!(read_line(&mut reader).unwrap().ends_with(&format!("]:{i}")));
            }
            // The histogram is observed on the reactor thread just after
            // the write syscall, so the client can read the replies
            // before the observation lands — wait for it.
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut after = hist.snapshot();
            while after.sum - before.sum < 8.0 && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(1));
                after = hist.snapshot();
            }
            assert!(
                after.sum - before.sum >= 8.0,
                "all eight reply buffers must pass through vectored writes, saw {}",
                after.sum - before.sum
            );
            if after.count - before.count <= 4 {
                coalesced = true;
                break;
            }
        }
        assert!(coalesced, "no burst of eight pipelined replies ever coalesced its flushes");
        finish(r);
    }
}
