//! OS readiness polling behind one tiny interface, with no external
//! crates: std already links libc, so the two syscall families the
//! reactor needs are declared directly.
//!
//! - Linux: `epoll` (level-triggered — simpler invariants than
//!   edge-triggered, and the reactor disarms read interest while a frame
//!   is dispatched so level-triggering cannot busy-loop);
//! - other unix: `poll(2)` over a registration table rebuilt per wait —
//!   O(n) per wake, fine for the connection counts a dev laptop sees.
//!
//! The interface is intentionally minimal: register/modify/deregister an
//! fd with read/write interest and a `u64` token, then `wait` for
//! [`Event`]s. Error and hangup conditions are folded into
//! `readable | writable` so the connection state machine discovers them
//! through an ordinary zero-byte read or failed write — one error path,
//! not three.

use std::io;
use std::os::fd::RawFd;

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// What a registered fd should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest { read: true, write: false };
    pub const WRITE: Interest = Interest { read: false, write: true };
    pub const BOTH: Interest = Interest { read: true, write: true };
    /// Registered but dormant (e.g. while a frame is being dispatched):
    /// hangups still close the fd later via the state machine.
    pub const NONE: Interest = Interest { read: false, write: false };
}

#[cfg(all(unix, not(target_os = "linux")))]
pub use fallback::Poller;
#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors `struct epoll_event`. The kernel ABI packs it on x86-64
    /// (12 bytes); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    pub struct Poller {
        /// Owned so the epoll fd closes on drop without a direct
        /// `close(2)` declaration.
        epfd: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 512],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let mut ev = ev.unwrap_or(EpollEvent { events: 0, data: 0 });
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(Self::event(token, interest)))
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(Self::event(token, interest)))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let ms: i32 = match timeout {
                // Round up so a 200µs hint does not busy-spin at 0ms.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
                None => -1,
            };
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use;
                // references into packed fields are UB.
                let bits = ev.events;
                let token = ev.data;
                let gone = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(Event {
                    token,
                    // Fold errors/hangups into readability so the state
                    // machine discovers them via read() == 0 / Err.
                    readable: bits & EPOLLIN != 0 || gone,
                    writable: bits & EPOLLOUT != 0 || gone,
                });
            }
            Ok(())
        }

        fn event(token: u64, interest: Interest) -> EpollEvent {
            let mut bits = 0u32;
            if interest.read {
                bits |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.write {
                bits |= EPOLLOUT;
            }
            EpollEvent { events: bits, data: token }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::{Event, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    pub struct Poller {
        registry: BTreeMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registry: BTreeMap::new() })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registry.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registry.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registry.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .registry
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.read { POLLIN } else { 0 }
                        | if interest.write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms: i32 = match timeout {
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
                None => -1,
            };
            let n = loop {
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), ms) };
                if rc >= 0 {
                    break rc;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _) = self.registry[&pfd.fd];
                let gone = pfd.revents & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0 || gone,
                    writable: pfd.revents & POLLOUT != 0 || gone,
                });
            }
            Ok(())
        }
    }
}

/// Shared helper: the self-pipe waker pair. A `UnixStream` pair stands in
/// for `pipe(2)` (no extra FFI needed); both ends are non-blocking so a
/// full pipe never blocks a waker and the reactor's drain never spins.
pub fn waker_pair() -> io::Result<(std::os::unix::net::UnixStream, std::os::unix::net::UnixStream)>
{
    let (a, b) = std::os::unix::net::UnixStream::pair()?;
    a.set_nonblocking(true)?;
    b.set_nonblocking(true)?;
    Ok((a, b))
}

/// Raw-fd view used by the reactor when registering sockets.
pub fn raw_fd<T: std::os::fd::AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    #[test]
    fn waker_roundtrip_through_the_poller() {
        let mut p = Poller::new().unwrap();
        let (rx, tx) = waker_pair().unwrap();
        p.register(raw_fd(&rx), 42, Interest::READ).unwrap();

        // Nothing pending: a short wait times out with no events.
        let mut events = Vec::new();
        p.wait(Some(Duration::from_millis(20)), &mut events).unwrap();
        assert!(events.is_empty());

        (&tx).write_all(&[1]).unwrap();
        p.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable), "waker byte must wake");

        // Drain, then dormant interest must silence further wakes.
        let mut sink = [0u8; 8];
        let _ = (&rx).read(&mut sink).unwrap();
        p.modify(raw_fd(&rx), 42, Interest::NONE).unwrap();
        (&tx).write_all(&[1]).unwrap();
        events.clear();
        p.wait(Some(Duration::from_millis(20)), &mut events).unwrap();
        assert!(
            events.iter().all(|e| !e.readable || e.token != 42),
            "dormant fd reported readable: {events:?}"
        );

        p.deregister(raw_fd(&rx)).unwrap();
    }

    #[test]
    fn listener_accept_readiness() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut p = Poller::new().unwrap();
        p.register(raw_fd(&listener), 7, Interest::READ).unwrap();

        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        p.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let (sock, _) = listener.accept().unwrap();
        drop(sock);
    }
}
