//! Hashed timer wheel for idle-connection deadlines.
//!
//! The reactor needs one timer per connection ("close it if nothing
//! arrives for `idle` seconds") with O(1) schedule and cancel-by-neglect.
//! A binary heap would need explicit cancellation on every received byte;
//! the wheel instead leans on *lazy revalidation*: entries are never
//! removed when a connection becomes active, they simply fire and the
//! reactor re-checks the connection's true `last_activity` before acting,
//! rescheduling the entry if the deadline moved. Idle timeouts are coarse
//! (seconds), so slot-granularity firing (an entry can pop one tick early
//! or late) is harmless — the reactor's revalidation is the source of
//! truth, the wheel is only a hint scheduler.

use std::time::{Duration, Instant};

/// One revolution of hashed slots. Entries further out than a revolution
/// are still placed in their (wrapped) slot and may fire early; the
/// caller's revalidation reschedules them, so correctness never depends on
/// wheel capacity.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    /// Start of the slot `cursor` points at.
    epoch: Instant,
    cursor: usize,
    armed: usize,
}

impl TimerWheel {
    /// A wheel whose revolution comfortably covers `horizon` (the idle
    /// timeout) at a granularity of roughly `horizon / 8`, clamped to
    /// [25ms, 1s]. Coarse on purpose: firing precision is bounded by one
    /// tick, and the reactor only needs "roughly then".
    pub fn for_horizon(horizon: Duration, now: Instant) -> TimerWheel {
        let tick = (horizon / 8).clamp(Duration::from_millis(25), Duration::from_secs(1));
        let revolution = (horizon.as_nanos() / tick.as_nanos()).max(1) as usize + 2;
        TimerWheel { slots: vec![Vec::new(); revolution], tick, epoch: now, cursor: 0, armed: 0 }
    }

    /// Place `token` in the slot covering `fire_at`. Deadlines in the past
    /// land in the current slot and pop on the next [`expire`](Self::expire).
    pub fn schedule(&mut self, token: u64, fire_at: Instant, now: Instant) {
        let ahead = fire_at.saturating_duration_since(now);
        let ticks = (ahead.as_nanos() / self.tick.as_nanos()) as usize;
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(token);
        self.armed += 1;
    }

    /// Advance the wheel to `now`, appending every candidate token whose
    /// slot has elapsed to `out`. Callers must revalidate: a popped token
    /// may belong to a connection that is active again, already closed, or
    /// rescheduled into a later slot.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        while now.saturating_duration_since(self.epoch) >= self.tick {
            let due = std::mem::take(&mut self.slots[self.cursor]);
            self.armed -= due.len();
            out.extend(due);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.epoch += self.tick;
        }
    }

    /// Time until the next slot boundary, if any entry is armed — feeds
    /// the poller timeout so an idle reactor sleeps instead of spinning.
    pub fn next_tick(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let next = self.epoch + self.tick;
        Some(next.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_once_their_slot_elapses() {
        let t0 = Instant::now();
        let mut w = TimerWheel::for_horizon(Duration::from_millis(800), t0);
        w.schedule(7, t0 + Duration::from_millis(300), t0);
        let mut due = Vec::new();
        w.expire(t0 + Duration::from_millis(150), &mut due);
        assert!(due.is_empty(), "not due yet: {due:?}");
        w.expire(t0 + Duration::from_millis(800), &mut due);
        assert_eq!(due, vec![7]);
        // Fired entries are gone: the wheel does not re-arm on its own.
        due.clear();
        w.expire(t0 + Duration::from_secs(5), &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn past_deadlines_pop_on_the_next_expire() {
        let t0 = Instant::now();
        let mut w = TimerWheel::for_horizon(Duration::from_millis(400), t0);
        w.schedule(1, t0, t0);
        let mut due = Vec::new();
        w.expire(t0 + Duration::from_millis(120), &mut due);
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn next_tick_is_none_only_when_nothing_is_armed() {
        let t0 = Instant::now();
        let mut w = TimerWheel::for_horizon(Duration::from_secs(2), t0);
        assert_eq!(w.next_tick(t0), None);
        w.schedule(9, t0 + Duration::from_secs(1), t0);
        let hint = w.next_tick(t0).expect("armed wheel must sleep, not hang");
        assert!(hint <= Duration::from_secs(1));
        let mut due = Vec::new();
        w.expire(t0 + Duration::from_secs(3), &mut due);
        assert_eq!(due, vec![9]);
        assert_eq!(w.next_tick(t0 + Duration::from_secs(3)), None);
    }

    #[test]
    fn deadlines_beyond_one_revolution_fire_early_not_never() {
        // Wrapped entries pop early; the reactor's revalidation reschedules
        // them. The invariant the wheel owes is "never lost".
        let t0 = Instant::now();
        let mut w = TimerWheel::for_horizon(Duration::from_millis(200), t0);
        w.schedule(3, t0 + Duration::from_secs(60), t0);
        let mut due = Vec::new();
        w.expire(t0 + Duration::from_secs(1), &mut due);
        assert_eq!(due, vec![3], "a wrapped entry must still surface");
    }

    #[test]
    fn many_tokens_in_one_slot_all_surface() {
        let t0 = Instant::now();
        let mut w = TimerWheel::for_horizon(Duration::from_millis(800), t0);
        for tok in 0..100u64 {
            w.schedule(tok, t0 + Duration::from_millis(300), t0);
        }
        let mut due = Vec::new();
        w.expire(t0 + Duration::from_secs(1), &mut due);
        due.sort_unstable();
        assert_eq!(due, (0..100).collect::<Vec<u64>>());
    }
}
