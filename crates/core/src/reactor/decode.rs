//! Incremental newline-delimited frame decoding for the reactor.
//!
//! The blocking serving path reads frames with `BufRead::read_until` under
//! an `io::Take` cap; a readiness-driven reactor instead receives bytes in
//! arbitrary chunks and must carve frames out of them without ever
//! blocking. [`LineDecoder`] is that carving, with byte-for-byte the same
//! accept/reject behavior as the blocking reader:
//!
//! - a frame is one `\n`-terminated line; the newline is not part of the
//!   content and a single trailing `\r` is stripped (CRLF tolerance);
//! - the *content* cap counts every byte before the newline (`\r`
//!   included, exactly like the blocking reader's `Take` window), and an
//!   oversized frame is rejected as soon as `max + 1` bytes arrive with no
//!   newline among them — a slowloris client cannot make the decoder
//!   buffer unboundedly;
//! - at EOF a final unterminated frame within the cap is accepted
//!   (trailing `\r` stripped), so `printf '...' | nc` works;
//! - content must be UTF-8; anything else is a typed error.

/// Why a frame could not be decoded. The connection is unrecoverable after
/// either: there is no resync point inside a lost frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// More than `max` content bytes arrived before any newline. `len` is
    /// capped at `max + 1`, mirroring the blocking reader's `Take` window
    /// (it never learns how much longer the line would have been).
    FrameTooLong { len: usize, max: usize },
    /// The frame content is not valid UTF-8.
    NotUtf8,
}

/// Incremental decoder: feed it raw chunks with [`push`](Self::push), pull
/// complete frames with [`next_frame`](Self::next_frame), flush the final
/// unterminated frame at EOF with [`finish`](Self::finish).
#[derive(Debug)]
pub struct LineDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline, so repeated
    /// `next_frame` calls over a growing partial frame stay linear.
    scanned: usize,
    max: usize,
}

impl LineDecoder {
    pub fn new(max: usize) -> LineDecoder {
        LineDecoder { buf: Vec::new(), scanned: 0, max }
    }

    /// Append raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete frame, `Ok(None)` when more bytes are
    /// needed. An error is terminal for the connection.
    pub fn next_frame(&mut self) -> Result<Option<String>, DecodeError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let end = self.scanned + off;
                if end > self.max {
                    return Err(self.too_long());
                }
                let mut content: Vec<u8> = self.buf.drain(..=end).collect();
                content.pop(); // the newline
                self.scanned = 0;
                Self::content_to_frame(content).map(Some)
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max {
                    return Err(self.too_long());
                }
                Ok(None)
            }
        }
    }

    /// EOF: accept a final unterminated frame within the cap, or report a
    /// clean end of stream as `Ok(None)`.
    pub fn finish(&mut self) -> Result<Option<String>, DecodeError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() > self.max {
            return Err(self.too_long());
        }
        let content = std::mem::take(&mut self.buf);
        self.scanned = 0;
        Self::content_to_frame(content).map(Some)
    }

    fn too_long(&self) -> DecodeError {
        DecodeError::FrameTooLong { len: self.buf.len().min(self.max + 1), max: self.max }
    }

    fn content_to_frame(mut content: Vec<u8>) -> Result<String, DecodeError> {
        if content.last() == Some(&b'\r') {
            content.pop();
        }
        String::from_utf8(content).map_err(|_| DecodeError::NotUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_newlines_across_arbitrary_chunks() {
        let mut d = LineDecoder::new(64);
        d.push(b"{\"op\":\"sta");
        assert_eq!(d.next_frame().unwrap(), None);
        d.push(b"ts\"}\n{\"op\":\"metrics\"}\npartial");
        assert_eq!(d.next_frame().unwrap().unwrap(), "{\"op\":\"stats\"}");
        assert_eq!(d.next_frame().unwrap().unwrap(), "{\"op\":\"metrics\"}");
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.buffered(), "partial".len());
        assert_eq!(d.finish().unwrap().unwrap(), "partial");
        assert_eq!(d.finish().unwrap(), None, "clean EOF after the flush");
    }

    /// Property: however the byte stream is sliced into `push` calls, the
    /// decoder yields exactly the frames that were encoded, in order. 64
    /// seeded trials, each a few dozen frames (empty frames and CRLF
    /// endings included) split at SplitMix64-chosen boundaries, with
    /// `next_frame` drained after every chunk — the access pattern the
    /// reactor's pipelined read loop actually produces.
    #[test]
    fn random_chunking_never_changes_the_frame_sequence() {
        let mut rng = crate::SmallRng::seed_from_u64(0x4445_434f_4445); // "DECODE"
        for trial in 0..64 {
            let nframes = 1 + (rng.next_u64() % 40) as usize;
            let mut frames = Vec::with_capacity(nframes);
            let mut stream = Vec::new();
            for i in 0..nframes {
                let len = (rng.next_u64() % 24) as usize;
                let frame: String =
                    (0..len).map(|j| char::from(b'a' + ((i + j) % 26) as u8)).collect();
                stream.extend_from_slice(frame.as_bytes());
                if rng.next_u64().is_multiple_of(4) {
                    stream.push(b'\r');
                }
                stream.push(b'\n');
                frames.push(frame);
            }
            let mut d = LineDecoder::new(64);
            let mut got = Vec::new();
            let mut off = 0;
            while off < stream.len() {
                let take = 1 + (rng.next_u64() as usize % (stream.len() - off)).min(13);
                d.push(&stream[off..off + take]);
                off += take;
                while let Some(f) = d.next_frame().unwrap() {
                    got.push(f);
                }
            }
            while let Some(f) = d.finish().unwrap() {
                got.push(f);
            }
            assert_eq!(got, frames, "trial {trial} diverged");
        }
    }

    #[test]
    fn crlf_is_tolerated_in_both_paths() {
        let mut d = LineDecoder::new(64);
        d.push(b"hello\r\nworld\r");
        assert_eq!(d.next_frame().unwrap().unwrap(), "hello");
        assert_eq!(d.finish().unwrap().unwrap(), "world");
    }

    /// The cap boundary, pinned exactly like `sxd::proto::read_frame`: max
    /// content bytes pass (newline or EOF terminated), max + 1 fail.
    #[test]
    fn cap_boundary_is_exact() {
        let max = 64;
        for (content_len, ok) in [(max - 1, true), (max, true), (max + 1, false)] {
            let mut d = LineDecoder::new(max);
            d.push(&vec![b'z'; content_len]);
            d.push(b"\n");
            let got = d.next_frame();
            assert_eq!(got.is_ok(), ok, "terminated frame of {content_len} bytes");
            if !ok {
                assert_eq!(got.unwrap_err(), DecodeError::FrameTooLong { len: max + 1, max });
            }

            let mut d = LineDecoder::new(max);
            d.push(&vec![b'z'; content_len]);
            assert_eq!(d.finish().is_ok(), ok, "unterminated frame of {content_len} bytes");
        }
    }

    #[test]
    fn oversized_frames_reject_before_their_newline_arrives() {
        // A slowloris client drip-feeding an endless line is rejected as
        // soon as the cap is crossed, not when (never) the newline shows.
        let mut d = LineDecoder::new(16);
        d.push(&[b'x'; 16]);
        assert_eq!(d.next_frame().unwrap(), None, "cap itself is still fine");
        d.push(b"x");
        assert_eq!(d.next_frame().unwrap_err(), DecodeError::FrameTooLong { len: 17, max: 16 });
    }

    #[test]
    fn rescans_do_not_forget_the_partial_offset() {
        let mut d = LineDecoder::new(1024);
        for _ in 0..100 {
            d.push(b"abc");
            assert_eq!(d.next_frame().unwrap(), None);
        }
        d.push(b"\n");
        assert_eq!(d.next_frame().unwrap().unwrap(), "abc".repeat(100));
    }

    #[test]
    fn non_utf8_content_is_a_typed_error() {
        let mut d = LineDecoder::new(64);
        d.push(&[0xff, 0xfe, b'\n']);
        assert_eq!(d.next_frame().unwrap_err(), DecodeError::NotUtf8);
        let mut d = LineDecoder::new(64);
        d.push(&[0xff, 0xfe]);
        assert_eq!(d.finish().unwrap_err(), DecodeError::NotUtf8);
    }

    #[test]
    fn empty_frames_are_frames() {
        let mut d = LineDecoder::new(8);
        d.push(b"\n\r\n");
        assert_eq!(d.next_frame().unwrap().unwrap(), "");
        assert_eq!(d.next_frame().unwrap().unwrap(), "");
    }
}
