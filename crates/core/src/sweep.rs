//! Parameter-sweep generators for the suite's "constant data volume"
//! design.
//!
//! The memory benchmarks vary the axis length N while choosing the
//! instance count M so the amount of data moved stays roughly constant —
//! "at one extreme there are many small arrays being manipulated and at the
//! other extreme a few large arrays are being operated on" (paper §4.2).
//! The FFT benchmarks use the explicit axis-length sets of §4.3.

/// One (N, M) point of a constant-volume ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// Axis length (copy/gather axis, FFT length, or matrix order).
    pub n: usize,
    /// Instance count (outer loop trip count).
    pub m: usize,
}

impl Instance {
    /// Elements touched by this instance for a linear benchmark.
    pub fn volume(&self) -> usize {
        self.n * self.m
    }
}

/// COPY/IA ladder: N sweeps 1..=10^6 in octave steps, M chosen so that
/// N*M ~ `volume` (paper: 10^6 elements).
pub fn constant_volume_ladder(volume: usize) -> Vec<Instance> {
    let mut out = Vec::new();
    let mut n = 1usize;
    while n <= volume {
        let m = (volume / n).max(1);
        out.push(Instance { n, m });
        n *= 2;
    }
    // Always include the single-large-array endpoint exactly.
    if out.last().map(|i| i.n) != Some(volume) {
        out.push(Instance { n: volume, m: 1 });
    }
    out
}

/// XPOSE ladder: matrix order N sweeps 2..=10^3, M chosen so N^2*M is
/// roughly constant (paper: M from 250,000 down to 1, i.e. ~10^6 elements).
pub fn xpose_ladder(volume: usize, max_n: usize) -> Vec<Instance> {
    let mut out = Vec::new();
    let mut n = 2usize;
    while n <= max_n {
        let m = (volume / (n * n)).max(1);
        out.push(Instance { n, m });
        n *= 2;
    }
    if out.last().map(|i| i.n) != Some(max_n) {
        out.push(Instance { n: max_n, m: (volume / (max_n * max_n)).max(1) });
    }
    out
}

/// The three FFT-length families of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftFamily {
    /// N = 2^n.
    PowerOfTwo,
    /// N = 3 * 2^n.
    FactorThree,
    /// N = 5 * 2^n.
    FactorFive,
}

impl FftFamily {
    pub const ALL: [FftFamily; 3] =
        [FftFamily::PowerOfTwo, FftFamily::FactorThree, FftFamily::FactorFive];

    pub fn label(self) -> &'static str {
        match self {
            FftFamily::PowerOfTwo => "N = 2^n",
            FftFamily::FactorThree => "N = 3*2^n",
            FftFamily::FactorFive => "N = 5*2^n",
        }
    }

    /// RFFT axis lengths for this family (paper: n = 1..10 for 2^n,
    /// n = 0..8 for the mixed families).
    pub fn rfft_lengths(self) -> Vec<usize> {
        match self {
            FftFamily::PowerOfTwo => (1..=10).map(|n| 1usize << n).collect(),
            FftFamily::FactorThree => (0..=8).map(|n| 3 * (1usize << n)).collect(),
            FftFamily::FactorFive => (0..=8).map(|n| 5 * (1usize << n)).collect(),
        }
    }

    /// VFFT axis lengths (paper: n = 2,4,6,7,8,9 for 2^n; n = 0,2,4,6,8
    /// for the mixed families).
    pub fn vfft_lengths(self) -> Vec<usize> {
        match self {
            FftFamily::PowerOfTwo => [2, 4, 6, 7, 8, 9].iter().map(|&n| 1usize << n).collect(),
            FftFamily::FactorThree => [0, 2, 4, 6, 8].iter().map(|&n| 3 * (1usize << n)).collect(),
            FftFamily::FactorFive => [0, 2, 4, 6, 8].iter().map(|&n| 5 * (1usize << n)).collect(),
        }
    }
}

/// RFFT instance counts: M keeps ~`volume` elements overall (paper:
/// ~10^6, "M varied from 500,000 to 800 depending on size of N").
pub fn rfft_instances(family: FftFamily, volume: usize) -> Vec<Instance> {
    family
        .rfft_lengths()
        .into_iter()
        .map(|n| Instance { n, m: (volume / n).clamp(1, 500_000) })
        .collect()
}

/// VFFT vector lengths from the paper: M = 1, 2, 5, 10, 20, 50, 100, 200, 500.
pub const VFFT_M: [usize; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 500];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spans_full_range() {
        let l = constant_volume_ladder(1_000_000);
        assert_eq!(l.first().unwrap().n, 1);
        assert_eq!(l.last().unwrap().n, 1_000_000);
        assert_eq!(l.last().unwrap().m, 1);
    }

    #[test]
    fn ladder_volume_roughly_constant() {
        for i in constant_volume_ladder(1_000_000) {
            let v = i.volume();
            assert!((500_000..=2_000_000).contains(&v), "volume {v} drifted at n={}", i.n);
        }
    }

    #[test]
    fn xpose_ladder_shape() {
        let l = xpose_ladder(1_000_000, 1000);
        assert_eq!(l.first().unwrap().n, 2);
        assert_eq!(l.first().unwrap().m, 250_000); // paper's M upper end
        assert_eq!(l.last().unwrap().n, 1000);
        assert_eq!(l.last().unwrap().m, 1);
    }

    #[test]
    fn rfft_lengths_match_paper() {
        assert_eq!(
            FftFamily::PowerOfTwo.rfft_lengths(),
            vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        );
        assert_eq!(FftFamily::FactorThree.rfft_lengths()[0], 3);
        assert_eq!(*FftFamily::FactorFive.rfft_lengths().last().unwrap(), 5 * 256);
    }

    #[test]
    fn vfft_lengths_match_paper() {
        assert_eq!(FftFamily::PowerOfTwo.vfft_lengths(), vec![4, 16, 64, 128, 256, 512]);
        assert_eq!(FftFamily::FactorThree.vfft_lengths(), vec![3, 12, 48, 192, 768]);
        assert_eq!(FftFamily::FactorFive.vfft_lengths(), vec![5, 20, 80, 320, 1280]);
    }

    #[test]
    fn vfft_max_length_is_1280_as_stated() {
        // "The size of the FFT axis to be transformed ranges from 2 to 1280."
        let max = FftFamily::ALL.iter().flat_map(|f| f.vfft_lengths()).max().unwrap();
        assert_eq!(max, 1280);
    }

    #[test]
    fn rfft_instance_bounds_match_paper() {
        let all: Vec<Instance> =
            FftFamily::ALL.iter().flat_map(|&f| rfft_instances(f, 1_000_000)).collect();
        let max_m = all.iter().map(|i| i.m).max().unwrap();
        let min_m = all.iter().map(|i| i.m).min().unwrap();
        assert_eq!(max_m, 500_000, "paper: M up to 500,000");
        assert!((780..=1000).contains(&min_m), "paper: M down to ~800, got {min_m}");
    }
}
