//! KTRIES best-of repetition, exactly as the paper specifies.
//!
//! "For the COPY, IA, XPOSE, RFFT, VFFT, and RADABS benchmark, there is a
//! parameter in the code that the user can set called KTRIES. This
//! determines the number of times that a particular experiment within the
//! benchmark is conducted. For values of KTRIES greater than one, the best
//! performance for that instance is reported." (paper §4)
//!
//! The paper used KTRIES = 20 for all kernels except VFFT (KTRIES = 5).

use sxsim::Cost;

/// KTRIES used by the paper for COPY/IA/XPOSE/RFFT/RADABS.
pub const KTRIES_DEFAULT: usize = 20;
/// KTRIES used by the paper for VFFT ("a matter of expedience").
pub const KTRIES_VFFT: usize = 5;

/// Run `experiment` `ktries` times and return the best (lowest-cycle) cost.
///
/// In this reproduction the simulator is deterministic, so every repetition
/// returns identical cycles; the machinery is kept because it is part of
/// the benchmark specification (and the repetitions still verify that the
/// kernel's *functional* result is reproducible, which `best_of` asserts).
pub fn best_of(ktries: usize, mut experiment: impl FnMut() -> Cost) -> Cost {
    assert!(ktries >= 1, "KTRIES must be at least 1");
    let mut best = experiment();
    for _ in 1..ktries {
        let c = experiment();
        assert_eq!(c.flops, best.flops, "experiment is not reproducible across KTRIES repetitions");
        if c.cycles < best.cycles {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_minimum_cycles() {
        let mut times = vec![5.0, 3.0, 4.0].into_iter();
        let best = best_of(3, || Cost::cycles(times.next().unwrap()));
        assert_eq!(best.cycles, 3.0);
    }

    #[test]
    fn single_try_returns_that_run() {
        let best = best_of(1, || Cost::cycles(42.0));
        assert_eq!(best.cycles, 42.0);
    }

    #[test]
    #[should_panic(expected = "KTRIES")]
    fn zero_tries_rejected() {
        best_of(0, || Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "reproducible")]
    fn flop_drift_detected() {
        let mut flops = vec![10u64, 11].into_iter();
        best_of(2, || Cost {
            cycles: 1.0,
            flops: flops.next().unwrap(),
            cray_flops: 0.0,
            bytes: 0,
        });
    }

    #[test]
    fn paper_constants() {
        assert_eq!(KTRIES_DEFAULT, 20);
        assert_eq!(KTRIES_VFFT, 5);
    }
}
