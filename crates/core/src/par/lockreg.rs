//! Opt-in lock-site registry: the recording substrate for `sxcheck`'s
//! lock-order analysis (SXC301/SXC302).
//!
//! A daemon built on [`plock`](super::plock) has a lock *hierarchy* that
//! lives only in comments ("`journal` before `cache`, never the reverse").
//! This module mechanizes it: callers name their lock sites via
//! [`plock_named`](super::plock_named), and — behind the `lockcheck`
//! feature — every acquisition records the current thread's held-site
//! stack and an ordering edge from each already-held site to the new one.
//! Blocking operations (file writes, fsyncs) call [`blocking_io`] so any
//! guard held across them is recorded too. The resulting
//! [`LockObservations`] snapshot is what `sxcheck::lockgraph` turns into
//! potential-deadlock (cycle) and guard-held-across-IO findings.
//!
//! Without the `lockcheck` feature every recording function compiles to an
//! empty body and [`snapshot`] returns an empty observation set, so
//! production binaries carry no registry, no thread-locals, no cost.
//!
//! The observation *types* are always compiled: analyzers consume them
//! (and fixtures synthesize them) independently of whether this process
//! recorded anything.

/// One observed acquisition ordering: some thread acquired `to` while
/// already holding `from`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// How many times the ordering was observed.
    pub count: u64,
    /// An example held-site stack at the moment `to` was first acquired
    /// (innermost last, `to` included).
    pub stack: Vec<String>,
}

/// One observed guard-held-across-blocking-IO crossing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoCrossing {
    /// The named blocking point (e.g. `"sxd.journal.append"`).
    pub io_point: String,
    /// The lock site that was held across it.
    pub lock: String,
    pub count: u64,
}

/// Everything the registry observed, in deterministic (sorted) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockObservations {
    /// Ordering edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// IO crossings, sorted by (io_point, lock).
    pub io_crossings: Vec<IoCrossing>,
}

impl LockObservations {
    pub fn new() -> LockObservations {
        LockObservations::default()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.io_crossings.is_empty()
    }

    /// Record that a thread acquired the sites in `stack` in order —
    /// the synthesizing entry point fixtures and tests use. Edges are
    /// added from every earlier site to every later one, deduplicated
    /// against edges already present.
    pub fn record_stack(&mut self, stack: &[&str]) {
        for (i, &to) in stack.iter().enumerate() {
            for &from in &stack[..i] {
                if from == to {
                    continue;
                }
                match self.edges.iter_mut().find(|e| e.from == from && e.to == to) {
                    Some(e) => e.count += 1,
                    None => self.edges.push(LockEdge {
                        from: from.to_string(),
                        to: to.to_string(),
                        count: 1,
                        stack: stack[..=i].iter().map(|s| s.to_string()).collect(),
                    }),
                }
            }
        }
        self.edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    }

    /// Record that `lock` was held across the blocking point `io_point`.
    pub fn record_crossing(&mut self, io_point: &str, lock: &str) {
        match self.io_crossings.iter_mut().find(|c| c.io_point == io_point && c.lock == lock) {
            Some(c) => c.count += 1,
            None => self.io_crossings.push(IoCrossing {
                io_point: io_point.to_string(),
                lock: lock.to_string(),
                count: 1,
            }),
        }
        self.io_crossings.sort_by(|a, b| (&a.io_point, &a.lock).cmp(&(&b.io_point, &b.lock)));
    }
}

/// True when this build actually records (the `lockcheck` feature is on).
pub fn enabled() -> bool {
    cfg!(feature = "lockcheck")
}

#[cfg(feature = "lockcheck")]
mod rec {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Count plus example stack at first observation.
    pub(super) type EdgeInfo = (u64, Vec<&'static str>);

    /// (from, to) -> edge info.
    pub(super) static EDGES: Mutex<BTreeMap<(&'static str, &'static str), EdgeInfo>> =
        Mutex::new(BTreeMap::new());

    /// (io_point, lock) -> count.
    pub(super) static CROSSINGS: Mutex<BTreeMap<(&'static str, &'static str), u64>> =
        Mutex::new(BTreeMap::new());

    thread_local! {
        /// The stack of named sites this thread currently holds.
        pub(super) static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }
}

/// Record that the current thread acquired `site` (called by
/// [`plock_named`](super::plock_named) after the lock is taken). Reentrant
/// holds of the same site add no self-edge.
pub fn acquire(site: &'static str) {
    #[cfg(feature = "lockcheck")]
    rec::HELD.with(|h| {
        let mut held = h.borrow_mut();
        if !held.is_empty() {
            let mut edges = super::plock(&rec::EDGES);
            for &from in held.iter() {
                if from == site {
                    continue;
                }
                let e = edges.entry((from, site)).or_insert_with(|| (0, Vec::new()));
                e.0 += 1;
                if e.1.is_empty() {
                    e.1 = held.iter().copied().chain([site]).collect();
                }
            }
        }
        held.push(site);
    });
    #[cfg(not(feature = "lockcheck"))]
    let _ = site;
}

/// Record that the current thread released `site` (the most recent hold,
/// if nested).
pub fn release(site: &'static str) {
    #[cfg(feature = "lockcheck")]
    rec::HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&s| s == site) {
            held.remove(pos);
        }
    });
    #[cfg(not(feature = "lockcheck"))]
    let _ = site;
}

/// Mark a blocking operation (file write, fsync, network round-trip).
/// Every site the current thread holds — except those in `allowed`, the
/// locks that *guard* this IO resource by design — is recorded as an
/// [`IoCrossing`].
pub fn blocking_io(io_point: &'static str, allowed: &[&'static str]) {
    #[cfg(feature = "lockcheck")]
    rec::HELD.with(|h| {
        let held = h.borrow();
        let offending: Vec<&'static str> =
            held.iter().copied().filter(|s| !allowed.contains(s)).collect();
        if !offending.is_empty() {
            let mut crossings = super::plock(&rec::CROSSINGS);
            for lock in offending {
                *crossings.entry((io_point, lock)).or_insert(0) += 1;
            }
        }
    });
    #[cfg(not(feature = "lockcheck"))]
    {
        let _ = io_point;
        let _ = allowed;
    }
}

/// Snapshot everything recorded so far, in deterministic order. Empty
/// unless the `lockcheck` feature is enabled.
pub fn snapshot() -> LockObservations {
    #[cfg(feature = "lockcheck")]
    {
        let mut obs = LockObservations::new();
        for (&(from, to), &(count, ref stack)) in super::plock(&rec::EDGES).iter() {
            obs.edges.push(LockEdge {
                from: from.to_string(),
                to: to.to_string(),
                count,
                stack: stack.iter().map(|s| s.to_string()).collect(),
            });
        }
        for (&(io_point, lock), &count) in super::plock(&rec::CROSSINGS).iter() {
            obs.io_crossings.push(IoCrossing {
                io_point: io_point.to_string(),
                lock: lock.to_string(),
                count,
            });
        }
        obs
    }
    #[cfg(not(feature = "lockcheck"))]
    LockObservations::new()
}

/// Clear the global edge and crossing tables (held-site stacks are
/// per-thread and unaffected — only call between phases, with no named
/// guards live). Test hygiene, not a production operation.
pub fn reset() {
    #[cfg(feature = "lockcheck")]
    {
        super::plock(&rec::EDGES).clear();
        super::plock(&rec::CROSSINGS).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_stacks_build_sorted_deduped_edges() {
        let mut obs = LockObservations::new();
        obs.record_stack(&["b", "c"]);
        obs.record_stack(&["a", "b", "c"]);
        let pairs: Vec<(&str, &str)> =
            obs.edges.iter().map(|e| (e.from.as_str(), e.to.as_str())).collect();
        assert_eq!(pairs, vec![("a", "b"), ("a", "c"), ("b", "c")]);
        let bc = obs.edges.iter().find(|e| e.from == "b" && e.to == "c").unwrap();
        assert_eq!(bc.count, 2);
        assert_eq!(bc.stack, vec!["b", "c"], "stack is from the first observation");
    }

    #[test]
    fn synthesized_crossings_dedupe_and_count() {
        let mut obs = LockObservations::new();
        obs.record_crossing("io", "lock-a");
        obs.record_crossing("io", "lock-a");
        obs.record_crossing("io", "lock-b");
        assert_eq!(obs.io_crossings.len(), 2);
        assert_eq!(obs.io_crossings[0].count, 2);
        assert!(!obs.is_empty());
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn recording_round_trips_through_the_global_registry() {
        use std::sync::Mutex;
        // Site names unique to this test so parallel tests cannot collide.
        let a: Mutex<i32> = Mutex::new(0);
        let b: Mutex<i32> = Mutex::new(0);
        {
            let _ga = crate::par::plock_named(&a, "lockreg-test.outer");
            let _gb = crate::par::plock_named(&b, "lockreg-test.inner");
            blocking_io("lockreg-test.io", &["lockreg-test.inner"]);
        }
        let obs = snapshot();
        let edge = obs
            .edges
            .iter()
            .find(|e| e.from == "lockreg-test.outer" && e.to == "lockreg-test.inner")
            .expect("nested acquisition recorded");
        assert_eq!(edge.stack, vec!["lockreg-test.outer", "lockreg-test.inner"]);
        let crossing = obs
            .io_crossings
            .iter()
            .find(|c| c.io_point == "lockreg-test.io")
            .expect("unallowed held lock recorded");
        assert_eq!(crossing.lock, "lockreg-test.outer", "allowed guard is exempt");
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn release_pops_and_reacquisition_is_clean() {
        use std::sync::Mutex;
        let a: Mutex<i32> = Mutex::new(0);
        let b: Mutex<i32> = Mutex::new(0);
        // Sequential (non-nested) holds must record no ordering edge.
        drop(crate::par::plock_named(&a, "lockreg-test.seq1"));
        drop(crate::par::plock_named(&b, "lockreg-test.seq2"));
        let obs = snapshot();
        assert!(
            !obs.edges.iter().any(|e| e.from.starts_with("lockreg-test.seq")),
            "sequential holds are not an ordering: {:?}",
            obs.edges
        );
    }
}
