//! Process-wide observability primitives: counters, gauges and fixed-bucket
//! latency histograms, all dependency-free and cheap enough for hot paths.
//!
//! SUPER-UX explained performance with two instruments: PROGINF job
//! accounting at program exit and FTRACE per-region timers during a run.
//! The serving daemon needs the same spine — numbers that say *where* a
//! request's time went — without pulling in an external metrics stack. A
//! [`MetricsRegistry`] hands out [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s by name; every mutation is a relaxed atomic, so
//! instrumenting a stage costs nanoseconds; [`MetricsRegistry::snapshot`]
//! freezes everything into plain data the wire layer can serialize.
//!
//! Consistency: atomics are individually, not mutually, consistent. A
//! caller that needs a *reconciled* snapshot (the `sxd` METRICS verb
//! guarantees histogram totals sum to its job counters) must perform the
//! observations and the snapshot under the same external critical section
//! — the primitives stay lock-free, the consistency discipline belongs to
//! the owner of the numbers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, stretch factor). Stores an `f64` so
/// one type covers both integral depths and ratio gauges.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Add `delta` (may be negative) with a compare-and-swap loop.
    pub fn addf(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Default latency bucket upper bounds in seconds: a 1–2.5–5 ladder per
/// decade from 1 µs to 100 s, plus an implicit overflow bucket. Documented
/// in the README ("Observing the daemon"); change both together.
pub const LATENCY_BUCKETS: [f64; 25] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
];

/// Fixed-bucket histogram. `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one extra overflow bucket catches everything larger.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// `bounds` must be finite and strictly increasing; violations are
    /// debug-asserted and otherwise tolerated (observations still land in
    /// the first bucket whose edge admits them).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Record one observation (seconds, for latency histograms).
    pub fn observe(&self, value: f64) {
        let i = self.bounds.partition_point(|&b| b < value);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Fold another histogram's observations into this one, bucket by
    /// bucket. The histograms must share identical bounds — merging two
    /// differently-shaped histograms has no meaningful result, so a
    /// mismatch returns `false` and leaves `self` untouched. Used by the
    /// cluster router to aggregate per-member latency histograms into one
    /// cluster-wide view whose quantiles are exactly the quantiles of the
    /// concatenated observation streams' bucket counts.
    pub fn merge(&self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Freeze this histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            count: buckets.iter().sum(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Plain-data view of a [`Histogram`] at one instant. `buckets` has one
/// more entry than `bounds` (the overflow bucket). `count` is recomputed
/// from the buckets so quantiles and totals always agree.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Fold another snapshot's buckets into this one (the plain-data twin
    /// of [`Histogram::merge`], for snapshots that arrived over the wire).
    /// Bounds must match exactly; a mismatch returns `false` and leaves
    /// `self` untouched. `count` is recomputed from the merged buckets so
    /// quantiles and totals stay mutually consistent.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> bool {
        if self.bounds != other.bounds || self.buckets.len() != other.buckets.len() {
            return false;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count = self.buckets.iter().sum();
        self.sum += other.sum;
        true
    }

    /// Rebuild a snapshot from the JSON form [`HistogramSnapshot::to_json`]
    /// emits (`le` bounds, `n` bucket counts, `sum`). The quantile members
    /// are derived, so they are recomputed rather than read back. Returns
    /// `None` when the document does not have the histogram shape.
    pub fn from_json(doc: &Json) -> Option<HistogramSnapshot> {
        let bounds: Vec<f64> =
            doc.get("le")?.as_arr()?.iter().map(Json::as_f64).collect::<Option<_>>()?;
        let buckets: Vec<u64> =
            doc.get("n")?.as_arr()?.iter().map(Json::as_u64).collect::<Option<_>>()?;
        if buckets.len() != bounds.len() + 1 {
            return None;
        }
        let sum = doc.get("sum")?.as_f64()?;
        Some(HistogramSnapshot { count: buckets.iter().sum(), bounds, buckets, sum })
    }

    /// Quantile estimate by linear interpolation inside the bucket where
    /// the rank falls. `q` in [0, 1]. Returns 0 for an empty histogram;
    /// ranks landing in the overflow bucket report the last bound (the
    /// histogram cannot resolve beyond its edges).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen as f64;
            seen += n;
            if (seen as f64) >= rank {
                let hi = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => return *self.bounds.last().unwrap_or(&0.0),
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - before) / n as f64;
                return lo + (hi - lo) * frac;
            }
        }
        *self.bounds.last().unwrap_or(&0.0)
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// JSON form: `{"count":N,"sum":S,"p50":..,"p90":..,"p99":..,
    /// "le":[bounds...],"n":[counts...]}` with `n` one longer than `le`
    /// (overflow last).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum)),
            ("p50".into(), Json::Num(self.p50())),
            ("p90".into(), Json::Num(self.p90())),
            ("p99".into(), Json::Num(self.p99())),
            ("le".into(), Json::Arr(self.bounds.iter().map(|&b| Json::Num(b)).collect())),
            ("n".into(), Json::Arr(self.buckets.iter().map(|&n| Json::Num(n as f64)).collect())),
        ])
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metric directory. Cloning shares the underlying metrics; the
/// registry lock guards only name resolution, never the hot-path updates.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Metric registration never panics while holding the lock, but a
        // poisoned registry must still serve reads: recover the data.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.locked().counters.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.locked().gauges.entry(name.to_string()).or_default())
    }

    /// Get or create a histogram with the given bucket bounds. The bounds
    /// of the first registration win; later callers share it.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        Arc::clone(
            self.locked()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A latency histogram with the default [`LATENCY_BUCKETS`].
    pub fn latency(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &LATENCY_BUCKETS)
    }

    /// Freeze every registered metric into plain data, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// Everything a registry held at one instant.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// JSON form with stable key order:
    /// `{"counters":{...},"gauges":{...},"latency":{name:hist,...}}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v))).collect()),
            ),
            (
                "latency".into(),
                Json::Obj(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = MetricsRegistry::new();
        let c = m.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same counter.
        m.counter("jobs").inc();
        assert_eq!(c.get(), 6);

        let g = m.gauge("depth");
        g.set(3.0);
        g.addf(2.0);
        g.addf(-4.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert!((s.sum - 105.6).abs() < 1e-9);
        // Median rank 2.5 falls in the first bucket (2 obs ≤ 1.0).
        assert!(s.p50() > 0.0 && s.p50() <= 2.0, "p50={}", s.p50());
        // p99 lands in the overflow bucket: reported as the last bound.
        assert_eq!(s.p99(), 4.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new(&LATENCY_BUCKETS).snapshot();
        assert_eq!((s.count, s.sum), (0, 0.0));
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.buckets.len(), LATENCY_BUCKETS.len() + 1);
    }

    #[test]
    fn observations_on_bucket_edges_are_inclusive() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // exactly on the first edge -> bucket 0
        h.observe(2.0); // exactly on the second edge -> bucket 1
        h.observe(2.0000001); // past the last edge -> overflow
        assert_eq!(h.snapshot().buckets, vec![1, 1, 1]);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let m = MetricsRegistry::new();
        let h = m.latency("lat");
        let c = m.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(i as f64 * 1e-6);
                        c.inc();
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counters["n"], 8000);
        assert_eq!(snap.histograms["lat"].count, 8000);
        assert_eq!(snap.histograms["lat"].buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn snapshot_json_is_valid_and_stable() {
        let m = MetricsRegistry::new();
        m.counter("b").inc();
        m.counter("a").add(2);
        m.gauge("g").set(1.5);
        m.latency("lat").observe(0.003);
        let one = m.snapshot().to_json().to_string();
        let two = m.snapshot().to_json().to_string();
        assert_eq!(one, two, "snapshots of unchanged metrics render identically");
        let doc = Json::parse(&one).expect("snapshot JSON parses");
        assert_eq!(doc.get("counters").unwrap().get("a").unwrap().as_u64(), Some(2));
        let lat = doc.get("latency").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        let le = lat.get("le").unwrap().as_arr().unwrap();
        let n = lat.get("n").unwrap().as_arr().unwrap();
        assert_eq!(n.len(), le.len() + 1, "one overflow bucket past the last bound");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 30.0]);
        for _ in 0..100 {
            h.observe(15.0);
        }
        let s = h.snapshot();
        // All mass in (10, 20]: every quantile lands inside that bucket.
        for q in [0.01, 0.5, 0.9, 0.99] {
            let v = s.quantile(q);
            assert!((10.0..=20.0).contains(&v), "q={q} -> {v}");
        }
        assert!(s.quantile(0.99) > s.quantile(0.01));
    }
}
