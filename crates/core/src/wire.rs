//! Minimal big-endian wire encoding shared across the workspace (a local
//! replacement for the `bytes` crate: the workspace builds hermetically,
//! with no external dependencies).
//!
//! The codec started life inside `ccm-proxy` for the history-tape and
//! restart records and was hoisted here so the `sxd` daemon can reuse it
//! for cache-key canonicalization. It now offers two read disciplines:
//!
//! - the legacy `get_*` methods follow `bytes::Buf` semantics and panic on
//!   underflow — callers (like the history-tape decoder) check
//!   [`WireReader::remaining`] before pulling fixed-size fields;
//! - the `try_get_*` methods are fully fallible and never panic, for
//!   decoding *untrusted* input: truncated, garbage or oversized frames
//!   yield a [`WireError`], and length-prefixed reads are validated
//!   against the bytes actually present before any allocation happens.

use crate::hash::fnv64;

/// Hard cap on a single length-prefixed field ([`WireWriter::put_str`] /
/// [`WireReader::try_get_str`]). Decoders reject longer claims before
/// allocating, so a hostile 4 GB length prefix on a 10-byte frame costs
/// nothing.
pub const MAX_FIELD_BYTES: usize = 1 << 20;

/// Hard cap on one checksummed record ([`WireWriter::put_record`] /
/// [`WireReader::try_get_record`]). Records carry whole serialized result
/// payloads (up to a reply frame), so the cap matches the 16 MiB reply
/// frame rather than the 1 MiB identifier-field cap.
pub const MAX_RECORD_BYTES: usize = 16 << 20;

/// Typed decode failure for the fallible reader API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A fixed- or prefixed-size read needed more bytes than remain.
    Underflow { needed: usize, remaining: usize },
    /// A length prefix claims more than [`MAX_FIELD_BYTES`].
    FieldTooLong { len: usize, max: usize },
    /// A string field decoded to invalid UTF-8.
    BadUtf8,
    /// A record's stored FNV-1a digest does not match its bytes (torn or
    /// corrupted write).
    BadDigest { expect: u64, got: u64 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Underflow { needed, remaining } => {
                write!(f, "wire underflow: need {needed} bytes, {remaining} remain")
            }
            WireError::FieldTooLong { len, max } => {
                write!(f, "wire field of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadUtf8 => write!(f, "wire string field is not valid UTF-8"),
            WireError::BadDigest { expect, got } => {
                write!(f, "wire record digest mismatch: stored {expect:016x}, computed {got:016x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn with_capacity(n: usize) -> WireWriter {
        WireWriter { buf: Vec::with_capacity(n) }
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string (u32 byte count + bytes), the framing
    /// [`WireReader::try_get_str`] undoes. Strings longer than
    /// [`MAX_FIELD_BYTES`] are truncated at a char boundary — the codec is
    /// for short identifiers (suite names, parameter keys), not payloads.
    pub fn put_str(&mut self, s: &str) {
        let mut end = s.len().min(MAX_FIELD_BYTES);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        self.put_u32(end as u32);
        self.buf.extend_from_slice(&s.as_bytes()[..end]);
    }

    /// Append one checksummed record: `u32` byte count, the payload bytes,
    /// then the payload's FNV-1a/64 digest. This is the unit of the `sxd`
    /// result journal: a reader that hits a short or digest-mismatched
    /// record knows the stream ends in a torn write and can truncate there.
    /// Payloads longer than [`MAX_RECORD_BYTES`] are truncated (journal
    /// records are bounded by the reply-frame cap, so this never fires in
    /// practice).
    pub fn put_record(&mut self, payload: &[u8]) {
        let end = payload.len().min(MAX_RECORD_BYTES);
        self.put_u32(end as u32);
        self.buf.extend_from_slice(&payload[..end]);
        self.put_u64(fnv64(&payload[..end]));
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish writing and take the encoded record.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded record.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(data: &'a [u8]) -> WireReader<'a> {
        WireReader { data, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let s = &self.data[self.pos..self.pos + N];
        self.pos += N;
        s.try_into().expect("slice length is N by construction")
    }

    fn try_take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.remaining() < N {
            return Err(WireError::Underflow { needed: N, remaining: self.remaining() });
        }
        Ok(self.take::<N>())
    }

    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take::<2>())
    }

    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take::<4>())
    }

    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take::<8>())
    }

    pub fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take::<8>())
    }

    /// Split off the next `n` bytes as a sub-reader.
    pub fn sub_reader(&mut self, n: usize) -> WireReader<'a> {
        let r = WireReader::new(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        r
    }

    pub fn try_get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.try_take::<2>()?))
    }

    pub fn try_get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.try_take::<4>()?))
    }

    pub fn try_get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.try_take::<8>()?))
    }

    pub fn try_get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_be_bytes(self.try_take::<8>()?))
    }

    /// Take every remaining byte, advancing the cursor to the end. Used by
    /// decoders whose last field is "the rest of the record" (the `sxd`
    /// journal stores result payloads this way, unprefixed, because the
    /// enclosing record already carries the length and digest).
    pub fn rest(&mut self) -> &'a [u8] {
        let r = &self.data[self.pos..];
        self.pos = self.data.len();
        r
    }

    /// Fallible [`WireReader::sub_reader`].
    pub fn try_sub_reader(&mut self, n: usize) -> Result<WireReader<'a>, WireError> {
        if self.remaining() < n {
            return Err(WireError::Underflow { needed: n, remaining: self.remaining() });
        }
        Ok(self.sub_reader(n))
    }

    /// Read a [`WireWriter::put_str`] field. The claimed length is checked
    /// against both the cap and the bytes present before anything is
    /// copied.
    pub fn try_get_str(&mut self) -> Result<String, WireError> {
        let len = self.try_get_u32()? as usize;
        if len > MAX_FIELD_BYTES {
            return Err(WireError::FieldTooLong { len, max: MAX_FIELD_BYTES });
        }
        if len > self.remaining() {
            return Err(WireError::Underflow { needed: len, remaining: self.remaining() });
        }
        let bytes = &self.data[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| WireError::BadUtf8)
    }

    /// Read one [`WireWriter::put_record`] record, verifying its digest.
    /// The claimed length is checked against the cap and the bytes present
    /// before anything is hashed; a digest mismatch is a typed error. On
    /// any error the cursor is left where the record started, so a journal
    /// reader can truncate the stream at the last good record boundary.
    pub fn try_get_record(&mut self) -> Result<&'a [u8], WireError> {
        let start = self.pos;
        let rewind = |r: &mut Self, e: WireError| {
            r.pos = start;
            Err(e)
        };
        let len = match self.try_get_u32() {
            Ok(n) => n as usize,
            Err(e) => return rewind(self, e),
        };
        if len > MAX_RECORD_BYTES {
            return rewind(self, WireError::FieldTooLong { len, max: MAX_RECORD_BYTES });
        }
        if len + 8 > self.remaining() {
            return rewind(
                self,
                WireError::Underflow { needed: len + 8, remaining: self.remaining() },
            );
        }
        let payload = &self.data[self.pos..self.pos + len];
        self.pos += len;
        let expect = self.get_u64();
        let got = fnv64(payload);
        if expect != got {
            return rewind(self, WireError::BadDigest { expect, got });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = WireWriter::with_capacity(32);
        w.put_u16(0xBEEF);
        w.put_u32(0x4e43_4152);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-1234.5678);
        let v = w.into_vec();
        assert_eq!(v.len(), 2 + 4 + 8 + 8);
        let mut r = WireReader::new(&v);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0x4e43_4152);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f64(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sub_reader_advances_parent() {
        let mut w = WireWriter::default();
        w.put_u32(7);
        w.put_u32(9);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        let mut head = r.sub_reader(4);
        assert_eq!(head.get_u32(), 7);
        assert_eq!(r.get_u32(), 9);
    }

    #[test]
    fn rest_takes_everything_left_exactly_once() {
        let mut w = WireWriter::default();
        w.put_u16(3);
        w.put_bytes(b"tail bytes");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.get_u16(), 3);
        assert_eq!(r.rest(), b"tail bytes");
        assert_eq!(r.rest(), b"");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let v = vec![1u8, 2];
        let mut r = WireReader::new(&v);
        r.get_u32();
    }

    #[test]
    fn try_reads_report_underflow_instead_of_panicking() {
        let v = vec![1u8, 2];
        let mut r = WireReader::new(&v);
        assert_eq!(r.try_get_u32(), Err(WireError::Underflow { needed: 4, remaining: 2 }));
        // The failed read consumed nothing; a fitting read still works.
        assert_eq!(r.try_get_u16(), Ok(0x0102));
        assert_eq!(r.try_get_u16(), Err(WireError::Underflow { needed: 2, remaining: 0 }));
    }

    #[test]
    fn string_roundtrip_and_hostile_length_prefix() {
        let mut w = WireWriter::default();
        w.put_str("RADABS");
        w.put_str("grüße"); // multibyte UTF-8
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.try_get_str().unwrap(), "RADABS");
        assert_eq!(r.try_get_str().unwrap(), "grüße");

        // A frame claiming a 4 GB string must fail cheaply, not allocate.
        let mut w = WireWriter::default();
        w.put_u32(u32::MAX);
        w.put_bytes(b"xx");
        let hostile = w.into_vec();
        let mut r = WireReader::new(&hostile);
        assert!(matches!(r.try_get_str(), Err(WireError::FieldTooLong { .. })));

        // A plausible length prefix with missing bytes is an underflow.
        let mut w = WireWriter::default();
        w.put_u32(10);
        w.put_bytes(b"short");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.try_get_str(), Err(WireError::Underflow { needed: 10, remaining: 5 }));
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut w = WireWriter::default();
        w.put_u32(2);
        w.put_bytes(&[0xff, 0xfe]);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.try_get_str(), Err(WireError::BadUtf8));
    }

    #[test]
    fn put_str_caps_field_length_at_char_boundary() {
        // 3-byte chars straddling the cap: the writer must truncate to a
        // boundary so the reader gets valid UTF-8 back.
        let s = "€".repeat(MAX_FIELD_BYTES / 3 + 8);
        let mut w = WireWriter::default();
        w.put_str(&s);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        let back = r.try_get_str().unwrap();
        assert!(back.len() <= MAX_FIELD_BYTES);
        assert!(s.starts_with(&back));
    }

    #[test]
    fn records_roundtrip_and_leave_the_cursor_between_records() {
        let mut w = WireWriter::default();
        w.put_record(b"first payload");
        w.put_record(b"");
        w.put_record(b"third");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.try_get_record().unwrap(), b"first payload");
        assert_eq!(r.try_get_record().unwrap(), b"");
        assert_eq!(r.try_get_record().unwrap(), b"third");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.try_get_record(), Err(WireError::Underflow { .. })));
    }

    #[test]
    fn torn_and_corrupted_records_rewind_to_the_record_boundary() {
        let mut w = WireWriter::default();
        w.put_record(b"good");
        w.put_record(b"torn-away");
        let v = w.into_vec();
        let good_end = 4 + 4 + 8; // len + "good" + digest

        // Every strict truncation of the second record fails and leaves
        // the cursor exactly at the end of the first (truncation point).
        for cut in good_end..v.len() {
            let mut r = WireReader::new(&v[..cut]);
            assert_eq!(r.try_get_record().unwrap(), b"good");
            assert!(r.try_get_record().is_err(), "cut at {cut} decoded");
            assert_eq!(r.remaining(), cut - good_end, "cursor must rewind to the boundary");
        }

        // A flipped payload byte is a digest mismatch, not silent data.
        let mut corrupt = v.clone();
        corrupt[good_end + 4] ^= 0x40;
        let mut r = WireReader::new(&corrupt);
        assert_eq!(r.try_get_record().unwrap(), b"good");
        assert!(matches!(r.try_get_record(), Err(WireError::BadDigest { .. })));

        // A hostile length prefix is rejected before hashing anything.
        let mut w = WireWriter::default();
        w.put_u32((MAX_RECORD_BYTES + 1) as u32);
        w.put_bytes(b"xx");
        let hostile = w.into_vec();
        let mut r = WireReader::new(&hostile);
        assert!(matches!(r.try_get_record(), Err(WireError::FieldTooLong { .. })));
        assert_eq!(r.remaining(), hostile.len(), "failed record read consumes nothing");
    }

    /// Property-style round-trip: a seeded random schema of typed fields
    /// writes then reads back identically, and any truncation of the
    /// encoded record decodes to `Err`, never a panic.
    #[test]
    fn random_schemas_roundtrip_and_truncations_never_panic() {
        let mut rng = SmallRng::seed_from_u64(0x5358_4434); // "SXD4"
        for _ in 0..200 {
            let nfields = rng.range(1, 12);
            let kinds: Vec<usize> = (0..nfields).map(|_| rng.next_below(5)).collect();
            let mut w = WireWriter::default();
            let mut expect: Vec<String> = Vec::new();
            for &k in &kinds {
                match k {
                    0 => {
                        let v = rng.next_u64() as u16;
                        w.put_u16(v);
                        expect.push(format!("u16:{v}"));
                    }
                    1 => {
                        let v = rng.next_u64() as u32;
                        w.put_u32(v);
                        expect.push(format!("u32:{v}"));
                    }
                    2 => {
                        let v = rng.next_u64();
                        w.put_u64(v);
                        expect.push(format!("u64:{v}"));
                    }
                    3 => {
                        let v = rng.next_f64() * 1e6 - 5e5;
                        w.put_f64(v);
                        expect.push(format!("f64:{v:?}"));
                    }
                    _ => {
                        let len = rng.next_below(24);
                        let s: String =
                            (0..len).map(|_| (b'a' + rng.next_below(26) as u8) as char).collect();
                        w.put_str(&s);
                        expect.push(format!("str:{s}"));
                    }
                }
            }
            let bytes = w.into_vec();

            // Full read-back matches what was written.
            let mut r = WireReader::new(&bytes);
            for (i, &k) in kinds.iter().enumerate() {
                let got = match k {
                    0 => format!("u16:{}", r.try_get_u16().unwrap()),
                    1 => format!("u32:{}", r.try_get_u32().unwrap()),
                    2 => format!("u64:{}", r.try_get_u64().unwrap()),
                    3 => format!("f64:{:?}", r.try_get_f64().unwrap()),
                    _ => format!("str:{}", r.try_get_str().unwrap()),
                };
                assert_eq!(got, expect[i]);
            }
            assert_eq!(r.remaining(), 0);

            // Any strict truncation must end in a typed error by the time
            // the schema is exhausted (never a panic, never phantom data).
            if !bytes.is_empty() {
                let cut = rng.next_below(bytes.len());
                let mut r = WireReader::new(&bytes[..cut]);
                let mut failed = false;
                for &k in &kinds {
                    let res = match k {
                        0 => r.try_get_u16().map(|_| ()),
                        1 => r.try_get_u32().map(|_| ()),
                        2 => r.try_get_u64().map(|_| ()),
                        3 => r.try_get_f64().map(|_| ()),
                        _ => r.try_get_str().map(|_| ()),
                    };
                    if res.is_err() {
                        failed = true;
                        break;
                    }
                }
                assert!(failed, "truncated record decoded cleanly");
            }
        }
    }
}
