//! Result containers and rendering: fixed-width text tables (what the
//! harness prints, mirroring the paper's tables) and JSON series for
//! mechanical comparison in EXPERIMENTS.md.
//!
//! JSON is emitted by a small hand-rolled serializer (the workspace builds
//! hermetically, with no external crates), producing the same tagged shape
//! `serde` with `#[serde(tag = "kind", rename_all = "snake_case")]` would.

/// Escape a string for inclusion in a JSON document (RFC 8259 §7).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number (finite values only; non-finite values
/// become `null`, which JSON has no number for).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", cells.join(","))
}

/// A table of results, one per paper table.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in '{}'", self.title);
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: String = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('|');
            }
            s
        };
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A labelled (x, y) series, one per curve of a paper figure.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// Axis names, e.g. ("N", "MB/sec").
    pub x_name: String,
    pub y_name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(
        label: impl Into<String>,
        x_name: impl Into<String>,
        y_name: impl Into<String>,
    ) -> Series {
        Series {
            label: label.into(),
            x_name: x_name.into(),
            y_name: y_name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Peak y value over the series.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Render as a two-column listing under the label.
    pub fn render(&self) -> String {
        let mut out = format!("{}  [{} vs {}]\n", self.label, self.y_name, self.x_name);
        for &(x, y) in &self.points {
            out.push_str(&format!("  {x:>12.1}  {y:>14.2}\n"));
        }
        out
    }
}

/// A figure: several series plotted together.
#[derive(Debug, Clone)]
pub struct Figure {
    pub title: String,
    pub series: Vec<Series>,
}

impl Figure {
    pub fn new(title: impl Into<String>) -> Figure {
        Figure { title: title.into(), series: Vec::new() }
    }

    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        for s in &self.series {
            out.push_str(&s.render());
        }
        out
    }
}

/// Any experiment artifact the harness can emit.
#[derive(Debug, Clone)]
pub enum Artifact {
    Table(Table),
    Figure(Figure),
    /// A single headline number (e.g. RADABS Cray-equivalent Mflops).
    Scalar {
        title: String,
        value: f64,
        unit: String,
    },
    /// A pass/fail verdict with detail lines (PARANOIA, ELEFUNT accuracy).
    Verdict {
        title: String,
        passed: bool,
        details: Vec<String>,
    },
}

impl Artifact {
    pub fn render(&self) -> String {
        match self {
            Artifact::Table(t) => t.render(),
            Artifact::Figure(f) => f.render(),
            Artifact::Scalar { title, value, unit } => format!("{title}: {value:.1} {unit}\n"),
            Artifact::Verdict { title, passed, details } => {
                let mut out = format!("{title}: {}\n", if *passed { "PASSED" } else { "FAILED" });
                for d in details {
                    out.push_str(&format!("  {d}\n"));
                }
                out
            }
        }
    }

    /// Serialize as a tagged JSON object: `{"kind": "...", ...}`.
    pub fn to_json(&self) -> String {
        match self {
            Artifact::Table(t) => {
                let rows: Vec<String> = t.rows.iter().map(|r| json_str_array(r)).collect();
                format!(
                    "{{\"kind\":\"table\",\"title\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
                    json_escape(&t.title),
                    json_str_array(&t.headers),
                    rows.join(",")
                )
            }
            Artifact::Figure(f) => {
                let series: Vec<String> = f
                    .series
                    .iter()
                    .map(|s| {
                        let pts: Vec<String> = s
                            .points
                            .iter()
                            .map(|&(x, y)| format!("[{},{}]", json_f64(x), json_f64(y)))
                            .collect();
                        format!(
                            "{{\"label\":\"{}\",\"x_name\":\"{}\",\"y_name\":\"{}\",\"points\":[{}]}}",
                            json_escape(&s.label),
                            json_escape(&s.x_name),
                            json_escape(&s.y_name),
                            pts.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"kind\":\"figure\",\"title\":\"{}\",\"series\":[{}]}}",
                    json_escape(&f.title),
                    series.join(",")
                )
            }
            Artifact::Scalar { title, value, unit } => format!(
                "{{\"kind\":\"scalar\",\"title\":\"{}\",\"value\":{},\"unit\":\"{}\"}}",
                json_escape(title),
                json_f64(*value),
                json_escape(unit)
            ),
            Artifact::Verdict { title, passed, details } => format!(
                "{{\"kind\":\"verdict\",\"title\":\"{}\",\"passed\":{},\"details\":{}}}",
                json_escape(title),
                passed,
                json_str_array(details)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table X", &["CPUs", "Time"]);
        t.row(&["1".into(), "1861.25".into()]);
        t.row(&["32".into(), "226.62".into()]);
        let r = t.render();
        assert!(r.contains("Table X"));
        assert!(r.contains("1861.25"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5); // title + header + sep + 2 rows
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn series_peak() {
        let mut s = Series::new("COPY", "N", "MB/sec");
        s.push(1.0, 100.0);
        s.push(1000.0, 9000.0);
        s.push(1e6, 7500.0);
        assert_eq!(s.peak(), 9000.0);
    }

    #[test]
    fn artifact_json_shape() {
        let a = Artifact::Scalar {
            title: "RADABS".into(),
            value: 865.9,
            unit: "Cray-equivalent Mflops".into(),
        };
        let j = a.to_json();
        assert_eq!(
            j,
            "{\"kind\":\"scalar\",\"title\":\"RADABS\",\"value\":865.9,\"unit\":\"Cray-equivalent Mflops\"}"
        );
    }

    #[test]
    fn json_escaping_and_nonfinite() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
        let mut t = Table::new("quote \" here", &["h"]);
        t.row(&["cell\n".into()]);
        let j = Artifact::Table(t).to_json();
        assert!(j.contains("quote \\\" here"));
        assert!(j.contains("cell\\n"));
    }

    #[test]
    fn verdict_render_shows_pass() {
        let a = Artifact::Verdict {
            title: "PARANOIA".into(),
            passed: true,
            details: vec!["no flaws".into()],
        };
        let r = a.render();
        assert!(r.contains("PASSED"));
        assert!(r.contains("no flaws"));
    }

    #[test]
    fn figure_renders_all_series() {
        let mut f = Figure::new("Figure 5");
        f.push(Series::new("COPY", "N", "MB/sec"));
        f.push(Series::new("IA", "N", "MB/sec"));
        let r = f.render();
        assert!(r.contains("COPY") && r.contains("IA"));
    }
}
