//! Property tests for histogram merging: the cluster METRICS aggregation
//! is only sound if merging two members' histograms is *exactly* the
//! histogram of the concatenated observation stream — same bucket counts,
//! therefore the same interpolated percentiles.

use ncar_suite::metrics::{Histogram, HistogramSnapshot, LATENCY_BUCKETS};
use ncar_suite::SmallRng;

/// Random strictly-increasing bucket ladder of 3..=12 edges.
fn random_bounds(rng: &mut SmallRng) -> Vec<f64> {
    let n = 3 + rng.next_below(10);
    let mut edge = 0.0;
    (0..n)
        .map(|_| {
            edge += 1e-6 + rng.next_f64() * 10.0;
            edge
        })
        .collect()
}

/// Random observation stream, deliberately spanning under-, in- and
/// overflow-range values relative to `bounds`.
fn random_stream(rng: &mut SmallRng, bounds: &[f64], len: usize) -> Vec<f64> {
    let top = bounds.last().copied().unwrap_or(1.0) * 1.5;
    (0..len).map(|_| rng.next_f64() * top).collect()
}

#[test]
fn merged_percentiles_equal_percentiles_of_the_concatenated_stream() {
    let mut rng = SmallRng::seed_from_u64(0x5358_4d52_4745);
    for round in 0..64 {
        let bounds = random_bounds(&mut rng);
        let len_a = rng.next_below(300);
        let len_b = 1 + rng.next_below(300);
        let a = random_stream(&mut rng, &bounds, len_a);
        let b = random_stream(&mut rng, &bounds, len_b);

        let ha = Histogram::new(&bounds);
        let hb = Histogram::new(&bounds);
        let concat = Histogram::new(&bounds);
        for &v in &a {
            ha.observe(v);
            concat.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            concat.observe(v);
        }

        assert!(ha.merge(&hb), "identical bounds must merge (round {round})");
        let merged = ha.snapshot();
        let reference = concat.snapshot();

        assert_eq!(merged.buckets, reference.buckets, "round {round}: bucket counts");
        assert_eq!(merged.count, reference.count, "round {round}: totals");
        // Quantiles are a pure function of (bounds, buckets), so equality
        // is exact — bit-for-bit, not approximate.
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(
                merged.quantile(q).to_bits(),
                reference.quantile(q).to_bits(),
                "round {round}: q={q}"
            );
        }
        // Sums differ only by float association order across the streams.
        let scale = reference.sum.abs().max(1.0);
        assert!(
            (merged.sum - reference.sum).abs() <= 1e-9 * scale,
            "round {round}: sum {} vs {}",
            merged.sum,
            reference.sum
        );
    }
}

#[test]
fn snapshot_merge_agrees_with_live_merge_and_roundtrips_json() {
    let mut rng = SmallRng::seed_from_u64(0x534e_4150_4d52);
    for _ in 0..32 {
        let ha = Histogram::new(&LATENCY_BUCKETS);
        let hb = Histogram::new(&LATENCY_BUCKETS);
        for _ in 0..rng.next_below(200) {
            ha.observe(rng.next_f64() * 200.0);
        }
        for _ in 0..rng.next_below(200) {
            hb.observe(rng.next_f64() * 200.0);
        }
        let mut sa = ha.snapshot();
        let sb = hb.snapshot();
        assert!(sa.merge(&sb));
        assert!(ha.merge(&hb));
        assert_eq!(sa, ha.snapshot(), "snapshot merge mirrors live merge");

        // The wire round trip the router actually performs: to_json on the
        // member, from_json + merge on the router.
        let back = HistogramSnapshot::from_json(&sa.to_json()).expect("histogram JSON round-trips");
        assert_eq!(back.buckets, sa.buckets);
        assert_eq!(back.count, sa.count);
        assert_eq!(back.bounds, sa.bounds);
    }
}

#[test]
fn merge_refuses_mismatched_bounds_and_leaves_self_untouched() {
    let a = Histogram::new(&[1.0, 2.0, 3.0]);
    let b = Histogram::new(&[1.0, 2.5, 3.0]);
    a.observe(0.5);
    b.observe(0.5);
    let before = a.snapshot();
    assert!(!a.merge(&b), "different ladders must not merge");
    assert_eq!(a.snapshot(), before);

    let mut sa = a.snapshot();
    assert!(!sa.merge(&b.snapshot()));
    assert_eq!(sa, before);
}
