//! Lock-order audit of a live daemon (the no-false-positives half of the
//! SXC301/SXC302 acceptance criteria).
//!
//! With the `lockcheck` feature on, every `plock_named` site in the server
//! records ordering edges and blocking-IO crossings into the process-wide
//! registry. This test floods a durable daemon — exercising the submit
//! path, the cache, the journal append/compact path and shutdown — then
//! runs `sxcheck::lockgraph` over the snapshot: the daemon's documented
//! hierarchy (`inflight` before `cache`, `journal` before `cache`) must
//! come back with no findings.
#![cfg(feature = "lockcheck")]

use std::collections::BTreeMap;
use std::thread::JoinHandle;

use ncar_suite::par::lockreg;
use ncar_suite::{Artifact, Registry};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry, Server, ServerConfig};

fn toy_registry() -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "shallow",
        JobEntry::new(Demand::light(3.0), "shallow-water proxy", |m, p| {
            let n = p.get("n").map(String::as_str).unwrap_or("64").to_string();
            Ok(vec![Artifact::Scalar {
                title: format!("{} shallow n={n}", m.name),
                value: 1000.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r.register(
        "radabs",
        JobEntry::new(Demand::light(1.5), "radiation-absorption proxy", |m, _p| {
            Ok(vec![Artifact::Scalar {
                title: format!("{} radabs", m.name),
                value: 500.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r
}

fn spawn_durable_daemon(dir: &std::path::Path) -> (String, JoinHandle<()>) {
    let config = ServerConfig { state_dir: Some(dir.to_path_buf()), ..ServerConfig::default() };
    let server = Server::bind(toy_registry(), config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

#[test]
fn flooded_daemon_lock_graph_has_no_findings() {
    let dir = std::env::temp_dir().join(format!("sxd-lockcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (addr, handle) = spawn_durable_daemon(&dir);
    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 8,
        jobs: 48,
        suites: vec!["shallow".into(), "radabs".into()],
        machine: "sx4-9.2".into(),
        pipeline: 4,
    })
    .unwrap();
    assert!(outcome.ok(), "flood problems: {:?}", outcome.problems);

    // Distinct submits too, so the journal appends (and may compact)
    // while the flood's cache entries are still warm.
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..16 {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), format!("{}", 64 + i));
        client.submit("shallow", "sx4-9.2", &params).unwrap();
    }
    let _ = client.metrics().unwrap();
    client.shutdown().unwrap();
    handle.join().expect("daemon exits cleanly");

    let obs = lockreg::snapshot();
    assert!(
        !obs.edges.is_empty(),
        "the instrumented daemon must have recorded at least one nested acquisition"
    );
    assert!(
        obs.edges.iter().any(|e| e.from == "sxd.inflight" && e.to == "sxd.cache"),
        "the single-flight lookup nests cache under inflight: {:?}",
        obs.edges
    );
    assert!(
        obs.edges.iter().any(|e| e.from == "sxd.journal" && e.to == "sxd.cache"),
        "compaction-gate nests cache under journal: {:?}",
        obs.edges
    );

    let findings = sxcheck::lockgraph::analyze(&obs);
    assert!(
        findings.is_empty(),
        "no false positives on the daemon's documented lock hierarchy:\n{}",
        findings.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );

    let _ = std::fs::remove_dir_all(&dir);
}
