//! Lock-order audit of a live *cluster* (the router half of the
//! SXC301/SXC302 acceptance criteria).
//!
//! The router's discipline is stricter than the daemon's: its four named
//! locks (`sxd.router.members`, `.handles`, `.counters`, `.conns`) are all
//! leaves — never nested inside each other or inside a member daemon's
//! locks, and never held across the shard-forwarding I/O crossings
//! (`sxd.router.forward` / `.drain` / `.join` / `.handoff`). This test
//! drives a durable 3-shard cluster through the full verb surface — routed
//! floods, fan-out stats/metrics, a member drain with keyspace hand-off,
//! cluster shutdown — then runs `sxcheck::lockgraph` over the process-wide
//! snapshot: member edges and router observations together must produce no
//! findings.
//!
//! This lives in its own test binary (not `lockcheck.rs`) because the
//! lockreg registry is process-global: a separate binary gives the cluster
//! a clean snapshot that is still a *superset* check — member daemons run
//! in-process, so their lock graph is re-audited here under router load.
#![cfg(feature = "lockcheck")]

use std::collections::BTreeMap;

use ncar_suite::par::lockreg;
use ncar_suite::{Artifact, Registry};
use sxd::cluster::{spawn, ClusterConfig};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry};

fn toy_registry() -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "shallow",
        JobEntry::new(Demand::light(3.0), "shallow-water proxy", |m, p| {
            let n = p.get("n").map(String::as_str).unwrap_or("64").to_string();
            Ok(vec![Artifact::Scalar {
                title: format!("{} shallow n={n}", m.name),
                value: 1000.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r.register(
        "radabs",
        JobEntry::new(Demand::light(1.5), "radiation-absorption proxy", |m, _p| {
            Ok(vec![Artifact::Scalar {
                title: format!("{} radabs", m.name),
                value: 500.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r
}

#[test]
fn cluster_lock_graph_has_no_findings() {
    let dir = std::env::temp_dir().join(format!("sxd-cluster-lockcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let cluster = spawn(
        toy_registry(),
        ClusterConfig { shards: 3, state_dir: Some(dir.clone()), ..ClusterConfig::default() },
    )
    .expect("cluster spawns");
    let addr = cluster.addr().to_string();

    // Routed flood: concurrent handlers exercise the members/conns/
    // counters locks against each other while member daemons take their
    // own inflight→cache and journal→cache orderings underneath.
    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 8,
        jobs: 48,
        suites: vec!["shallow".into(), "radabs".into()],
        machine: "sx4-9.2".into(),
        pipeline: 4,
    })
    .unwrap();
    assert!(outcome.ok(), "flood problems: {:?}", outcome.problems);

    // Distinct submits so every member journals, then the drain hand-off
    // (journal read + put forwarding + restart-spec resubmit) runs with
    // warm caches on the survivors.
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..16 {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), format!("{}", 64 + i));
        client.submit("shallow", "sx4-9.2", &params).unwrap();
    }
    let _ = client.metrics().unwrap();
    client.drain_member(1, Some(2_000)).unwrap();
    let _ = client.metrics().unwrap();
    client.shutdown().unwrap();
    cluster.join().expect("cluster exits cleanly");

    let obs = lockreg::snapshot();
    // Sanity: the member daemons really were instrumented under this load.
    assert!(
        obs.edges.iter().any(|e| e.from == "sxd.inflight" && e.to == "sxd.cache"),
        "member daemons must have recorded their hierarchy: {:?}",
        obs.edges
    );
    // The router's leaf discipline: none of its locks ever appears as the
    // *outer* side of an ordering edge.
    for e in &obs.edges {
        assert!(
            !e.from.starts_with("sxd.router."),
            "router locks are leaves, but {} was held while taking {}",
            e.from,
            e.to
        );
    }

    let findings = sxcheck::lockgraph::analyze(&obs);
    assert!(
        findings.is_empty(),
        "no SXC301/SXC302 findings on the cluster lock graph:\n{}",
        findings.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );

    let _ = std::fs::remove_dir_all(&dir);
}
