//! Property tests for the rendezvous ring: the three guarantees the
//! cluster router leans on. Placement must be a pure function of the key
//! and the member list (any front end computes the same owner), spread
//! keys evenly (no hot shard), and remap *only* the leaving member's keys
//! on a membership change (the hand-off moves one keyspace, not the
//! cluster's).

use std::collections::BTreeMap;

use ncar_suite::SmallRng;
use sxd::cache_key;
use sxd::cluster::Ring;
use sxsim::presets;

/// 10k synthetic keys: half raw rng words, half real cache keys from
/// synthetic configurations, so the test covers the actual key
/// distribution (FNV-1a digests) and not just ideal random input.
fn synthetic_keys() -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(0x5249_4e47_4b45_5953);
    let mut keys: Vec<u64> = (0..5_000).map(|_| rng.next_u64()).collect();
    let machine = presets::sx4_benchmarked();
    let suites = ["fig5", "radabs", "table3", "pop", "prodload"];
    for i in 0..5_000u64 {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), i.to_string());
        keys.push(cache_key(suites[(i % 5) as usize], &machine, &params));
    }
    keys
}

#[test]
fn placement_is_deterministic_across_independent_rings() {
    let a = Ring::new(Ring::default_names(4));
    let b = Ring::new(Ring::default_names(4));
    for key in synthetic_keys() {
        assert_eq!(a.owner(key), b.owner(key), "key {key:#x}");
        assert_eq!(a.owner(key), a.owner(key), "owner must be stable");
    }
}

#[test]
fn placement_is_uniform_within_15_percent_across_4_shards() {
    let ring = Ring::new(Ring::default_names(4));
    let keys = synthetic_keys();
    let mut counts = [0usize; 4];
    for &key in &keys {
        counts[ring.owner(key).unwrap()] += 1;
    }
    let expected = keys.len() as f64 / 4.0;
    for (shard, &n) in counts.iter().enumerate() {
        let skew = (n as f64 - expected).abs() / expected;
        assert!(
            skew <= 0.15,
            "shard {shard} holds {n} of {} keys ({:+.1}% from uniform)",
            keys.len(),
            skew * 100.0
        );
    }
}

#[test]
fn removing_one_member_remaps_only_that_members_keys() {
    let ring = Ring::new(Ring::default_names(4));
    let leaving = 2usize;
    let mut remapped = 0usize;
    let keys = synthetic_keys();
    for &key in &keys {
        let before = ring.owner(key).unwrap();
        let after = ring.owner_among(key, |m| m != leaving).unwrap();
        if before == leaving {
            // The leaving member's keys must land elsewhere.
            assert_ne!(after, leaving, "key {key:#x} still routed to the dead member");
            remapped += 1;
        } else {
            // Every other key's argmax is untouched: minimal disruption.
            assert_eq!(before, after, "key {key:#x} moved although its owner stayed");
        }
    }
    // Sanity: the dead member owned roughly a quarter of the keyspace.
    let frac = remapped as f64 / keys.len() as f64;
    assert!((0.15..=0.35).contains(&frac), "remapped fraction {frac:.3} is not ~1/4");
}

#[test]
fn every_alive_subset_still_covers_the_keyspace() {
    let ring = Ring::new(Ring::default_names(4));
    for key in synthetic_keys().into_iter().take(500) {
        for dead in 0..4usize {
            let owner = ring.owner_among(key, |m| m != dead).unwrap();
            assert_ne!(owner, dead);
        }
        assert_eq!(ring.owner_among(key, |_| false), None, "no member, no owner");
    }
}
