//! Cluster acceptance tests: the multi-node fabric behind the router must
//! behave exactly like one daemon — same wire protocol, same byte-stable
//! cache replies, same reconciled counters — while a membership change
//! (one shard draining out) loses no acknowledged work.

use std::collections::BTreeMap;

use ncar_suite::{Artifact, Json, Registry};
use sxd::cluster::{spawn, ClusterConfig};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry, ServerConfig};

fn toy_registry() -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "shallow",
        JobEntry::new(Demand::light(3.0), "shallow-water proxy", |m, p| {
            let n = p.get("n").map(String::as_str).unwrap_or("64").to_string();
            Ok(vec![Artifact::Scalar {
                title: format!("{} shallow n={n}", m.name),
                value: 1000.0 + n.len() as f64,
                unit: "mflops".into(),
            }])
        }),
    );
    r.register(
        "radabs",
        JobEntry::new(Demand::light(1.5), "radiation-absorption proxy", |m, _p| {
            Ok(vec![Artifact::Scalar {
                title: format!("{} radabs", m.name),
                value: 500.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sxd-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params_n(n: usize) -> BTreeMap<String, String> {
    let mut p = BTreeMap::new();
    p.insert("n".to_string(), n.to_string());
    p
}

/// Assert the merged counters satisfy the cluster reconciliation
/// invariant and return (accepted, done, absorbed, cache_hits).
fn reconciled_counters(metrics: &Json) -> (u64, u64, u64, u64) {
    assert_eq!(
        metrics.get("reconciled").and_then(Json::as_bool),
        Some(true),
        "cluster metrics must be reconciled: {metrics}"
    );
    let stats = metrics.get("stats").expect("metrics embeds stats");
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        n("accepted"),
        n("done") + n("rejected") + n("queued") + n("running"),
        "summed counters must reconcile: {stats}"
    );
    let hits = stats.get("cache").and_then(|c| c.get("hits")).and_then(Json::as_u64).unwrap_or(0);
    (n("accepted"), n("done"), n("absorbed"), hits)
}

#[test]
fn flood_through_the_router_passes_the_single_node_acceptance_checks() {
    let cluster = spawn(toy_registry(), ClusterConfig { shards: 3, ..ClusterConfig::default() })
        .expect("cluster spawns");
    let addr = cluster.addr().to_string();

    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 6,
        jobs: 36,
        suites: vec!["shallow".into(), "radabs".into()],
        machine: "sx4-9.2".into(),
        pipeline: 4,
    })
    .expect("flood runs");
    assert!(outcome.ok(), "flood through the router: {:?}", outcome.problems);
    assert!(outcome.cache_hits > 0, "repeat configs must hit some member's cache");

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    cluster.join().expect("cluster exits cleanly");
}

#[test]
fn routing_is_deterministic_and_single_node_verbs_stay_typed() {
    let cluster =
        spawn(toy_registry(), ClusterConfig { shards: 3, ..ClusterConfig::default() }).unwrap();
    let addr = cluster.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // `route` answers without running anything: same config, same owner.
    let a = client.route("shallow", "sx4-9.2", &params_n(1)).unwrap();
    let b = client.route("shallow", "sx4-9.2", &params_n(1)).unwrap();
    assert_eq!(a.get("member").and_then(Json::as_u64), b.get("member").and_then(Json::as_u64));
    assert!(a.get("shard").and_then(Json::as_str).unwrap_or("").starts_with("shard-"));
    let (_, done, _, _) = reconciled_counters(&client.metrics().unwrap());
    assert_eq!(done, 0, "route must not execute work");

    // A submit's reply carries the key that `route` predicted.
    let sub = client.submit("shallow", "sx4-9.2", &params_n(1)).unwrap();
    assert_eq!(Some(sub.key.as_str()), a.get("key").and_then(Json::as_str));

    // Unknown machine is rejected at the router, typed like a daemon.
    let err = client.route("shallow", "cray-2", &BTreeMap::new()).unwrap_err();
    assert_eq!(err.kind(), "unknown_machine");

    // A plain daemon (a cluster member, dialed directly) rejects the
    // cluster-only verbs with typed errors.
    let member = cluster.member_addrs()[0].to_string();
    let mut direct = Client::connect(&member).unwrap();
    let err = direct.drain_member(0, None).unwrap_err();
    assert_eq!(err.kind(), "bad_request", "{err}");
    let err = direct.route("shallow", "sx4-9.2", &BTreeMap::new()).unwrap_err();
    assert_eq!(err.kind(), "bad_request", "{err}");

    client.shutdown().unwrap();
    cluster.join().unwrap();
}

/// The acceptance-criteria test: 3 durable shards, N distinct configs,
/// one member drains out of the ring. Nothing acknowledged is lost,
/// repeat submits of the drained member's keys hit the successors'
/// caches byte-identically, and the merged counters reconcile on both
/// sides of the membership change.
#[test]
fn draining_a_member_hands_its_keyspace_off_byte_identically() {
    let dir = temp_dir("handoff");
    let cluster = spawn(
        toy_registry(),
        ClusterConfig {
            shards: 3,
            state_dir: Some(dir.clone()),
            server: ServerConfig::default(),
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    let addr = cluster.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Flood N distinct configs and remember each first reply.
    const N: usize = 12;
    let mut first = Vec::new();
    let mut owners = Vec::new();
    for i in 0..N {
        let sub = client.submit("shallow", "sx4-9.2", &params_n(i)).unwrap();
        assert!(!sub.cached, "config {i} is distinct");
        let route = client.route("shallow", "sx4-9.2", &params_n(i)).unwrap();
        owners.push(route.get("member").and_then(Json::as_u64).unwrap() as usize);
        first.push(sub.raw);
    }

    // Counters reconcile before the membership change.
    let (accepted_before, done_before, _, _) = reconciled_counters(&client.metrics().unwrap());
    assert_eq!((accepted_before, done_before), (N as u64, N as u64));

    // Drain the member that owns config 0. Synchronous: when the reply
    // arrives, the hand-off has completed.
    let victim = owners[0];
    let victim_jobs = owners.iter().filter(|&&o| o == victim).count();
    client.drain_member(victim, Some(2_000)).unwrap();

    // Its keyspace moved: config 0 now routes to a different member.
    let rerouted = client.route("shallow", "sx4-9.2", &params_n(0)).unwrap();
    assert_ne!(rerouted.get("member").and_then(Json::as_u64).unwrap() as usize, victim);

    // Every config — the drained member's included — replays its exact
    // first bytes from some surviving member's cache.
    for (i, original) in first.iter().enumerate() {
        let sub = client.submit("shallow", "sx4-9.2", &params_n(i)).unwrap();
        assert!(sub.cached, "config {i} must be served from cache after the drain");
        assert_eq!(
            sub.raw,
            original.replace("\"cached\":false", "\"cached\":true"),
            "config {i} must replay byte-identically across the membership change"
        );
    }

    // Counters reconcile after: the N repeats all retired as done, the
    // hand-off absorbed the victim's journal into its successors, and
    // the repeats of the victim's keys were cache hits there.
    let m = client.metrics().unwrap();
    let (accepted_after, done_after, absorbed, hits) = reconciled_counters(&m);
    // The drained member's counters left the merged view with it; the
    // survivors saw the N repeat submits.
    assert_eq!(accepted_after, (N - victim_jobs) as u64 + N as u64);
    assert_eq!(done_after, accepted_after);
    assert_eq!(absorbed as usize, victim_jobs, "every journaled result was handed off");
    assert!(hits >= N as u64, "repeats must hit surviving caches, got {hits}");

    // The router's own stats member reports the hand-off.
    let stats_reply = client.raw("{\"op\":\"stats\"}").unwrap();
    let doc = Json::parse(&stats_reply).unwrap();
    let router = doc.get("stats").and_then(|s| s.get("router")).expect("router tallies");
    assert_eq!(router.get("handoff_entries").and_then(Json::as_u64), Some(victim_jobs as u64));
    assert_eq!(router.get("members_alive").and_then(Json::as_u64), Some(2));

    client.shutdown().unwrap();
    cluster.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cluster-wide drain retires every member then the router, like a
/// single daemon's drain — and a second cluster over the same state root
/// recovers each shard's journal, so the keyspace survives a full
/// restart.
#[test]
fn full_cluster_drain_then_respawn_recovers_every_shard() {
    let dir = temp_dir("restart");
    let config =
        ClusterConfig { shards: 3, state_dir: Some(dir.clone()), ..ClusterConfig::default() };
    let cluster = spawn(toy_registry(), config.clone()).unwrap();
    let addr = cluster.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let mut first = Vec::new();
    for i in 0..6 {
        first.push(client.submit("shallow", "sx4-9.2", &params_n(i)).unwrap().raw);
    }
    client.drain(Some(2_000)).unwrap();
    cluster.join().unwrap();

    let cluster = spawn(toy_registry(), config).unwrap();
    let mut client = Client::connect(&cluster.addr().to_string()).unwrap();
    for (i, original) in first.iter().enumerate() {
        let sub = client.submit("shallow", "sx4-9.2", &params_n(i)).unwrap();
        assert!(sub.cached, "config {i} must survive the full-cluster restart");
        assert_eq!(sub.raw, original.replace("\"cached\":false", "\"cached\":true"));
    }
    client.shutdown().unwrap();
    cluster.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
