//! End-to-end tests over real TCP: a daemon on an ephemeral port, typed
//! clients, hostile frames, contended floods, graceful shutdown.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;

use ncar_suite::{Artifact, Json, Registry};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry, Server, ServerConfig, SxdError};

/// Fast toy suites so tests measure the daemon, not the simulations.
fn toy_registry() -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "shallow",
        JobEntry::new(Demand::light(3.0), "shallow-water proxy", |m, p| {
            let n = p.get("n").map(String::as_str).unwrap_or("64").to_string();
            Ok(vec![Artifact::Scalar {
                title: format!("{} shallow n={n}", m.name),
                value: 1000.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r.register(
        "radabs",
        JobEntry::new(Demand::light(1.5), "radiation-absorption proxy", |m, _p| {
            Ok(vec![Artifact::Scalar {
                title: format!("{} radabs", m.name),
                value: 500.0,
                unit: "mflops".into(),
            }])
        }),
    );
    // Holds the run slot long enough that a barrier-synchronized herd of
    // identical submits reliably overlaps the leader, even on a loaded
    // machine — the coalescing test needs the window, not the speed.
    r.register(
        "herd",
        JobEntry::new(Demand::light(1.0), "slow-enough-to-coalesce proxy", |m, _p| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(vec![Artifact::Scalar {
                title: format!("{} herd", m.name),
                value: 1.0,
                unit: "runs".into(),
            }])
        }),
    );
    r
}

/// Start a daemon on an ephemeral port; returns (addr, server thread).
fn spawn_daemon(registry: Registry<JobEntry>) -> (String, JoinHandle<()>) {
    let server = Server::bind(registry, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn shut_down(addr: &str, handle: JoinHandle<()>) {
    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().expect("daemon thread exits cleanly");
}

#[test]
fn repeat_submit_hits_cache_with_byte_identical_result() {
    let (addr, handle) = spawn_daemon(toy_registry());
    let mut client = Client::connect(&addr).unwrap();
    let mut params = BTreeMap::new();
    params.insert("n".to_string(), "128".to_string());

    let first = client.submit("shallow", "sx4-9.2", &params).unwrap();
    let second = client.submit("shallow", "sx4-9.2", &params).unwrap();
    assert!(!first.cached);
    assert!(second.cached);
    assert_eq!(first.key, second.key);
    // Byte identity: the raw reply lines differ only in the cached flag.
    assert_eq!(second.raw, first.raw.replace("\"cached\":false", "\"cached\":true"));
    assert_eq!(first.result.to_string(), second.result.to_string());

    // A different parameter set is a different content address.
    let third = client.submit("shallow", "sx4-9.2", &BTreeMap::new()).unwrap();
    assert!(!third.cached);
    assert_ne!(third.key, first.key);

    shut_down(&addr, handle);
}

#[test]
fn garbage_truncated_and_oversized_frames_yield_typed_errors() {
    let (addr, handle) = spawn_daemon(toy_registry());

    // Garbage and truncated JSON: typed reply, connection stays usable.
    let mut client = Client::connect(&addr).unwrap();
    for frame in ["not json at all", "{\"op\":\"submit\"", "{\"op\":\"submit\",\"suite\":7}"] {
        let reply = client.raw(frame).unwrap();
        let doc = Json::parse(&reply).expect("error replies are valid JSON");
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        let kind = doc.get("error").unwrap().get("kind").unwrap().as_str().unwrap().to_string();
        assert!(kind == "bad_json" || kind == "bad_request", "kind={kind}");
    }
    // ... and the same connection still serves good requests afterwards.
    assert!(!client.submit("radabs", "sx4", &BTreeMap::new()).unwrap().cached);

    // Unknown suite is typed.
    let err = client.submit("does-not-exist", "sx4", &BTreeMap::new()).unwrap_err();
    assert!(matches!(&err, SxdError::Remote { kind, .. } if kind == "unknown_suite"), "{err}");

    // An oversized frame gets a frame_too_long reply, then the server
    // closes (framing is unrecoverable mid-line).
    let mut hostile = Client::connect(&addr).unwrap();
    let big = "x".repeat(sxd::MAX_REQUEST_FRAME + 100);
    let reply = hostile.raw(&big).unwrap();
    let doc = Json::parse(&reply).unwrap();
    assert_eq!(doc.get("error").unwrap().get("kind").unwrap().as_str(), Some("frame_too_long"));

    shut_down(&addr, handle);
}

#[test]
fn infeasible_jobs_are_rejected_and_reconciled() {
    let mut registry = toy_registry();
    registry.register(
        "toowide",
        JobEntry::new(
            Demand {
                procs: 4096,
                memory_bytes: 1 << 20,
                solo_seconds: 1.0,
                bytes_per_cycle_per_proc: 8.0,
            },
            "wider than any node",
            |_m, _p| Ok(vec![]),
        ),
    );
    let (addr, handle) = spawn_daemon(registry);
    let mut client = Client::connect(&addr).unwrap();
    let err = client.submit("toowide", "sx4", &BTreeMap::new()).unwrap_err();
    assert!(matches!(&err, SxdError::Remote { kind, .. } if kind == "rejected"), "{err}");
    let stats = client.stats().unwrap();
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(n("accepted"), 1);
    assert_eq!(n("rejected"), 1);
    assert_eq!(n("accepted"), n("done") + n("rejected") + n("queued") + n("running"));
    shut_down(&addr, handle);
}

#[test]
fn flood_completes_with_zero_drops_and_reconciled_counters() {
    let (addr, handle) = spawn_daemon(toy_registry());
    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 8,
        jobs: 64,
        suites: vec!["shallow".into(), "radabs".into()],
        machine: "sx4-9.2".into(),
        pipeline: 1,
    })
    .unwrap();
    assert!(outcome.ok(), "flood problems: {:?}", outcome.problems);
    assert_eq!(outcome.completed, 64);
    assert!(outcome.cache_hits > 0, "repeated configs must hit the cache");
    assert_eq!(
        outcome.accepted,
        outcome.done + outcome.rejected + outcome.queued + outcome.running
    );

    // Simulated seconds accumulated for both suites (stretch >= 1).
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    let secs = stats.get("suite_seconds").unwrap();
    assert!(secs.get("shallow").unwrap().as_f64().unwrap() >= 3.0);
    assert!(secs.get("radabs").unwrap().as_f64().unwrap() >= 1.5);

    shut_down(&addr, handle);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (addr, handle) = spawn_daemon(toy_registry());
    let mut client = Client::connect(&addr).unwrap();
    client.submit("radabs", "sx4", &BTreeMap::new()).unwrap();
    client.shutdown().unwrap();
    handle.join().expect("daemon exits cleanly after shutdown");
    // The port is closed: new connections fail (or are refused instantly).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(TcpStream::connect(&addr).is_err(), "listener must be closed after graceful shutdown");
}

#[test]
fn metrics_verb_serves_a_reconciled_snapshot_over_tcp() {
    let (addr, handle) = spawn_daemon(toy_registry());
    let mut client = Client::connect(&addr).unwrap();
    let params = BTreeMap::new();
    client.submit("shallow", "sx4-9.2", &params).unwrap(); // run
    client.submit("shallow", "sx4-9.2", &params).unwrap(); // cache hit
    client.submit("radabs", "sx4-9.2", &params).unwrap(); // second run

    let m = client.metrics().unwrap();
    assert_eq!(m.get("reconciled").unwrap().as_bool(), Some(true));

    // The embedded stats match what STATS reports.
    let stats = m.get("stats").unwrap();
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(n("accepted"), 3);
    assert_eq!(n("done"), 3);

    // The job histogram reconciles exactly against the embedded stats.
    let job = m.get("latency").unwrap().get("job").unwrap();
    assert_eq!(job.get("count").unwrap().as_u64().unwrap(), n("done") + n("rejected"));
    // Bucket counts sum to the count, and bounds come with them.
    let le = job.get("le").unwrap().as_arr().unwrap();
    let buckets = job.get("n").unwrap().as_arr().unwrap();
    assert_eq!(buckets.len(), le.len() + 1, "one overflow bucket past the last bound");
    let total: u64 = buckets.iter().map(|v| v.as_u64().unwrap()).sum();
    assert_eq!(total, job.get("count").unwrap().as_u64().unwrap());

    // Stage histograms cover the pipeline; only the misses ran.
    for stage in ["frame_parse", "cache_lookup", "admission_wait", "run", "render"] {
        assert!(m.get("latency").unwrap().get(stage).is_some(), "missing stage {stage}");
    }
    let runs = m.get("latency").unwrap().get("run").unwrap();
    assert_eq!(runs.get("count").unwrap().as_u64(), Some(2));

    // The per-suite FTRACE-style breakdown counts executions.
    let suites = m.get("suites").unwrap();
    assert_eq!(suites.get("shallow").unwrap().get("runs").unwrap().as_u64(), Some(1));
    assert!(suites.get("shallow").unwrap().get("avg_stretch").unwrap().as_f64().unwrap() >= 1.0);

    // Gauges exist (levels, so values depend on timing; names must not).
    let gauges = m.get("gauges").unwrap();
    for g in [
        "admission_waiting",
        "admission_running",
        "admission_stretch",
        "pool_queue_depth",
        "pool_busy_workers",
        "cache_entries",
    ] {
        assert!(gauges.get(g).is_some(), "missing gauge {g}");
    }
    shut_down(&addr, handle);
}

#[test]
fn flood_coalesces_identical_submits_and_reconciles_metrics() {
    // One suite, many simultaneous clients: the barrier-synchronized first
    // wave must coalesce onto a single run rather than run 8 times.
    let (addr, handle) = spawn_daemon(toy_registry());
    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 8,
        jobs: 64,
        suites: vec!["herd".into()],
        machine: "sx4-9.2".into(),
        pipeline: 1,
    })
    .unwrap();
    assert!(outcome.ok(), "flood problems: {:?}", outcome.problems);
    assert!(outcome.reconciled, "metrics snapshot must reconcile");
    assert!(outcome.coalesced > 0, "simultaneous identical submits must coalesce");

    // Exactly one simulation ran for the single unique configuration.
    let mut client = Client::connect(&addr).unwrap();
    let m = client.metrics().unwrap();
    let herd = m.get("suites").unwrap().get("herd").unwrap();
    assert_eq!(herd.get("runs").unwrap().as_u64(), Some(1));
    shut_down(&addr, handle);
}

#[test]
fn concurrent_identical_submits_from_shared_registry_are_safe() {
    // Several clients racing the same config: all succeed, later ones hit.
    let (addr, handle) = spawn_daemon(toy_registry());
    let addr = Arc::new(addr);
    let mut joins = Vec::new();
    for _ in 0..4 {
        let addr = Arc::clone(&addr);
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for _ in 0..4 {
                c.submit("shallow", "sx4", &BTreeMap::new()).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_u64().unwrap() > 0);
    shut_down(&addr, handle);
}
