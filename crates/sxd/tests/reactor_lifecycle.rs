//! Connection-lifecycle regression tests for the reactor serving loop.
//!
//! Each test pins one of the thread-per-connection era's bugs shut:
//! handler-thread/JoinHandle accumulation under churn, unbounded silent
//! connections (no read deadline), shutdown that only completed after
//! *another* client connected, and fd leakage under a concurrent flood.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ncar_suite::{Artifact, Json, Registry};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry, Server, ServerConfig};

fn toy_registry() -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "radabs",
        JobEntry::new(Demand::light(1.5), "radiation-absorption proxy", |m, _p| {
            Ok(vec![Artifact::Scalar {
                title: format!("{} radabs", m.name),
                value: 500.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r
}

fn spawn_daemon(config: ServerConfig) -> (String, JoinHandle<()>) {
    let server = Server::bind(toy_registry(), config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

/// `Threads:` from /proc/self/status — the whole test process, daemon
/// included, since the daemon runs in-process.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[cfg(target_os = "linux")]
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("/proc/self/fd").count()
}

fn conns_stat(stats: &Json, key: &str) -> u64 {
    stats.get("conns").and_then(|c| c.get(key)).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

/// Poll STATS until every connection except the observer's own is closed.
fn await_quiescent(client: &mut Client, deadline: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let stats = client.stats().expect("stats");
        if conns_stat(&stats, "open") <= 1 {
            return stats;
        }
        assert!(t0.elapsed() < deadline, "connections never quiesced: {stats}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Bugfix regression: `Server::run` used to spawn one handler thread per
/// accepted connection and push every `JoinHandle` into a Vec it only
/// drained at shutdown. 500 connections of churn must leave the process
/// at its baseline thread count, with nothing accumulated — and while
/// 100 of those connections are open *concurrently*, the serving side
/// must not have grown a thread per connection.
#[cfg(target_os = "linux")]
#[test]
fn connection_churn_leaves_no_accumulated_threads_or_handles() {
    let (addr, handle) = spawn_daemon(ServerConfig::default());
    let params = BTreeMap::new();

    // Warm up: the reactor and worker pool are fully spun up after one
    // round-trip, so this baseline includes every long-lived thread.
    Client::connect(&addr).unwrap().submit("radabs", "sx4-9.2", &params).unwrap();
    let baseline = thread_count();

    // Phase 1: 100 concurrent connections, all held open mid-session.
    let mut held: Vec<Client> = (0..100).map(|_| Client::connect(&addr).unwrap()).collect();
    for c in &mut held {
        c.submit("radabs", "sx4-9.2", &params).unwrap();
    }
    let during = thread_count();
    assert!(
        during <= baseline + 4,
        "serving 100 open connections grew threads {baseline} -> {during}; \
         the reactor must not be thread-per-connection"
    );
    drop(held);

    // Phase 2: 400 more connections of open/submit/close churn.
    for _ in 0..400 {
        Client::connect(&addr).unwrap().submit("radabs", "sx4-9.2", &params).unwrap();
    }

    let mut observer = Client::connect(&addr).unwrap();
    let stats = await_quiescent(&mut observer, Duration::from_secs(10));
    assert!(conns_stat(&stats, "accepted") >= 501, "all churned connections counted: {stats}");
    let after = thread_count();
    assert!(
        after <= baseline + 2,
        "500-connection churn left thread residue: {baseline} -> {after}"
    );

    drop(observer);
    Client::connect(&addr).unwrap().shutdown().unwrap();
    handle.join().expect("daemon exits");
}

/// Bugfix regression: accepted sockets had no read deadline, so a client
/// that connected and sent nothing — or trickled half a frame and
/// stalled — held its handler forever. The reactor's timeout wheel must
/// close both shapes, count them under `conns.idle_closed`, and keep the
/// job counters reconciled.
#[test]
fn silent_and_slowloris_connections_are_idle_closed() {
    let (addr, handle) = spawn_daemon(ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });

    let mut silent = TcpStream::connect(&addr).unwrap();
    silent.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut slowloris = TcpStream::connect(&addr).unwrap();
    slowloris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Half a frame, no newline: enough bytes to look alive, never a job.
    slowloris.write_all(b"{\"cmd\":\"submit\",").unwrap();

    // Both must be closed server-side (EOF, not a reply, not a hang).
    let mut buf = [0u8; 64];
    assert_eq!(silent.read(&mut buf).expect("idle close, not timeout"), 0);
    assert_eq!(slowloris.read(&mut buf).expect("idle close, not timeout"), 0);

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(conns_stat(&stats, "idle_closed"), 2, "both idle shapes counted: {stats}");
    // No phantom jobs: idle closes touch no admission counter, so the
    // reconciliation invariant must hold with everything at zero.
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("reconciled").and_then(Json::as_bool), Some(true), "{metrics}");

    client.shutdown().unwrap();
    handle.join().expect("daemon exits");
}

/// Bugfix regression: `initiate_shutdown` flipped a flag the accept loop
/// only observed after `listener.incoming()` yielded — i.e. after one
/// *more* client happened to connect. Shutdown is now a reactor wake
/// event: with zero other clients in flight it must complete promptly,
/// and the listener must refuse new connections afterwards.
#[test]
fn shutdown_with_zero_inflight_clients_completes_within_deadline() {
    let (addr, handle) = spawn_daemon(ServerConfig::default());

    Client::connect(&addr).unwrap().shutdown().unwrap();

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.join().expect("daemon exits");
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must not wait for another connection to arrive");
    assert!(TcpStream::connect(&addr).is_err(), "listener must be gone after shutdown");
}

/// FD hygiene under real load: 1000 concurrent connections' worth of
/// flood, then the process file-descriptor count returns to baseline —
/// no leaked sockets on either side — with the counters reconciled.
#[cfg(target_os = "linux")]
#[test]
fn flood_at_1000_connections_returns_fd_count_to_baseline() {
    let (addr, handle) = spawn_daemon(ServerConfig::default());
    Client::connect(&addr).unwrap().submit("radabs", "sx4-9.2", &BTreeMap::new()).unwrap();
    let baseline = fd_count();

    let outcome = flood(&FloodConfig {
        addr: addr.clone(),
        clients: 1000,
        jobs: 2000,
        suites: vec!["radabs".into()],
        machine: "sx4-9.2".into(),
        pipeline: 1,
    })
    .expect("flood");
    assert!(outcome.ok(), "flood problems: {:?}", outcome.problems);
    assert!(outcome.reconciled, "counters must reconcile after the flood");

    let mut observer = Client::connect(&addr).unwrap();
    let stats = await_quiescent(&mut observer, Duration::from_secs(30));
    assert!(conns_stat(&stats, "accepted") >= 1000, "{stats}");
    drop(observer);
    // Client sockets are joined and dropped by `flood`; the server side
    // is quiescent; every fd beyond the baseline must be gone.
    let after = fd_count();
    assert!(after <= baseline + 4, "flood leaked file descriptors: {baseline} -> {after}");

    Client::connect(&addr).unwrap().shutdown().unwrap();
    handle.join().expect("daemon exits");
}
