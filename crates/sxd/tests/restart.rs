//! Durability tests over real TCP: journal replay across restarts, drain
//! checkpointing, and the frame-cap boundary contract between client and
//! server. (The kill -9 crash tests live in `ncar-bench`'s
//! `crash_recovery` suite, which spawns the real binary; these tests
//! restart the server in-process.)

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ncar_suite::{Artifact, Json, Registry};
use sxd::journal::load_restart_specs;
use sxd::{Client, Demand, JobEntry, Request, Server, ServerConfig, SxdError, MAX_REQUEST_FRAME};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sxd-restart-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn toy_registry(slow_ms: u64) -> Registry<JobEntry> {
    let mut r = Registry::new();
    r.register(
        "shallow",
        JobEntry::new(Demand::light(3.0), "shallow-water proxy", |m, p| {
            let n = p.get("n").map(String::as_str).unwrap_or("64").to_string();
            Ok(vec![Artifact::Scalar {
                title: format!("{} shallow n={n}", m.name),
                value: 1000.0,
                unit: "mflops".into(),
            }])
        }),
    );
    r.register(
        "slow",
        JobEntry::new(Demand::light(3.0), "deliberately slow", move |_m, _p| {
            std::thread::sleep(Duration::from_millis(slow_ms));
            Ok(vec![Artifact::Scalar { title: "slow".into(), value: 1.0, unit: "u".into() }])
        }),
    );
    r
}

fn spawn_durable(registry: Registry<JobEntry>, dir: &Path) -> (String, JoinHandle<()>) {
    let config = ServerConfig { state_dir: Some(dir.to_path_buf()), ..ServerConfig::default() };
    let server = Server::bind(registry, config).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

#[test]
fn journal_replays_results_byte_identically_across_restart() {
    let dir = scratch("replay");
    let mut params = BTreeMap::new();
    params.insert("n".to_string(), "96".to_string());

    // Boot 1: run two configurations, remember their exact reply bytes.
    let (addr, handle) = spawn_durable(toy_registry(1), &dir);
    let mut client = Client::connect(&addr).unwrap();
    let first = client.submit("shallow", "sx4-9.2", &params).unwrap();
    let plain = client.submit("shallow", "sx4-9.2", &BTreeMap::new()).unwrap();
    assert!(!first.cached && !plain.cached);
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Boot 2, same state dir: both configurations answer from the
    // replayed journal — cached, and byte-identical to the original runs.
    let (addr, handle) = spawn_durable(toy_registry(1), &dir);
    let mut client = Client::connect(&addr).unwrap();
    let again = client.submit("shallow", "sx4-9.2", &params).unwrap();
    assert!(again.cached, "replayed journal must serve the repeat from cache");
    assert_eq!(again.raw, first.raw.replace("\"cached\":false", "\"cached\":true"));
    let again2 = client.submit("shallow", "sx4-9.2", &BTreeMap::new()).unwrap();
    assert!(again2.cached);
    assert_eq!(again2.raw, plain.raw.replace("\"cached\":false", "\"cached\":true"));

    // The stats surface the journal's recovery accounting.
    let stats = client.stats().unwrap();
    let journal = stats.get("journal").expect("durable daemon must report journal stats");
    assert_eq!(journal.get("replayed").unwrap().as_u64(), Some(2));
    assert_eq!(journal.get("truncated_bytes").unwrap().as_u64(), Some(0));
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_checkpoints_stragglers_and_the_next_boot_completes_them() {
    let dir = scratch("drain");

    // Boot 1: a slow job is mid-run when a zero-deadline drain arrives.
    let (addr, handle) = spawn_durable(toy_registry(400), &dir);
    let submit_addr = addr.clone();
    let straggler = std::thread::spawn(move || {
        let mut c = Client::connect(&submit_addr).unwrap();
        c.submit("slow", "sx4-9.2", &BTreeMap::new())
    });
    std::thread::sleep(Duration::from_millis(120)); // let it reach running
    Client::connect(&addr).unwrap().drain(Some(0)).unwrap();

    // The straggler's client gets the typed checkpointed error: its work
    // is persisted, not lost, and will not also be served this boot.
    let err = straggler.join().unwrap().unwrap_err();
    assert!(matches!(&err, SxdError::Remote { kind, .. } if kind == "checkpointed"), "{err}");
    handle.join().unwrap();

    // The restart spec survived the shutdown: full work plus the restart
    // overhead (the conservative fraction-zero checkpoint).
    let specs = load_restart_specs(&dir);
    assert_eq!(specs.len(), 1, "exactly the one straggler was checkpointed");
    assert_eq!(specs[0].suite, "slow");
    assert!(
        specs[0].solo_seconds > 3.0,
        "restart half carries the work: {}",
        specs[0].solo_seconds
    );

    // Boot 2: the spec is re-admitted automatically; once it completes,
    // the same configuration answers from cache and the spec file is gone.
    let (addr, handle) = spawn_durable(toy_registry(50), &dir);
    let mut client = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    let sub = loop {
        match client.submit("slow", "sx4-9.2", &BTreeMap::new()) {
            Ok(sub) if sub.cached => break sub,
            Ok(_) | Err(_) => {
                assert!(t0.elapsed() < Duration::from_secs(10), "readmitted job never completed");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    assert!(sub.cached);
    assert!(
        load_restart_specs(&dir).is_empty(),
        "spec file must be cleared after readmission completes"
    );
    // Counters reconcile on this side of the restart boundary too.
    let stats = client.stats().unwrap();
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(n("accepted"), n("done") + n("rejected") + n("queued") + n("running"));
    assert_eq!(n("queued"), 0);
    assert_eq!(n("running"), 0);
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frame_cap_boundary_agrees_between_client_and_server() {
    let dir = scratch("boundary");
    let (addr, handle) = spawn_durable(toy_registry(1), &dir);
    let mut client = Client::connect(&addr).unwrap();

    // Build a submit line of exactly MAX_REQUEST_FRAME bytes by sizing a
    // padding parameter to the byte.
    let line_len = |pad: usize| {
        let mut params = BTreeMap::new();
        params.insert("pad".to_string(), "a".repeat(pad));
        Request::Submit { suite: "shallow".into(), machine: "sx4-9.2".into(), params }
            .to_line()
            .len()
    };
    let base = line_len(0);
    let pad_exact = MAX_REQUEST_FRAME - base;
    assert_eq!(line_len(pad_exact), MAX_REQUEST_FRAME);

    // Exactly at the cap: accepted end to end.
    let mut params = BTreeMap::new();
    params.insert("pad".to_string(), "a".repeat(pad_exact));
    let sub = client.submit("shallow", "sx4-9.2", &params).unwrap();
    assert!(!sub.cached);

    // One byte past the cap: rejected before a byte is sent, with the
    // same kind the server would use — and the connection stays usable.
    params.insert("pad".to_string(), "a".repeat(pad_exact + 1));
    let err = client.submit("shallow", "sx4-9.2", &params).unwrap_err();
    assert!(
        matches!(err, SxdError::FrameTooLong { len, max }
            if len == MAX_REQUEST_FRAME + 1 && max == MAX_REQUEST_FRAME),
        "{err}"
    );
    assert!(!client.submit("shallow", "sx4-9.2", &BTreeMap::new()).unwrap().key.is_empty());

    // The server enforces the identical boundary on a raw oversized line
    // (no newline reaches it within the cap): typed reply, then close.
    let mut hostile = Client::connect(&addr).unwrap();
    let reply = hostile.raw(&"y".repeat(MAX_REQUEST_FRAME + 1)).unwrap();
    let doc = Json::parse(&reply).unwrap();
    assert_eq!(doc.get("error").unwrap().get("kind").unwrap().as_str(), Some("frame_too_long"));

    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
