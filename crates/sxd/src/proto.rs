//! The `sxd` wire protocol: newline-delimited JSON over TCP, plus the
//! content-address of a run.
//!
//! ## Grammar
//!
//! One request per line, one reply line per request, UTF-8, `\n`
//! terminated. Requests larger than [`MAX_REQUEST_FRAME`] bytes are
//! rejected with a typed `frame_too_long` error (the connection then
//! closes — there is no way to resync inside an oversized frame).
//!
//! ```text
//! request  = submit | stats | metrics | drain | shutdown | put | route
//! submit   = {"op":"submit","suite":S,"machine":M?,"params":{K:V,...}?}
//! stats    = {"op":"stats"}
//! metrics  = {"op":"metrics"}
//! drain    = {"op":"drain","deadline_ms":N?,"member":I?}
//! shutdown = {"op":"shutdown"}
//! put      = {"op":"put","key":"0011223344556677","result":{...}}
//! route    = {"op":"route","suite":S,"machine":M?,"params":{K:V,...}?}
//! reply    = {"ok":true,...} | {"ok":false,"error":{"kind":K,"detail":D}}
//! ```
//!
//! `metrics` returns the daemon's full observability snapshot — per-stage
//! latency histograms, gauges, and the per-suite simulated-seconds
//! breakdown — reconciled against the same job counters `stats` reports
//! (see the README section "Observing the daemon" for the schema).
//!
//! `drain` stops admission, waits `deadline_ms` (forever when omitted)
//! for in-flight jobs, checkpoints whatever is still pending to restart
//! specs, and then shuts down — see the README section "Durability and
//! restart". The optional `member` field targets one shard of a cluster
//! router (drain it, hand its keyspace to its ring successor); a
//! single-node daemon rejects it.
//!
//! `put` and `route` belong to the cluster layer (see `crate::cluster`):
//! `put` inserts an already-rendered result under its content address —
//! the hand-off path replicating a drained member's journal into its
//! keyspace successor — and `route` asks a router which member owns a
//! configuration without running it.
//!
//! `machine` defaults to `"sx4-9.2"` (the February-1996 benchmarked
//! system); `params` values may be strings, numbers or booleans and are
//! canonicalized to strings.
//!
//! ## Cache key
//!
//! A run's identity is the FNV-1a/64 digest of a canonical
//! [`WireWriter`] record: `CODE_VERSION`, the lowercased suite name, the
//! machine preset's [`canonical_bytes`](sxsim::MachineModel::canonical_bytes)
//! (every model field, IEEE bit patterns — not the preset's *name*, so two
//! aliases of one machine hit the same entry), and the parameter set in
//! sorted key order. Identical submissions are served from the result
//! cache without re-simulation.

use std::collections::BTreeMap;
use std::io::BufRead;

use ncar_suite::report::json_f64;
use ncar_suite::{fnv64, Json, WireWriter};
use sxsim::MachineModel;

use crate::error::SxdError;

/// Cap on one request line's *content* — the terminating newline is not
/// counted, so a request of exactly this many bytes plus its `\n` is the
/// largest frame accepted. The server's [`read_frame`] and the client's
/// pre-send check in [`crate::Client`] enforce the same boundary, so an
/// oversized request fails identically (kind `frame_too_long`) whichever
/// side catches it first.
pub const MAX_REQUEST_FRAME: usize = 64 * 1024;

/// Cap on one reply line (replies embed whole rendered reports).
pub const MAX_REPLY_FRAME: usize = 16 * 1024 * 1024;

/// Version stamp mixed into every cache key. Bump when runner semantics
/// change so stale cached reports can never be served for new code.
pub const CODE_VERSION: u32 = 1;

/// Machine preset assumed when a submit names none.
pub const DEFAULT_MACHINE: &str = "sx4-9.2";

/// Read one `\n`-terminated frame of at most `max` bytes. `Ok(None)` is a
/// clean EOF. Never blocks past the newline, never allocates past the cap,
/// never panics: an oversized frame is a typed error.
pub fn read_frame<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, SxdError> {
    let mut buf: Vec<u8> = Vec::new();
    let n = std::io::Read::take(r.by_ref(), max as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(SxdError::io)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    } else if buf.len() > max {
        return Err(SxdError::FrameTooLong { len: buf.len(), max });
    }
    // else: EOF without a trailing newline — accept the final frame.
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| SxdError::BadJson { detail: "frame is not valid UTF-8".into() })
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Submit {
        suite: String,
        machine: String,
        params: BTreeMap<String, String>,
    },
    Stats,
    Metrics,
    /// Stop admission, wait up to `deadline_ms` for in-flight jobs (no
    /// deadline = wait indefinitely), checkpoint the stragglers, shut
    /// down. `member` targets one shard of a cluster router; a single-node
    /// daemon rejects it.
    Drain {
        deadline_ms: Option<u64>,
        member: Option<usize>,
    },
    Shutdown,
    /// Insert an already-rendered result under its content address (the
    /// cluster hand-off path). `payload` is the result object's exact
    /// bytes, so replicated entries stay byte-identical.
    Put {
        key: u64,
        payload: String,
    },
    /// Ask a cluster router which member owns a configuration's keyspace
    /// without running anything.
    Route {
        suite: String,
        machine: String,
        params: BTreeMap<String, String>,
    },
}

impl Request {
    /// Parse one frame. Every malformation is a typed error — garbage,
    /// truncated JSON, wrong field types — never a panic.
    pub fn parse(frame: &str) -> Result<Request, SxdError> {
        let doc = Json::parse(frame).map_err(|e| SxdError::BadJson { detail: e.to_string() })?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("request must be an object with a string \"op\""))?;
        match op {
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "drain" => {
                let deadline_ms = match doc.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(Json::Num(x)) if *x >= 0.0 && x.is_finite() => Some(*x as u64),
                    Some(_) => {
                        return Err(bad_request("\"deadline_ms\" must be a non-negative number"))
                    }
                };
                let member = match doc.get("member") {
                    None | Some(Json::Null) => None,
                    Some(Json::Num(x)) if *x >= 0.0 && x.is_finite() && x.fract() == 0.0 => {
                        Some(*x as usize)
                    }
                    Some(_) => {
                        return Err(bad_request("\"member\" must be a non-negative integer"))
                    }
                };
                Ok(Request::Drain { deadline_ms, member })
            }
            "put" => {
                let key = doc
                    .get("key")
                    .and_then(Json::as_str)
                    .filter(|k| !k.is_empty() && k.len() <= 16)
                    .and_then(|k| u64::from_str_radix(k, 16).ok())
                    .ok_or_else(|| bad_request("put needs a hex string \"key\""))?;
                let payload = doc
                    .get("result")
                    .ok_or_else(|| bad_request("put needs a \"result\" object"))?
                    .to_string();
                Ok(Request::Put { key, payload })
            }
            "submit" => {
                let (suite, machine, params) = parse_config(&doc)?;
                Ok(Request::Submit { suite, machine, params })
            }
            "route" => {
                let (suite, machine, params) = parse_config(&doc)?;
                Ok(Request::Route { suite, machine, params })
            }
            _ => {
                Err(bad_request("op must be one of submit/stats/metrics/drain/shutdown/put/route"))
            }
        }
    }

    /// Serialize to the one-line form [`Request::parse`] reads back.
    pub fn to_line(&self) -> String {
        match self {
            Request::Stats => "{\"op\":\"stats\"}".into(),
            Request::Metrics => "{\"op\":\"metrics\"}".into(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".into(),
            Request::Drain { deadline_ms: None, member: None } => "{\"op\":\"drain\"}".into(),
            Request::Drain { deadline_ms, member } => {
                let mut line = String::from("{\"op\":\"drain\"");
                if let Some(ms) = deadline_ms {
                    line.push_str(&format!(",\"deadline_ms\":{ms}"));
                }
                if let Some(m) = member {
                    line.push_str(&format!(",\"member\":{m}"));
                }
                line.push('}');
                line
            }
            Request::Put { key, payload } => {
                format!("{{\"op\":\"put\",\"key\":\"{key:016x}\",\"result\":{payload}}}")
            }
            Request::Submit { suite, machine, params } => {
                config_line("submit", suite, machine, params)
            }
            Request::Route { suite, machine, params } => {
                config_line("route", suite, machine, params)
            }
        }
    }
}

/// The shared `suite`/`machine`/`params` body of `submit` and `route`.
fn parse_config(doc: &Json) -> Result<(String, String, BTreeMap<String, String>), SxdError> {
    let suite = doc
        .get("suite")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_request("submit needs a string \"suite\""))?
        .to_string();
    let machine = match doc.get("machine") {
        None | Some(Json::Null) => DEFAULT_MACHINE.to_string(),
        Some(Json::Str(m)) => m.clone(),
        Some(_) => return Err(bad_request("\"machine\" must be a string")),
    };
    let mut params = BTreeMap::new();
    match doc.get("params") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(members)) => {
            for (k, v) in members {
                let v = match v {
                    Json::Str(s) => s.clone(),
                    Json::Num(x) => json_f64(*x),
                    Json::Bool(b) => b.to_string(),
                    _ => {
                        return Err(bad_request(
                            "param values must be strings, numbers or booleans",
                        ))
                    }
                };
                params.insert(k.clone(), v);
            }
        }
        Some(_) => return Err(bad_request("\"params\" must be an object")),
    }
    Ok((suite, machine, params))
}

fn config_line(op: &str, suite: &str, machine: &str, params: &BTreeMap<String, String>) -> String {
    let members = vec![
        ("op".to_string(), Json::Str(op.into())),
        ("suite".to_string(), Json::Str(suite.into())),
        ("machine".to_string(), Json::Str(machine.into())),
        (
            "params".to_string(),
            Json::Obj(params.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect()),
        ),
    ];
    Json::Obj(members).to_string()
}

fn bad_request(detail: &str) -> SxdError {
    SxdError::BadRequest { detail: detail.into() }
}

/// The content address of a run configuration (see module docs).
pub fn cache_key(suite: &str, machine: &MachineModel, params: &BTreeMap<String, String>) -> u64 {
    let mut w = WireWriter::with_capacity(512);
    w.put_u32(CODE_VERSION);
    w.put_str(&suite.to_ascii_lowercase());
    let mb = machine.canonical_bytes();
    w.put_u32(mb.len() as u32);
    w.put_bytes(&mb);
    w.put_u32(params.len() as u32);
    for (k, v) in params {
        w.put_str(k);
        w.put_str(v);
    }
    fnv64(&w.into_vec())
}

/// The successful submit reply line. `payload` is the cached/fresh result
/// object, spliced verbatim so cache hits are byte-identical to the run
/// that populated them.
pub fn submit_reply(cached: bool, key: u64, payload: &str) -> String {
    format!("{{\"ok\":true,\"cached\":{cached},\"key\":\"{key:016x}\",\"result\":{payload}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncar_suite::SmallRng;
    use sxsim::presets;

    #[test]
    fn requests_roundtrip_through_to_line() {
        let mut params = BTreeMap::new();
        params.insert("procs".into(), "16".into());
        params.insert("note".into(), "quote \" and \\".into());
        for req in [
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Drain { deadline_ms: None, member: None },
            Request::Drain { deadline_ms: Some(2500), member: None },
            Request::Drain { deadline_ms: None, member: Some(2) },
            Request::Drain { deadline_ms: Some(100), member: Some(0) },
            // Put payloads round-trip only in the deterministic printer's
            // own form (the hand-off path always replicates printer output).
            Request::Put { key: 0x0011_2233_4455_6677, payload: "{\"x\":1.0}".into() },
            Request::Put { key: u64::MAX, payload: "{\"s\":\"ok\",\"t\":true}".into() },
            Request::Submit {
                suite: "fig5".into(),
                machine: "sx4-9.2".into(),
                params: params.clone(),
            },
            Request::Route { suite: "fig5".into(), machine: "sx4-9.2".into(), params },
        ] {
            assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn submit_defaults_and_type_coercion() {
        let r = Request::parse(r#"{"op":"submit","suite":"radabs","params":{"n":3,"deep":true}}"#)
            .unwrap();
        let Request::Submit { suite, machine, params } = r else { panic!("not a submit") };
        assert_eq!(suite, "radabs");
        assert_eq!(machine, DEFAULT_MACHINE);
        assert_eq!(params.get("n").map(String::as_str), Some("3.0"));
        assert_eq!(params.get("deep").map(String::as_str), Some("true"));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (frame, kind) in [
            ("this is not json", "bad_json"),
            ("{\"op\":\"submit\"}", "bad_request"), // no suite
            ("{\"op\":\"launch\"}", "bad_request"), // unknown op
            ("{\"suite\":\"fig5\"}", "bad_request"), // no op
            ("[1,2,3]", "bad_request"),             // not an object
            ("{\"op\":\"submit\",\"suite\":7}", "bad_request"),
            ("{\"op\":\"submit\",\"suite\":\"x\",\"params\":[1]}", "bad_request"),
            ("{\"op\":\"submit\",\"suite\":\"x\",\"params\":{\"k\":[]}}", "bad_request"),
            ("{\"op\":\"submit\",\"suite\":\"x\",\"machine\":5}", "bad_request"),
            ("{\"op\":\"drain\",\"deadline_ms\":-1}", "bad_request"),
            ("{\"op\":\"drain\",\"deadline_ms\":\"soon\"}", "bad_request"),
            ("{\"op\":\"drain\",\"member\":-1}", "bad_request"),
            ("{\"op\":\"drain\",\"member\":1.5}", "bad_request"),
            ("{\"op\":\"drain\",\"member\":\"zero\"}", "bad_request"),
            ("{\"op\":\"put\"}", "bad_request"), // no key
            ("{\"op\":\"put\",\"key\":7}", "bad_request"), // key must be a string
            ("{\"op\":\"put\",\"key\":\"zz\"}", "bad_request"), // not hex
            ("{\"op\":\"put\",\"key\":\"00112233445566778\"}", "bad_request"), // >16 digits
            ("{\"op\":\"put\",\"key\":\"ab\"}", "bad_request"), // no result
            ("{\"op\":\"route\"}", "bad_request"), // no suite
            ("{\"op\":", "bad_json"),
        ] {
            let err = Request::parse(frame).unwrap_err();
            assert_eq!(err.kind(), kind, "frame {frame:?} -> {err}");
        }
    }

    #[test]
    fn fuzzish_random_frames_never_panic() {
        let mut rng = SmallRng::seed_from_u64(0x7379_6421);
        let alphabet: Vec<char> = "{}[]\",:opsubmitstae0123456789\\nul ".chars().collect();
        for _ in 0..2000 {
            let len = rng.next_below(120);
            let s: String = (0..len).map(|_| alphabet[rng.next_below(alphabet.len())]).collect();
            let _ = Request::parse(&s);
        }
    }

    #[test]
    fn read_frame_caps_oversized_lines_and_handles_eof() {
        // In-cap frame passes.
        let mut ok = std::io::Cursor::new(b"{\"op\":\"stats\"}\nrest".to_vec());
        assert_eq!(read_frame(&mut ok, 64).unwrap().unwrap(), "{\"op\":\"stats\"}");
        // Oversized frame (no newline within cap) is a typed error.
        let big = vec![b'x'; 200];
        let mut r = std::io::Cursor::new(big);
        let err = read_frame(&mut r, 64).unwrap_err();
        assert!(matches!(err, SxdError::FrameTooLong { max: 64, .. }), "{err}");
        // Clean EOF is None; final unterminated frame within cap is kept.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty, 64).unwrap(), None);
        let mut tail = std::io::Cursor::new(b"{\"op\":\"stats\"}".to_vec());
        assert_eq!(read_frame(&mut tail, 64).unwrap().unwrap(), "{\"op\":\"stats\"}");
        // Exactly max bytes plus the newline still fits.
        let mut edge = std::io::Cursor::new([vec![b'y'; 64], vec![b'\n']].concat());
        assert_eq!(read_frame(&mut edge, 64).unwrap().unwrap(), "y".repeat(64));
        // CRLF is tolerated.
        let mut crlf = std::io::Cursor::new(b"{\"op\":\"stats\"}\r\n".to_vec());
        assert_eq!(read_frame(&mut crlf, 64).unwrap().unwrap(), "{\"op\":\"stats\"}");
        // Non-UTF-8 is a typed error, not a panic.
        let mut bad = std::io::Cursor::new(vec![0xff, 0xfe, b'\n']);
        assert!(matches!(read_frame(&mut bad, 64), Err(SxdError::BadJson { .. })));
    }

    /// The cap boundary, pinned at the real limit: a frame of exactly
    /// `MAX_REQUEST_FRAME` content bytes is the largest accepted, with or
    /// without its trailing newline; one byte more is rejected, newline
    /// present or not. The client preflight (`client.rs`) mirrors this
    /// exact boundary, so both sides of the wire agree byte-for-byte.
    #[test]
    fn frame_cap_boundary_is_exact_at_max_request_frame() {
        let max = MAX_REQUEST_FRAME;
        for (content_len, ok) in [(max - 1, true), (max, true), (max + 1, false)] {
            // Terminated frame.
            let mut line = vec![b'z'; content_len];
            line.push(b'\n');
            let mut r = std::io::Cursor::new(line);
            let got = read_frame(&mut r, max);
            assert_eq!(got.is_ok(), ok, "terminated frame of {content_len} bytes");
            if ok {
                assert_eq!(got.unwrap().unwrap().len(), content_len);
            } else {
                assert!(matches!(got.unwrap_err(), SxdError::FrameTooLong { .. }));
            }
            // Final unterminated frame (EOF instead of newline): same
            // verdict at every boundary point.
            let mut r = std::io::Cursor::new(vec![b'z'; content_len]);
            let got = read_frame(&mut r, max);
            assert_eq!(got.is_ok(), ok, "unterminated frame of {content_len} bytes");
        }
    }

    #[test]
    fn cache_key_separates_every_identity_component() {
        let sx = presets::sx4_benchmarked();
        let prod = presets::sx4_production();
        let none = BTreeMap::new();
        let mut p1 = BTreeMap::new();
        p1.insert("n".to_string(), "8".to_string());
        let base = cache_key("fig5", &sx, &none);
        assert_eq!(base, cache_key("FIG5", &sx, &none), "suite name is case-folded");
        assert_ne!(base, cache_key("fig6", &sx, &none));
        assert_ne!(base, cache_key("fig5", &prod, &none));
        assert_ne!(base, cache_key("fig5", &sx, &p1));
        let mut p2 = BTreeMap::new();
        p2.insert("n".to_string(), "9".to_string());
        assert_ne!(cache_key("fig5", &sx, &p1), cache_key("fig5", &sx, &p2));
        // Aliases of the same preset share an identity.
        assert_eq!(base, cache_key("fig5", &presets::by_name("SX4").unwrap(), &none));
    }
}
