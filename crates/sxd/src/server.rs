//! The daemon: an epoll-reactor serving loop feeding an NQS-admitted,
//! pool-bounded, cache-fronted job executor.
//!
//! Serving runs on [`ncar_suite::reactor`]: one event-loop thread owns
//! every socket (no thread per connection), decoded frames are dispatched
//! to a bounded dispatcher pool, and replies flush as write-readiness
//! allows. Connection counts are therefore bounded by fds, not stacks;
//! idle clients are closed by the reactor's timeout wheel
//! ([`ServerConfig::idle_timeout`]) and counted in the `conns.idle_closed`
//! stat; shutdown and drain complete by waking the reactor, not by hoping
//! another client connects.
//!
//! Jobs are admitted through the same Resource-Block gate NQS applies on
//! the real machine (paper §2.6.3): a submit that cannot fit its block is
//! *rejected* with a typed error, one that could fit but finds the node
//! busy *waits* (bounded by [`ServerConfig::admit_timeout`]), and admitted
//! jobs run with their simulated time stretched by the memory-contention
//! model of Table 6. Every state transition updates the [`Counters`]
//! inside a single critical section, so the invariant
//! `accepted == done + rejected + queued + running` holds at every
//! instant, not just at quiescence.
//!
//! Concurrent identical submits are *single-flighted*: the first miss for
//! a cache key becomes the leader and runs the job; followers arriving
//! while it is in flight park on its slot and replay the leader's payload
//! (counted in `coalesced`), so a thundering herd of one configuration
//! costs one simulation.
//!
//! Observability mirrors SUPER-UX's own instruments: PROGINF-style job
//! accounting (the counters) and FTRACE-style breakdowns (per-stage
//! latency histograms, the per-suite simulated-seconds table), served by
//! the `METRICS` verb. The `job` histogram is observed inside the same
//! counters critical sections that retire a job, so a METRICS snapshot is
//! internally reconciled: `latency.job.count == done + rejected`, exactly.
//!
//! With [`ServerConfig::state_dir`] set the daemon is *durable*: every
//! completed result is appended to the write-ahead [`crate::journal`] and
//! replayed into the cache on the next boot, so repeat configurations hit
//! the cache — byte-identically — across a crash. The `drain` verb stops
//! admission and lets in-flight jobs finish; past its deadline the
//! stragglers are checkpointed through [`superux::nqs::checkpoint_split`]
//! into restart specs that the next boot re-admits (SUPER-UX's NQS
//! checkpoint/restart, paper §2.6.2). A checkpointed job retires as
//! `rejected` (kind `checkpointed`), so the counters invariant holds
//! unchanged on both sides of the restart boundary.
//!
//! Lock order, where nested: `inflight` before `cache`, and `journal`
//! before `cache`. Nothing acquires `journal` or `inflight` while holding
//! `cache`, so the hierarchy is acyclic. The `reactor` handle slot is a
//! leaf: it is taken and released in its own scope, never while another
//! named lock is held and never holding one while acquiring another.
//!
//! The reactor-thread *fast path* ([`Daemon::fast_frame`]) answers cheap
//! frames — cache hits, `stats`, typed bad requests — inline, without a
//! dispatcher handoff. It takes the same `inflight` -> `cache` pair for
//! its hit probe and `counters` alone to retire, so it adds no lock-graph
//! edges; the one caveat is that its `stats` arm reads the `journal` slot
//! and can ride out a concurrent append (bounded file IO, exempted as
//! `sxd.journal.append`). Frames answered inline count `fastpath_hits`
//! and observe the `fastpath` latency histogram.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use ncar_suite::metrics::{Gauge, Histogram, MetricsRegistry};
use ncar_suite::par::lockreg;
use ncar_suite::reactor::{DecodeError, Reactor, ReactorConfig, ReactorHandle, Reply, Service};
use ncar_suite::report::{json_escape, json_f64};
use ncar_suite::{plock, plock_named, Artifact, Json, Registry, WorkerPool};
use superux::{Admission, JobSpec};
use sxsim::{presets, MachineModel};

use crate::cache::ResultCache;
use crate::error::SxdError;
use crate::journal::{self, Journal, RestartSpec};
use crate::proto::{cache_key, submit_reply, Request, MAX_REQUEST_FRAME};

/// Simulated seconds charged for writing a drain checkpoint (the `chkpnt`
/// overhead in the NQS model) and for resuming from it on the next boot.
const CKPT_SECONDS: f64 = 0.5;
const RESTART_SECONDS: f64 = 0.5;

/// What one job asks of the node, in NQS Resource-Block terms.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    pub procs: usize,
    pub memory_bytes: u64,
    /// Simulated wall seconds the job takes when it has the node alone.
    pub solo_seconds: f64,
    /// Memory traffic per processor, for the contention stretch model.
    pub bytes_per_cycle_per_proc: f64,
}

impl Demand {
    /// A light single-processor job (kernels, accuracy checks).
    pub fn light(solo_seconds: f64) -> Demand {
        Demand { procs: 1, memory_bytes: 256 << 20, solo_seconds, bytes_per_cycle_per_proc: 8.0 }
    }
}

/// How a runner produces a result: pure function of the requested machine
/// and the canonicalized parameters. Determinism here is what makes the
/// result cache sound.
pub type RunFn = Arc<
    dyn Fn(&MachineModel, &BTreeMap<String, String>) -> Result<Vec<Artifact>, String> + Send + Sync,
>;

/// A runnable suite as the daemon sees it.
#[derive(Clone)]
pub struct JobEntry {
    pub demand: Demand,
    pub description: String,
    pub runner: RunFn,
}

impl JobEntry {
    pub fn new(
        demand: Demand,
        description: impl Into<String>,
        runner: impl Fn(&MachineModel, &BTreeMap<String, String>) -> Result<Vec<Artifact>, String>
            + Send
            + Sync
            + 'static,
    ) -> JobEntry {
        JobEntry { demand, description: description.into(), runner: Arc::new(runner) }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads actually executing simulations.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_cap: usize,
    /// The machine whose node the admission gate models.
    pub machine: MachineModel,
    /// How long a feasible job may wait for the node to free capacity
    /// before it is rejected with a typed error. Without this bound a job
    /// parked on the admission condvar waits forever if capacity never
    /// frees (a wedged runner, a leak), holding its connection hostage.
    pub admit_timeout: Duration,
    /// Directory for the durable result journal and drain-checkpoint
    /// restart specs. `None` (the default) serves from memory only, as
    /// before.
    pub state_dir: Option<PathBuf>,
    /// Grace period a `drain` request without its own `deadline_ms` gives
    /// in-flight jobs before checkpointing them.
    pub drain_deadline: Duration,
    /// Close connections that send nothing for this long (the reactor's
    /// timeout wheel; `None` disables it). Bounds slowloris clients — the
    /// old thread-per-connection model held a thread for them forever.
    pub idle_timeout: Option<Duration>,
    /// Reactor dispatcher threads decoding-side frame handlers run on.
    /// `0` (the default) auto-sizes to `max(8, 2 * workers)`: enough that
    /// herd followers parking in the single-flight table never starve
    /// their leader, which always occupies a dispatcher of its own.
    pub dispatchers: usize,
    /// Decoded frames allowed in flight per connection before the reactor
    /// stops reading from it ([`ReactorConfig::pipeline_depth`]). Replies
    /// always leave in request order whatever the completion order, so a
    /// depth above 1 changes throughput, never bytes. `1` (the default)
    /// serves strictly request-by-request, the pre-pipelining behavior.
    pub pipeline_depth: usize,
    /// Answer cheap frames (cache hits, `stats`, typed bad requests)
    /// inline on the reactor thread instead of paying a dispatcher round
    /// trip. On by default; turn off to benchmark the dispatch path or to
    /// keep the reactor thread free of daemon locks.
    pub fastpath: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_cap: 256,
            machine: presets::sx4_benchmarked(),
            admit_timeout: Duration::from_secs(30),
            state_dir: None,
            drain_deadline: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(300)),
            dispatchers: 0,
            pipeline_depth: 1,
            fastpath: true,
        }
    }
}

/// Per-suite serving totals (the FTRACE-style breakdown's raw data).
#[derive(Debug, Default, Clone)]
pub struct SuiteStat {
    /// Actual simulations executed (cache hits and coalesced followers
    /// replay a payload without running).
    pub runs: u64,
    /// Simulated seconds charged, contention stretch included.
    pub sim_seconds: f64,
    /// Sum of the stretch factors seen, for the average.
    pub stretch_sum: f64,
}

/// Job counters. All transitions happen under one lock (see module docs).
#[derive(Debug, Default, Clone)]
pub struct Counters {
    pub accepted: u64,
    pub rejected: u64,
    pub queued: u64,
    pub running: u64,
    pub done: u64,
    /// Frames that never became jobs (garbage, unknown suite/machine).
    pub bad_requests: u64,
    /// Submits that coalesced onto another in-flight identical run.
    pub coalesced: u64,
    /// Jobs a drain deadline checkpointed to restart specs instead of
    /// finishing. Informational: every checkpointed job is also counted in
    /// `rejected` (its client got a typed `checkpointed` error), so the
    /// `accepted == done + rejected + queued + running` invariant is
    /// untouched.
    pub checkpointed: u64,
    /// Results absorbed via the cluster hand-off `put` verb. Informational:
    /// puts never enter the job pipeline, so the counters invariant is
    /// untouched.
    pub absorbed: u64,
    /// Frames answered inline on the reactor thread (cache hits, `stats`,
    /// typed bad requests). Informational: a fast-path submit retires
    /// through the same `accepted`/`done` transition as a dispatched hit,
    /// so the counters invariant is untouched.
    pub fastpath_hits: u64,
    /// Per-suite serving totals, keyed by lowercased suite name.
    pub suites: BTreeMap<String, SuiteStat>,
}

/// Bucket edges for the `sim_throughput` histogram: simulated seconds
/// produced per wall-clock second of runner time. The analytic simulator
/// runs far faster than real time, so the ladder is log-spaced up to 1e6x.
const SIM_THROUGHPUT_BUCKETS: [f64; 16] =
    [0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 1e4, 1e5, 1e6];

/// Bucket edges for the `flush_batch` histogram: replies per vectored
/// write syscall. Powers of two up to the reactor's per-syscall slice cap.
const FLUSH_BATCH_BUCKETS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// The latency histograms and level gauges the daemon maintains. Stage
/// histograms are named after the serving pipeline; the `job` histogram is
/// the reconciled end-to-end one (see module docs). `sim_throughput` is
/// dimensionless (simulated seconds per runner wall second), not a latency.
struct DaemonMetrics {
    registry: MetricsRegistry,
    frame_parse: Arc<Histogram>,
    cache_lookup: Arc<Histogram>,
    admission_wait: Arc<Histogram>,
    run: Arc<Histogram>,
    render: Arc<Histogram>,
    job: Arc<Histogram>,
    /// Inline reactor-thread answers, decode to flush-queue (see the
    /// fast-path notes in the module docs).
    fastpath: Arc<Histogram>,
    /// Replies per vectored write syscall — not a latency; counts how well
    /// pipelined replies coalesce on the wire.
    flush_batch: Arc<Histogram>,
    sim_throughput: Arc<Histogram>,
    admission_waiting: Arc<Gauge>,
    admission_running: Arc<Gauge>,
    admission_stretch: Arc<Gauge>,
    pool_queue_depth: Arc<Gauge>,
    pool_busy_workers: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
}

impl DaemonMetrics {
    fn new() -> DaemonMetrics {
        let registry = MetricsRegistry::new();
        DaemonMetrics {
            frame_parse: registry.latency("frame_parse"),
            cache_lookup: registry.latency("cache_lookup"),
            admission_wait: registry.latency("admission_wait"),
            run: registry.latency("run"),
            render: registry.latency("render"),
            job: registry.latency("job"),
            fastpath: registry.latency("fastpath"),
            flush_batch: registry.histogram("flush_batch", &FLUSH_BATCH_BUCKETS),
            sim_throughput: registry.histogram("sim_throughput", &SIM_THROUGHPUT_BUCKETS),
            admission_waiting: registry.gauge("admission_waiting"),
            admission_running: registry.gauge("admission_running"),
            admission_stretch: registry.gauge("admission_stretch"),
            pool_queue_depth: registry.gauge("pool_queue_depth"),
            pool_busy_workers: registry.gauge("pool_busy_workers"),
            cache_entries: registry.gauge("cache_entries"),
            registry,
        }
    }
}

/// Where followers of an in-flight run park until the leader publishes.
///
/// `state` stays on plain [`plock`] rather than the lockcheck-instrumented
/// [`plock_named`]: `Condvar::wait` needs the raw `MutexGuard`, and a wait
/// *releases* the mutex while parked, so site tracking would misreport the
/// hold. The same applies to the admission lock below.
#[derive(Default)]
struct InflightSlot {
    state: Mutex<Option<Result<String, SxdError>>>,
    cv: Condvar,
}

impl InflightSlot {
    /// Publish the leader's outcome (first publish wins) and wake waiters.
    fn publish(&self, outcome: Result<String, SxdError>) {
        let mut s = plock(&self.state);
        if s.is_none() {
            *s = Some(outcome);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Park until the leader publishes; returns a clone of its outcome.
    fn wait(&self) -> Result<String, SxdError> {
        let mut s = plock(&self.state);
        loop {
            match &*s {
                Some(outcome) => return outcome.clone(),
                None => s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner),
            }
        }
    }
}

/// What a drain needs to know about a job that is queued or running: how
/// to reconstruct its submission (for the restart spec) and its demand
/// (for [`superux::nqs::checkpoint_split`]).
#[derive(Debug, Clone)]
struct PendingJob {
    suite: String,
    machine: String,
    params: BTreeMap<String, String>,
    demand: Demand,
}

struct Daemon {
    registry: Registry<JobEntry>,
    addr: SocketAddr,
    workers: usize,
    /// Guarded by `admit_cv` waits, so uninstrumented (see [`InflightSlot`]).
    admission: Mutex<Admission>,
    admit_cv: Condvar,
    admit_timeout: Duration,
    cache: Mutex<ResultCache>,
    counters: Mutex<Counters>,
    /// Single-flight table: cache key -> the slot of its in-flight run.
    inflight: Mutex<HashMap<u64, Arc<InflightSlot>>>,
    metrics: DaemonMetrics,
    pool: WorkerPool,
    shutting_down: AtomicBool,
    seq: AtomicU64,
    /// Handle of the running reactor, installed by [`Server::run`]. A
    /// leaf lock: taken in its own scope, never nested with any other
    /// named lock (see module docs).
    reactor: Mutex<Option<ReactorHandle>>,
    idle_timeout: Option<Duration>,
    dispatchers: usize,
    pipeline_depth: usize,
    /// Reactor-thread fast path enabled ([`ServerConfig::fastpath`]).
    fastpath: bool,
    /// The write-ahead result journal (`None` without a state dir).
    /// Lock order: `journal` before `cache`, never the reverse.
    journal: Mutex<Option<Journal>>,
    state_dir: Option<PathBuf>,
    drain_deadline: Duration,
    /// Set by the `drain` verb: admission refuses new submits while
    /// in-flight work winds down.
    draining: AtomicBool,
    /// Every leader currently queued or running, by cache key — the set a
    /// drain deadline checkpoints.
    pending: Mutex<HashMap<u64, PendingJob>>,
    /// Keys whose restart specs have been durably persisted; their leaders
    /// retire as `checkpointed` instead of completing.
    ckpt: Mutex<HashSet<u64>>,
    /// Journal appends that failed with an IO error (the result stayed
    /// served from memory; only durability was lost).
    journal_io_errors: AtomicU64,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a client
/// sends `shutdown` (or a `drain` completes) and the queue drains.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
    /// Restart specs a previous boot's drain checkpointed, re-admitted by
    /// [`Server::run`] before the accept loop opens for business.
    restarts: Vec<RestartSpec>,
}

impl Server {
    /// Bind the listener and stand up the shared state. With a state dir
    /// configured this is also recovery: the result journal is opened
    /// (truncating any torn tail), its surviving records are replayed into
    /// the cache oldest-first so LRU order carries across the restart, and
    /// any drain-checkpointed restart specs are loaded for re-admission.
    pub fn bind(registry: Registry<JobEntry>, config: ServerConfig) -> Result<Server, SxdError> {
        let listener = TcpListener::bind(&config.addr).map_err(SxdError::io)?;
        let addr = listener.local_addr().map_err(SxdError::io)?;

        let mut cache = ResultCache::new(config.cache_cap);
        let (journal_slot, restarts) = match &config.state_dir {
            Some(dir) => {
                let (j, replay) = Journal::open(dir).map_err(SxdError::io)?;
                for (key, payload) in replay {
                    cache.insert(key, payload);
                }
                (Some(j), journal::load_restart_specs(dir))
            }
            None => (None, Vec::new()),
        };

        let daemon = Arc::new(Daemon {
            registry,
            addr,
            workers: config.workers.max(1),
            admission: Mutex::new(Admission::whole_node(config.machine)),
            admit_cv: Condvar::new(),
            admit_timeout: config.admit_timeout,
            cache: Mutex::new(cache),
            counters: Mutex::new(Counters::default()),
            inflight: Mutex::new(HashMap::new()),
            metrics: DaemonMetrics::new(),
            pool: WorkerPool::new(config.workers.max(1)),
            shutting_down: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            reactor: Mutex::new(None),
            idle_timeout: config.idle_timeout,
            dispatchers: if config.dispatchers == 0 {
                (config.workers.max(1) * 2).max(8)
            } else {
                config.dispatchers
            },
            pipeline_depth: config.pipeline_depth.max(1),
            fastpath: config.fastpath,
            journal: Mutex::new(journal_slot),
            state_dir: config.state_dir.clone(),
            drain_deadline: config.drain_deadline,
            draining: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            ckpt: Mutex::new(HashSet::new()),
            journal_io_errors: AtomicU64::new(0),
        });
        Ok(Server { listener, daemon, restarts })
    }

    /// Where the daemon is actually listening (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.addr
    }

    /// Serve on the reactor until shutdown completes, then return. One
    /// event-loop thread owns every socket; no thread is ever spawned per
    /// connection, so a connection churn of any size accumulates no join
    /// handles and no stacks.
    pub fn run(mut self) -> Result<(), SxdError> {
        // Re-admit work a previous boot's drain checkpointed. This runs
        // beside the serving loop — clients can connect immediately — and
        // the spec file is deleted only after every spec has been retired,
        // so a crash mid-readmission re-loads the file next boot and the
        // result cache dedupes whatever already completed.
        let restarts = std::mem::take(&mut self.restarts);
        let readmit = (!restarts.is_empty()).then(|| {
            let d = Arc::clone(&self.daemon);
            std::thread::spawn(move || {
                for spec in &restarts {
                    let params: BTreeMap<String, String> = spec.params.iter().cloned().collect();
                    let _ = d.submit_inner(
                        &spec.suite,
                        &spec.machine,
                        &params,
                        Some(spec.solo_seconds),
                    );
                }
                if let Some(dir) = &d.state_dir {
                    let _ = journal::clear_restart_specs(dir);
                }
            })
        });

        let reactor = Reactor::new(
            self.listener,
            DaemonService { daemon: Arc::clone(&self.daemon) },
            ReactorConfig {
                max_frame: MAX_REQUEST_FRAME,
                idle_timeout: self.daemon.idle_timeout,
                dispatchers: self.daemon.dispatchers,
                pipeline_depth: self.daemon.pipeline_depth,
                flush_batch: Some(Arc::clone(&self.daemon.metrics.flush_batch)),
                ..ReactorConfig::default()
            },
        )
        .map_err(SxdError::io)?;
        let handle = reactor.handle();
        *plock_named(&self.daemon.reactor, "sxd.reactor") = Some(handle.clone());
        // A shutdown (or drain completion) that raced bind-to-run must
        // still wake the loop — it checks the handle slot before we
        // published it.
        if self.daemon.shutting_down.load(Ordering::SeqCst) {
            handle.shutdown();
        }
        let res = reactor.run().map_err(SxdError::io);
        *plock_named(&self.daemon.reactor, "sxd.reactor") = None;
        if let Some(h) = readmit {
            let _ = h.join();
        }
        // Dropping the daemon drops the worker pool, which drains any
        // still-queued jobs before its threads exit.
        res
    }
}

/// The daemon as the reactor sees it: stateless per connection (every
/// frame is self-contained), one dispatcher call per decoded frame.
struct DaemonService {
    daemon: Arc<Daemon>,
}

impl Service for DaemonService {
    type Conn = ();

    fn open(&self, _id: u64) {}

    fn handle(&self, _conn: &(), frame: &str) -> Reply {
        Reply::send(self.daemon.handle_frame(frame))
    }

    /// Reactor-thread fast path: answer a frame inline when it is cheap
    /// (see [`Daemon::fast_frame`]); `None` routes it to a dispatcher.
    fn fast_handle(&self, _conn: &(), frame: &str) -> Option<Reply> {
        self.daemon.fast_frame(frame).map(Reply::send)
    }

    /// Framing is lost (oversized or non-UTF-8 line): the typed error the
    /// blocking reader produced for the same bytes, then close — exactly
    /// the old `handle_conn` behavior.
    fn decode_error_reply(&self, err: &DecodeError) -> String {
        let e = match *err {
            DecodeError::FrameTooLong { len, max } => SxdError::FrameTooLong { len, max },
            DecodeError::NotUtf8 => SxdError::BadJson { detail: "frame is not valid UTF-8".into() },
        };
        e.to_reply()
    }
}

/// How one submit resolved against the cache and the in-flight table.
enum SubmitPath {
    /// Served from the result cache.
    Hit(String),
    /// This submit runs the job and publishes for any followers.
    Leader(Arc<InflightSlot>),
    /// An identical run is in flight; park and replay its payload.
    Follower(Arc<InflightSlot>),
}

impl Daemon {
    fn handle_frame(self: &Arc<Self>, frame: &str) -> String {
        let t_parse = Instant::now();
        let parsed = Request::parse(frame);
        self.metrics.frame_parse.observe(t_parse.elapsed().as_secs_f64());
        match parsed {
            Err(e) => {
                plock_named(&self.counters, "sxd.counters").bad_requests += 1;
                e.to_reply()
            }
            Ok(Request::Stats) => self.stats_reply(),
            Ok(Request::Metrics) => self.metrics_reply(),
            Ok(Request::Shutdown) => {
                self.initiate_shutdown();
                "{\"ok\":true,\"shutting_down\":true}".into()
            }
            Ok(Request::Drain { deadline_ms: _, member: Some(_) }) => {
                plock_named(&self.counters, "sxd.counters").bad_requests += 1;
                SxdError::BadRequest {
                    detail: "\"member\" targets a cluster router; this is a single daemon".into(),
                }
                .to_reply()
            }
            Ok(Request::Drain { deadline_ms, member: None }) => {
                let deadline =
                    deadline_ms.map(Duration::from_millis).unwrap_or(self.drain_deadline);
                self.start_drain(deadline);
                format!(
                    "{{\"ok\":true,\"draining\":true,\"deadline_ms\":{}}}",
                    deadline.as_millis()
                )
            }
            Ok(Request::Put { key, payload }) => match self.handle_put(key, &payload) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            },
            Ok(Request::Route { .. }) => {
                plock_named(&self.counters, "sxd.counters").bad_requests += 1;
                SxdError::BadRequest {
                    detail: "\"route\" is a cluster verb; this daemon is not a router".into(),
                }
                .to_reply()
            }
            Ok(Request::Submit { suite, machine, params }) => {
                match self.handle_submit(&suite, &machine, &params) {
                    Ok(reply) => reply,
                    Err(e) => e.to_reply(),
                }
            }
        }
    }

    /// The reactor-thread fast path: answer `frame` inline when doing so
    /// is cheap and non-blocking, or return `None` to route it through the
    /// dispatcher pool as before. Cheap means: a parse error or cluster
    /// verb (typed reply), `stats`, or a submit that resolves as a cache
    /// hit under the `inflight` -> `cache` pair — the same lock order as
    /// [`Daemon::submit_inner`]. Anything that could run, wait, or park
    /// (misses, followers, `metrics`, drains, shutdown, puts) dispatches.
    ///
    /// `frame_parse` is observed only for frames answered here, so every
    /// frame is counted exactly once (declined frames are re-parsed and
    /// observed by the dispatcher). The `fastpath` histogram covers the
    /// whole inline handling, decode to flush queue.
    fn fast_frame(self: &Arc<Self>, frame: &str) -> Option<String> {
        if !self.fastpath {
            return None;
        }
        let t0 = Instant::now();
        let parsed = Request::parse(frame);
        let parse_wall = t0.elapsed().as_secs_f64();
        let reply = match parsed {
            Err(e) => {
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.bad_requests += 1;
                c.fastpath_hits += 1;
                drop(c);
                e.to_reply()
            }
            Ok(Request::Stats) => {
                let r = self.stats_reply();
                plock_named(&self.counters, "sxd.counters").fastpath_hits += 1;
                r
            }
            Ok(Request::Route { .. }) => {
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.bad_requests += 1;
                c.fastpath_hits += 1;
                drop(c);
                SxdError::BadRequest {
                    detail: "\"route\" is a cluster verb; this daemon is not a router".into(),
                }
                .to_reply()
            }
            Ok(Request::Drain { deadline_ms: _, member: Some(_) }) => {
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.bad_requests += 1;
                c.fastpath_hits += 1;
                drop(c);
                SxdError::BadRequest {
                    detail: "\"member\" targets a cluster router; this is a single daemon".into(),
                }
                .to_reply()
            }
            Ok(Request::Submit { suite, machine, params }) => {
                self.fast_submit(&suite, &machine, &params, t0)?
            }
            Ok(_) => return None,
        };
        self.metrics.frame_parse.observe(parse_wall);
        self.metrics.fastpath.observe(t0.elapsed().as_secs_f64());
        Some(reply)
    }

    /// The submit arm of the fast path: `Some` only for a clean cache hit.
    /// Unlike [`Daemon::submit_inner`] there is no pre-count into
    /// `queued`: the hit retires in one counters critical section
    /// (`accepted`, `done`, `fastpath_hits` and the `job` observation
    /// together), so `accepted == done + rejected + queued + running`
    /// holds at every instant on this path too.
    fn fast_submit(
        &self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
        t_job: Instant,
    ) -> Option<String> {
        if self.shutting_down.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst) {
            return None; // the dispatcher owns the typed refusal
        }
        // Unknown suites and machines dispatch too: their typed errors are
        // not latency-critical and the dispatcher already counts them.
        self.registry.get(suite)?;
        let model = presets::by_name(machine)?;
        let key = cache_key(suite, &model, params);
        let payload = {
            let _inflight = plock_named(&self.inflight, "sxd.inflight");
            plock_named(&self.cache, "sxd.cache").probe(key)?
        };
        {
            let mut c = plock_named(&self.counters, "sxd.counters");
            c.accepted += 1;
            c.done += 1;
            c.fastpath_hits += 1;
            self.metrics.job.observe(t_job.elapsed().as_secs_f64());
        }
        Some(submit_reply(true, key, &payload))
    }

    /// Absorb an already-rendered result under its content address — the
    /// cluster hand-off path replicating a drained member's journal into
    /// its keyspace successor. The payload is inserted verbatim (and
    /// journaled when durable), so repeat submits of the key replay the
    /// original member's exact bytes. Refused while draining: a handed-off
    /// entry would be lost when this member's own journal moves on.
    fn handle_put(&self, key: u64, payload: &str) -> Result<String, SxdError> {
        if self.shutting_down.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst) {
            return Err(SxdError::ShuttingDown);
        }
        plock_named(&self.cache, "sxd.cache").insert(key, payload.to_string());
        self.persist_result(key, payload);
        plock_named(&self.counters, "sxd.counters").absorbed += 1;
        Ok(format!("{{\"ok\":true,\"absorbed\":true,\"key\":\"{key:016x}\"}}"))
    }

    fn handle_submit(
        &self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
    ) -> Result<String, SxdError> {
        self.submit_inner(suite, machine, params, None)
    }

    /// One submission, end to end. `solo_override` replaces the suite's
    /// registered solo seconds — the re-admission path uses it to run only
    /// the work a checkpointed job had left.
    fn submit_inner(
        &self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
        solo_override: Option<f64>,
    ) -> Result<String, SxdError> {
        let t_job = Instant::now();
        if self.shutting_down.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst) {
            return Err(SxdError::ShuttingDown);
        }
        let entry = match self.registry.get(suite) {
            Some(e) => e,
            None => {
                plock_named(&self.counters, "sxd.counters").bad_requests += 1;
                return Err(SxdError::UnknownSuite { suite: suite.into() });
            }
        };
        let model = match presets::by_name(machine) {
            Some(m) => m,
            None => {
                plock_named(&self.counters, "sxd.counters").bad_requests += 1;
                return Err(SxdError::UnknownMachine { machine: machine.into() });
            }
        };
        let key = cache_key(suite, &model, params);

        {
            let mut c = plock_named(&self.counters, "sxd.counters");
            c.accepted += 1;
            c.queued += 1;
        }

        // Cache lookup and single-flight resolution are one atomic
        // decision under the inflight lock: a submit either sees the
        // cached payload, joins the in-flight run, or becomes its leader.
        // Leaders insert into the cache *before* retiring their slot, so
        // no identical submit can slip between the two tables and re-run.
        let t_lookup = Instant::now();
        let path = {
            let mut inflight = plock_named(&self.inflight, "sxd.inflight");
            if let Some(payload) = plock_named(&self.cache, "sxd.cache").get(key) {
                SubmitPath::Hit(payload)
            } else if let Some(slot) = inflight.get(&key) {
                SubmitPath::Follower(Arc::clone(slot))
            } else {
                let slot = Arc::new(InflightSlot::default());
                inflight.insert(key, Arc::clone(&slot));
                SubmitPath::Leader(slot)
            }
        };
        self.metrics.cache_lookup.observe(t_lookup.elapsed().as_secs_f64());

        match path {
            SubmitPath::Hit(payload) => {
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.queued -= 1;
                c.done += 1;
                self.metrics.job.observe(t_job.elapsed().as_secs_f64());
                drop(c);
                Ok(submit_reply(true, key, &payload))
            }
            SubmitPath::Follower(slot) => {
                let outcome = slot.wait();
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.queued -= 1;
                c.coalesced += 1;
                match &outcome {
                    Ok(_) => c.done += 1,
                    Err(e) => {
                        c.rejected += 1;
                        if matches!(e, SxdError::Checkpointed { .. }) {
                            c.checkpointed += 1;
                        }
                    }
                }
                self.metrics.job.observe(t_job.elapsed().as_secs_f64());
                drop(c);
                outcome.map(|payload| submit_reply(true, key, &payload))
            }
            SubmitPath::Leader(slot) => {
                let outcome =
                    self.run_as_leader(suite, entry, &model, params, key, t_job, solo_override);
                // Retire the slot (the cache was populated first on
                // success) and publish so followers wake with the result.
                plock_named(&self.inflight, "sxd.inflight").remove(&key);
                slot.publish(outcome.clone());
                outcome.map(|payload| submit_reply(false, key, &payload))
            }
        }
    }

    /// Admit, execute and render one job, returning its payload. Every
    /// early return retires the job in the counters (and observes the
    /// reconciled `job` histogram) before surfacing the error. A drain
    /// deadline can checkpoint the job while it is queued (it retires
    /// without running) or while it is running (its result is discarded —
    /// the persisted restart spec owns the work now, and completing both
    /// would double-count it on the next boot).
    #[allow(clippy::too_many_arguments)]
    fn run_as_leader(
        &self,
        suite: &str,
        entry: &JobEntry,
        model: &MachineModel,
        params: &BTreeMap<String, String>,
        key: u64,
        t_job: Instant,
        solo_override: Option<f64>,
    ) -> Result<String, SxdError> {
        let demand = Demand {
            solo_seconds: solo_override.unwrap_or(entry.demand.solo_seconds),
            ..entry.demand
        };
        plock_named(&self.pending, "sxd.pending").insert(
            key,
            PendingJob {
                suite: suite.to_string(),
                machine: model.name.clone(),
                params: params.clone(),
                demand,
            },
        );
        let job = JobSpec {
            name: format!("sxd-{}", self.seq.fetch_add(1, Ordering::SeqCst)),
            procs: demand.procs,
            memory_bytes: demand.memory_bytes,
            solo_seconds: demand.solo_seconds,
            bytes_per_cycle_per_proc: demand.bytes_per_cycle_per_proc,
            block: 0,
            after: Vec::new(),
        };
        let reject = |detail: String| {
            let mut c = plock_named(&self.counters, "sxd.counters");
            c.queued -= 1;
            c.rejected += 1;
            self.metrics.job.observe(t_job.elapsed().as_secs_f64());
            drop(c);
            plock_named(&self.pending, "sxd.pending").remove(&key);
            Err(SxdError::Rejected { detail })
        };

        let t_adm = Instant::now();
        let deadline = t_adm + self.admit_timeout;
        let stretch = {
            let mut adm = plock(&self.admission);
            loop {
                // A drain may have checkpointed this job while it sat in
                // the queue: its remaining work is durably persisted, so it
                // retires here without ever running.
                if plock_named(&self.ckpt, "sxd.ckpt").remove(&key) {
                    drop(adm);
                    self.metrics.admission_wait.observe(t_adm.elapsed().as_secs_f64());
                    return self.retire_checkpointed(key, t_job, false);
                }
                match adm.try_admit(&job) {
                    Err(e) => {
                        drop(adm);
                        self.metrics.admission_wait.observe(t_adm.elapsed().as_secs_f64());
                        return reject(e.to_string());
                    }
                    Ok(true) => break adm.stretch(),
                    Ok(false) => {
                        let now = Instant::now();
                        if now >= deadline {
                            drop(adm);
                            self.metrics.admission_wait.observe(t_adm.elapsed().as_secs_f64());
                            return reject(format!(
                                "admission wait exceeded {:.3}s with the node still full",
                                self.admit_timeout.as_secs_f64()
                            ));
                        }
                        adm.begin_wait();
                        let (mut woken, _timeout) = self
                            .admit_cv
                            .wait_timeout(adm, deadline - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        woken.end_wait();
                        adm = woken;
                    }
                }
            }
        };
        self.metrics.admission_wait.observe(t_adm.elapsed().as_secs_f64());
        {
            let mut c = plock_named(&self.counters, "sxd.counters");
            c.queued -= 1;
            c.running += 1;
        }

        let runner = entry.runner.clone();
        let run_params = params.clone();
        let run_model = model.clone();
        let t_run = Instant::now();
        let outcome = self.pool.run(move || {
            catch_unwind(AssertUnwindSafe(|| runner(&run_model, &run_params)))
                .unwrap_or_else(|_| Err("runner panicked".into()))
        });
        let run_wall = t_run.elapsed().as_secs_f64();
        self.metrics.run.observe(run_wall);

        plock(&self.admission).release(&job.name);
        self.admit_cv.notify_all();

        // A drain deadline may have checkpointed this job mid-run. The
        // restart spec is already durable, so the next boot re-runs the
        // work; serving this result too would double-count it. Discard it
        // and retire as checkpointed, whatever the runner returned.
        if plock_named(&self.ckpt, "sxd.ckpt").remove(&key) {
            return self.retire_checkpointed(key, t_job, true);
        }

        match outcome {
            Err(detail) => {
                let mut c = plock_named(&self.counters, "sxd.counters");
                c.running -= 1;
                c.rejected += 1;
                self.metrics.job.observe(t_job.elapsed().as_secs_f64());
                drop(c);
                plock_named(&self.pending, "sxd.pending").remove(&key);
                Err(SxdError::RunFailed { detail })
            }
            Ok(artifacts) => {
                let sim_seconds = demand.solo_seconds * stretch;
                if run_wall > 0.0 {
                    self.metrics.sim_throughput.observe(sim_seconds / run_wall);
                }
                let t_render = Instant::now();
                let payload =
                    render_payload(suite, params, sim_seconds, stretch, &artifacts, &model.name);
                self.metrics.render.observe(t_render.elapsed().as_secs_f64());
                {
                    let mut c = plock_named(&self.counters, "sxd.counters");
                    c.running -= 1;
                    c.done += 1;
                    let s = c.suites.entry(suite.to_ascii_lowercase()).or_default();
                    s.runs += 1;
                    s.sim_seconds += sim_seconds;
                    s.stretch_sum += stretch;
                    self.metrics.job.observe(t_job.elapsed().as_secs_f64());
                }
                // Memory first, then disk: the cache is the source of
                // truth this boot; the journal makes it the source of
                // truth for the *next* boot. The compaction snapshot is
                // taken after the insert so it can never lose the entry
                // whose append it supersedes.
                plock_named(&self.cache, "sxd.cache").insert(key, payload.clone());
                self.persist_result(key, &payload);
                plock_named(&self.pending, "sxd.pending").remove(&key);
                Ok(payload)
            }
        }
    }

    /// Append one completed result to the journal (when durable) and
    /// compact once enough appends have stacked up. Journal IO failures
    /// are counted, not fatal: the client still gets its in-memory result,
    /// only durability for this record is lost.
    fn persist_result(&self, key: u64, payload: &str) {
        let mut slot = plock_named(&self.journal, "sxd.journal");
        let Some(j) = slot.as_mut() else { return };
        // The journal lock *is* the designated guard of the journal file:
        // appends and compactions must serialize, so holding it across
        // this IO is by design and exempt from SXC302.
        lockreg::blocking_io("sxd.journal.append", &["sxd.journal"]);
        if j.append(key, payload).is_err() {
            self.journal_io_errors.fetch_add(1, Ordering::SeqCst);
        }
        if j.should_compact(plock_named(&self.cache, "sxd.cache").cap()) {
            // Lock order: journal (held) -> cache. The snapshot is the
            // cache's live LRU view, so replay rebuilds identical state.
            let entries = plock_named(&self.cache, "sxd.cache").entries_lru();
            lockreg::blocking_io("sxd.journal.compact", &["sxd.journal"]);
            if j.compact(&entries).is_err() {
                self.journal_io_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Retire a checkpointed leader: counted as `rejected` (the invariant
    /// is untouched) plus the informational `checkpointed`, with the `job`
    /// histogram observed in the same critical section as every other
    /// retirement.
    fn retire_checkpointed(
        &self,
        key: u64,
        t_job: Instant,
        was_running: bool,
    ) -> Result<String, SxdError> {
        {
            let mut c = plock_named(&self.counters, "sxd.counters");
            if was_running {
                c.running -= 1;
            } else {
                c.queued -= 1;
            }
            c.rejected += 1;
            c.checkpointed += 1;
            self.metrics.job.observe(t_job.elapsed().as_secs_f64());
        }
        plock_named(&self.pending, "sxd.pending").remove(&key);
        Err(SxdError::Checkpointed {
            detail: "drain deadline checkpointed this job; it restarts on the next boot".into(),
        })
    }

    /// The `stats` member both STATS and METRICS replies embed.
    fn stats_json(&self, snap: &Counters, cache: (u64, u64, u64, usize, usize)) -> String {
        let (hits, misses, evictions, entries, cap) = cache;
        let suite_seconds = Json::Obj(
            snap.suites.iter().map(|(k, s)| (k.clone(), Json::Num(s.sim_seconds))).collect(),
        );
        // Leaf lock, released before the journal lock below is taken —
        // `sxd.reactor` must never appear in a lock-graph edge.
        let (conns_open, conns_accepted, conns_idle_closed) = {
            match plock_named(&self.reactor, "sxd.reactor").as_ref() {
                Some(h) => (h.open(), h.accepted(), h.idle_closed()),
                None => (0, 0, 0),
            }
        };
        let journal = match plock_named(&self.journal, "sxd.journal").as_ref() {
            Some(j) => format!(
                "{{\"appended\":{},\"replayed\":{},\"compactions\":{},\
                 \"truncated_bytes\":{},\"io_errors\":{}}}",
                j.appended(),
                j.replayed(),
                j.compactions(),
                j.truncated_bytes(),
                self.journal_io_errors.load(Ordering::SeqCst),
            ),
            None => "null".into(),
        };
        format!(
            "{{\"accepted\":{},\"rejected\":{},\"queued\":{},\
             \"running\":{},\"done\":{},\"bad_requests\":{},\"coalesced\":{},\
             \"checkpointed\":{},\"absorbed\":{},\"fastpath_hits\":{},\
             \"queue_depth\":{},\
             \"cache\":{{\"hits\":{hits},\"misses\":{misses},\
             \"evictions\":{evictions},\"entries\":{entries},\"cap\":{cap}}},\
             \"conns\":{{\"open\":{conns_open},\"accepted\":{conns_accepted},\
             \"idle_closed\":{conns_idle_closed}}},\
             \"suite_seconds\":{},\"workers\":{},\"journal\":{},\
             \"draining\":{},\"shutting_down\":{}}}",
            snap.accepted,
            snap.rejected,
            snap.queued,
            snap.running,
            snap.done,
            snap.bad_requests,
            snap.coalesced,
            snap.checkpointed,
            snap.absorbed,
            snap.fastpath_hits,
            snap.queued,
            suite_seconds,
            self.workers,
            journal,
            self.draining.load(Ordering::SeqCst),
            self.shutting_down.load(Ordering::SeqCst),
        )
    }

    fn cache_stats(&self) -> (u64, u64, u64, usize, usize) {
        let c = plock_named(&self.cache, "sxd.cache");
        (c.hits(), c.misses(), c.evictions(), c.len(), c.cap())
    }

    fn stats_reply(&self) -> String {
        let cache = self.cache_stats();
        let snap = plock_named(&self.counters, "sxd.counters").clone();
        format!("{{\"ok\":true,\"stats\":{}}}", self.stats_json(&snap, cache))
    }

    /// The METRICS reply: counters, gauges, per-stage latency histograms
    /// and the per-suite breakdown, with the reconciliation guarantee that
    /// `latency.job.count == stats.done + stats.rejected` (both captured
    /// under one counters lock; `job` is only observed inside it).
    fn metrics_reply(&self) -> String {
        // Refresh level gauges from their live sources (separate locks;
        // gauges are instantaneous readings, not part of the guarantee).
        {
            let adm = plock(&self.admission);
            self.metrics.admission_waiting.set(adm.waiting() as f64);
            self.metrics.admission_running.set(adm.running() as f64);
            self.metrics.admission_stretch.set(adm.stretch());
        }
        self.metrics.pool_queue_depth.set(self.pool.queue_depth() as f64);
        self.metrics.pool_busy_workers.set(self.pool.busy_workers() as f64);
        let cache = self.cache_stats();
        self.metrics.cache_entries.set(cache.3 as f64);

        let (snap, reg) = {
            let c = plock_named(&self.counters, "sxd.counters");
            // Histograms snapshotted while the counters are frozen: every
            // `job` observation happens under this same lock.
            (c.clone(), self.metrics.registry.snapshot())
        };
        let reconciled =
            reg.histograms.get("job").is_some_and(|h| h.count == snap.done + snap.rejected);
        let gauges = Json::Obj(
            reg.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v))).collect::<Vec<_>>(),
        );
        let latency = Json::Obj(
            reg.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect::<Vec<_>>(),
        );
        let suites = Json::Obj(
            snap.suites
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("runs".into(), Json::Num(s.runs as f64)),
                            ("sim_seconds".into(), Json::Num(s.sim_seconds)),
                            (
                                "avg_stretch".into(),
                                Json::Num(if s.runs > 0 {
                                    s.stretch_sum / s.runs as f64
                                } else {
                                    0.0
                                }),
                            ),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        format!(
            "{{\"ok\":true,\"metrics\":{{\"stats\":{},\"gauges\":{},\"latency\":{},\
             \"suites\":{},\"reconciled\":{}}}}}",
            self.stats_json(&snap, cache),
            gauges,
            latency,
            suites,
            reconciled,
        )
    }

    /// Begin a graceful drain: stop admitting, give in-flight jobs
    /// `deadline` to finish, checkpoint the stragglers, shut down.
    /// Idempotent — the first drain wins.
    fn start_drain(self: &Arc<Self>, deadline: Duration) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let d = Arc::clone(self);
        std::thread::spawn(move || d.drain_worker(deadline));
    }

    /// The drain state machine. Phase 1: poll until every pending leader
    /// retires or the deadline passes. Phase 2: split each straggler with
    /// `checkpoint_split` and persist the restart halves — only once they
    /// are durably on disk are the keys marked checkpointed, so a crash or
    /// IO fault during persistence leaves the jobs to finish normally
    /// instead of vanishing. Phase 3: wait for the stragglers to retire
    /// (queued ones retire on the next condvar wake; running ones when the
    /// runner returns), then shut the daemon down.
    fn drain_worker(&self, deadline: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < deadline && !plock_named(&self.pending, "sxd.pending").is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stragglers: Vec<(u64, PendingJob)> = plock_named(&self.pending, "sxd.pending")
            .iter()
            .map(|(k, p)| (*k, p.clone()))
            .collect();
        if !stragglers.is_empty() {
            if let Some(dir) = &self.state_dir {
                let mut specs = Vec::with_capacity(stragglers.len());
                for (key, p) in &stragglers {
                    let job = JobSpec {
                        name: format!("ckpt-{key:016x}"),
                        procs: p.demand.procs,
                        memory_bytes: p.demand.memory_bytes,
                        solo_seconds: p.demand.solo_seconds,
                        bytes_per_cycle_per_proc: p.demand.bytes_per_cycle_per_proc,
                        block: 0,
                        after: Vec::new(),
                    };
                    // The runner is a black box — the daemon has no
                    // progress signal for it — so the checkpoint is taken
                    // conservatively at fraction 0: the restart half
                    // carries all the work (plus the restart overhead) and
                    // nothing is lost, merely recomputed.
                    let Ok((_spent, rest)) =
                        superux::nqs::checkpoint_split(&job, 0.0, CKPT_SECONDS, RESTART_SECONDS)
                    else {
                        continue; // unreachable: 0.0 is in range
                    };
                    specs.push(RestartSpec {
                        suite: p.suite.clone(),
                        machine: p.machine.clone(),
                        params: p.params.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                        solo_seconds: rest.solo_seconds,
                        fraction_done: 0.0,
                    });
                }
                if journal::write_restart_specs(dir, &specs).is_ok() {
                    let mut ck = plock_named(&self.ckpt, "sxd.ckpt");
                    for (key, _) in &stragglers {
                        ck.insert(*key);
                    }
                    drop(ck);
                    // Wake queued leaders so they observe their checkpoint.
                    self.admit_cv.notify_all();
                }
                // On persist failure the stragglers stay un-checkpointed
                // and run to completion below — slower, but nothing lost.
            }
            while !plock_named(&self.pending, "sxd.pending").is_empty() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.initiate_shutdown();
    }

    /// Flip the shutdown flag and wake the reactor. Idempotent. Shutdown
    /// is a first-class event: the loop stops accepting immediately,
    /// closes idle connections, and flushes in-flight replies — no
    /// follow-on client needed, no self-connect poke, no half-closing
    /// sockets behind the event loop's back.
    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let handle = plock_named(&self.reactor, "sxd.reactor").clone();
        if let Some(h) = handle {
            h.shutdown();
        }
    }
}

/// Serialize one run result. Deterministic: key order is fixed, floats use
/// the shortest round-trip form, artifacts serialize themselves. Cache
/// hits replay these exact bytes.
fn render_payload(
    suite: &str,
    params: &BTreeMap<String, String>,
    sim_seconds: f64,
    stretch: f64,
    artifacts: &[Artifact],
    machine: &str,
) -> String {
    let params_json =
        Json::Obj(params.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
            .to_string();
    let arts: Vec<String> = artifacts.iter().map(Artifact::to_json).collect();
    let rendered: String = artifacts.iter().map(Artifact::render).collect();
    format!(
        "{{\"suite\":\"{}\",\"machine\":\"{}\",\"params\":{},\"sim_seconds\":{},\
         \"stretch\":{},\"artifacts\":[{}],\"rendered\":\"{}\"}}",
        json_escape(suite),
        json_escape(machine),
        params_json,
        json_f64(sim_seconds),
        json_f64(stretch),
        arts.join(","),
        json_escape(&rendered)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn toy_registry() -> Registry<JobEntry> {
        let mut r = Registry::new();
        r.register(
            "toy",
            JobEntry::new(Demand::light(2.0), "toy scalar", |_m, p| {
                let n = p.get("n").map(String::as_str).unwrap_or("1");
                Ok(vec![Artifact::Scalar {
                    title: format!("toy n={n}"),
                    value: 42.0,
                    unit: "mflops".into(),
                }])
            }),
        );
        r
    }

    fn metrics_doc(d: &Daemon) -> Json {
        let reply = d.metrics_reply();
        let doc = Json::parse(&reply).expect("metrics reply must be valid JSON");
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        doc.get("metrics").unwrap().clone()
    }

    #[test]
    fn payload_is_deterministic_for_equal_inputs() {
        let mut p = BTreeMap::new();
        p.insert("n".to_string(), "4".to_string());
        let a = vec![Artifact::Scalar { title: "t".into(), value: 1.5, unit: "u".into() }];
        let one = render_payload("toy", &p, 2.25, 1.125, &a, "sx4-9.2");
        let two = render_payload("toy", &p, 2.25, 1.125, &a, "sx4-9.2");
        assert_eq!(one, two);
        Json::parse(&one).expect("payload must be valid JSON");
    }

    #[test]
    fn submit_path_counts_and_caches_without_tcp() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let params = BTreeMap::new();
        let first = d.handle_submit("toy", "sx4", &params).unwrap();
        let second = d.handle_submit("TOY", "sx4-9.2", &params).unwrap();
        assert!(first.contains("\"cached\":false"));
        assert!(second.contains("\"cached\":true"));
        // Byte-identical modulo the cached flag.
        assert_eq!(second, first.replace("\"cached\":false", "\"cached\":true"));
        let c = plock(&d.counters);
        assert_eq!((c.accepted, c.done, c.rejected, c.queued, c.running), (2, 2, 0, 0, 0));
        let toy = c.suites.get("toy").unwrap();
        assert!(toy.sim_seconds > 0.0);
        assert_eq!(toy.runs, 1, "the cache hit must not count as a run");
    }

    #[test]
    fn fast_path_serves_cache_hits_inline_with_counters_reconciled() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let frame = "{\"op\":\"submit\",\"suite\":\"toy\",\"machine\":\"sx4\"}";
        // Cold: the fast path must decline the miss and leave no trace —
        // not even a counted cache miss (the dispatcher counts it).
        assert!(d.fast_frame(frame).is_none());
        {
            let c = plock(&d.counters);
            assert_eq!((c.accepted, c.fastpath_hits), (0, 0));
        }
        assert_eq!(plock(&d.cache).misses(), 0, "a declined probe must be invisible");
        // Warm the cache through the full path.
        let slow = d.handle_frame(frame);
        assert!(slow.contains("\"cached\":false"), "{slow}");
        // Hot: the fast path serves byte-identical output inline.
        let fast = d.fast_frame(frame).expect("warm submit must fast-path");
        assert_eq!(fast, slow.replace("\"cached\":false", "\"cached\":true"));
        {
            let c = plock(&d.counters);
            assert_eq!((c.accepted, c.done, c.fastpath_hits), (2, 2, 1));
            assert_eq!(c.accepted, c.done + c.rejected + c.queued + c.running);
        }
        // Stats, parse errors and cluster verbs answer inline; run-bound
        // and stateful verbs do not.
        assert!(d.fast_frame("{\"op\":\"stats\"}").is_some());
        assert!(d.fast_frame("not json").is_some());
        assert!(d.fast_frame("{\"op\":\"route\",\"suite\":\"toy\",\"machine\":\"sx4\"}").is_some());
        assert!(d.fast_frame("{\"op\":\"metrics\"}").is_none());
        assert!(d.fast_frame("{\"op\":\"shutdown\"}").is_none());
        assert!(d.fast_frame("{\"op\":\"drain\"}").is_none());
        let m = metrics_doc(d);
        assert_eq!(m.get("reconciled").unwrap().as_bool(), Some(true));
        let stats = m.get("stats").unwrap();
        assert_eq!(stats.get("fastpath_hits").unwrap().as_u64(), Some(4));
        assert_eq!(stats.get("bad_requests").unwrap().as_u64(), Some(2));
        // `frame_parse` counted each answered frame exactly once: one warm
        // dispatch + four inline answers (the cold decline re-parses in
        // the dispatcher, which in this test never saw it).
        let parse = m.get("latency").unwrap().get("frame_parse").unwrap();
        assert_eq!(parse.get("count").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn fast_path_toggle_off_declines_everything() {
        let config = ServerConfig { fastpath: false, ..ServerConfig::default() };
        let server = Server::bind(toy_registry(), config).unwrap();
        let d = &server.daemon;
        let frame = "{\"op\":\"submit\",\"suite\":\"toy\",\"machine\":\"sx4\"}";
        let _ = d.handle_frame(frame);
        assert!(d.fast_frame(frame).is_none(), "warm hit must still dispatch");
        assert!(d.fast_frame("{\"op\":\"stats\"}").is_none());
        assert_eq!(plock(&d.counters).fastpath_hits, 0);
    }

    #[test]
    fn unknown_suite_and_machine_are_typed_not_accepted() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let params = BTreeMap::new();
        let e1 = d.handle_submit("nope", "sx4", &params).unwrap_err();
        assert_eq!(e1.kind(), "unknown_suite");
        let e2 = d.handle_submit("toy", "cray-2", &params).unwrap_err();
        assert_eq!(e2.kind(), "unknown_machine");
        let c = plock(&d.counters);
        assert_eq!(c.accepted, 0);
        assert_eq!(c.bad_requests, 2);
    }

    #[test]
    fn infeasible_demand_is_rejected_with_counters_reconciled() {
        let mut r = toy_registry();
        r.register(
            "wide",
            JobEntry::new(
                Demand {
                    procs: 4096,
                    memory_bytes: 1 << 20,
                    solo_seconds: 1.0,
                    bytes_per_cycle_per_proc: 8.0,
                },
                "asks for more processors than the node has",
                |_m, _p| Ok(vec![]),
            ),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let err = d.handle_submit("wide", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(err.kind(), "rejected");
        let c = plock(&d.counters);
        assert_eq!((c.accepted, c.rejected, c.done, c.queued, c.running), (1, 1, 0, 0, 0));
    }

    #[test]
    fn runner_panic_becomes_run_failed_not_a_crash() {
        let mut r = Registry::new();
        r.register(
            "boom",
            JobEntry::new(
                Demand::light(1.0),
                "always panics",
                |_m, _p| -> Result<Vec<Artifact>, String> { panic!("kaboom") },
            ),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let err = server.daemon.handle_submit("boom", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(err.kind(), "run_failed");
        let c = plock(&server.daemon.counters);
        assert_eq!((c.accepted, c.rejected, c.running), (1, 1, 0));
    }

    #[test]
    fn concurrent_identical_submits_run_once_and_coalesce() {
        // The thundering-herd regression: a herd of identical cache-missing
        // submits must execute the runner exactly once.
        let runs = Arc::new(AtomicUsize::new(0));
        let mut r = Registry::new();
        let runs_in_runner = Arc::clone(&runs);
        r.register(
            "slow",
            JobEntry::new(Demand::light(1.0), "slow runner", move |_m, _p| {
                runs_in_runner.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(100));
                Ok(vec![Artifact::Scalar { title: "s".into(), value: 1.0, unit: "u".into() }])
            }),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let d = Arc::clone(&server.daemon);

        const HERD: usize = 8;
        let replies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..HERD)
                .map(|_| {
                    let d = Arc::clone(&d);
                    s.spawn(move || d.handle_submit("slow", "sx4", &BTreeMap::new()).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(runs.load(Ordering::SeqCst), 1, "one run per unique key");
        // Exactly one leader replied uncached; every follower replayed.
        let uncached = replies.iter().filter(|r| r.contains("\"cached\":false")).count();
        assert_eq!(uncached, 1);
        // All replies carry byte-identical payloads.
        let canon = replies[0].replace("\"cached\":false", "\"cached\":true");
        for r in &replies {
            assert_eq!(r.replace("\"cached\":false", "\"cached\":true"), canon);
        }
        let c = plock(&d.counters);
        assert_eq!(c.coalesced, (HERD - 1) as u64);
        assert_eq!((c.accepted, c.done, c.queued, c.running), (HERD as u64, HERD as u64, 0, 0));
        assert_eq!(c.suites.get("slow").unwrap().runs, 1);
    }

    #[test]
    fn followers_share_the_leaders_failure() {
        let runs = Arc::new(AtomicUsize::new(0));
        let mut r = Registry::new();
        let runs_in_runner = Arc::clone(&runs);
        r.register(
            "failing",
            JobEntry::new(Demand::light(1.0), "always fails slowly", move |_m, _p| {
                runs_in_runner.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(80));
                Err("deliberate failure".into())
            }),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let d = Arc::clone(&server.daemon);
        let errs: Vec<SxdError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let d = Arc::clone(&d);
                    s.spawn(move || {
                        d.handle_submit("failing", "sx4", &BTreeMap::new()).unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "failures are not retried by followers");
        for e in &errs {
            assert_eq!(e.kind(), "run_failed", "{e}");
        }
        let c = plock(&d.counters);
        assert_eq!((c.accepted, c.rejected, c.done), (4, 4, 0));
        assert_eq!(c.coalesced, 3);
        // Failures are not cached: a later submit runs again.
        drop(c);
        let _ = d.handle_submit("failing", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn admission_wait_times_out_with_a_typed_rejection() {
        let mut r = Registry::new();
        // Occupies every processor of the node for 300 ms of host time.
        r.register(
            "hog",
            JobEntry::new(
                Demand {
                    procs: 32,
                    memory_bytes: 1 << 30,
                    solo_seconds: 1.0,
                    bytes_per_cycle_per_proc: 8.0,
                },
                "whole-node job",
                |_m, _p| {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(vec![])
                },
            ),
        );
        r.register(
            "wants-in",
            JobEntry::new(
                Demand {
                    procs: 32,
                    memory_bytes: 1 << 30,
                    solo_seconds: 1.0,
                    bytes_per_cycle_per_proc: 8.0,
                },
                "cannot fit beside the hog",
                |_m, _p| Ok(vec![]),
            ),
        );
        let config =
            ServerConfig { admit_timeout: Duration::from_millis(50), ..ServerConfig::default() };
        let server = Server::bind(r, config).unwrap();
        let d = Arc::clone(&server.daemon);

        let hog = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.handle_submit("hog", "sx4", &BTreeMap::new()))
        };
        // Let the hog take the node before the second job arrives.
        std::thread::sleep(Duration::from_millis(60));
        let err = d.handle_submit("wants-in", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(err.kind(), "rejected");
        assert!(err.detail().contains("admission wait exceeded"), "{err}");
        {
            let c = plock(&d.counters);
            assert_eq!(c.rejected, 1);
            assert_eq!(
                c.accepted,
                c.done + c.rejected + c.queued + c.running,
                "invariant must hold with the hog still in flight"
            );
        }
        hog.join().unwrap().unwrap();
        let c = plock(&d.counters);
        assert_eq!((c.accepted, c.done, c.rejected, c.queued, c.running), (2, 1, 1, 0, 0));
    }

    #[test]
    fn stats_stay_serviceable_after_a_panic_poisons_the_counters() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = Arc::clone(&server.daemon);
        d.handle_submit("toy", "sx4", &BTreeMap::new()).unwrap();
        // Poison the counters mutex the way a bug would: panic mid-section.
        {
            let d = Arc::clone(&d);
            let _ = std::thread::spawn(move || {
                let _guard = d.counters.lock().unwrap();
                panic!("simulated bug while holding the counters lock");
            })
            .join();
        }
        assert!(d.counters.lock().is_err(), "the mutex really is poisoned");
        // STATS, METRICS and new submits all still work.
        let stats = d.stats_reply();
        assert!(stats.contains("\"accepted\":1"), "{stats}");
        let m = metrics_doc(&d);
        assert_eq!(m.get("reconciled").unwrap().as_bool(), Some(true));
        let reply = d.handle_submit("toy", "sx4", &BTreeMap::new()).unwrap();
        assert!(reply.contains("\"cached\":true"));
    }

    #[test]
    fn metrics_reconcile_job_histogram_with_counters() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let mut p = BTreeMap::new();
        d.handle_submit("toy", "sx4", &p).unwrap(); // miss -> run
        d.handle_submit("toy", "sx4", &p).unwrap(); // hit
        p.insert("n".into(), "2".into());
        d.handle_submit("toy", "sx4", &p).unwrap(); // second distinct run
        let _ = d.handle_submit("missing", "sx4", &p).unwrap_err(); // not accepted

        let m = metrics_doc(d);
        assert_eq!(m.get("reconciled").unwrap().as_bool(), Some(true));
        let stats = m.get("stats").unwrap();
        let job = m.get("latency").unwrap().get("job").unwrap();
        let done = stats.get("done").unwrap().as_u64().unwrap();
        let rejected = stats.get("rejected").unwrap().as_u64().unwrap();
        assert_eq!(job.get("count").unwrap().as_u64().unwrap(), done + rejected);
        assert_eq!(done, 3);
        // Bucket counts sum to the histogram count (overflow included).
        let n: u64 =
            job.get("n").unwrap().as_arr().unwrap().iter().map(|v| v.as_u64().unwrap()).sum();
        assert_eq!(n, done + rejected);
        // Stage histograms saw the two real runs.
        let run = m.get("latency").unwrap().get("run").unwrap();
        assert_eq!(run.get("count").unwrap().as_u64(), Some(2));
        let render = m.get("latency").unwrap().get("render").unwrap();
        assert_eq!(render.get("count").unwrap().as_u64(), Some(2));
        // The per-suite breakdown counts runs, not serves.
        let toy = m.get("suites").unwrap().get("toy").unwrap();
        assert_eq!(toy.get("runs").unwrap().as_u64(), Some(2));
        assert!(toy.get("avg_stretch").unwrap().as_f64().unwrap() >= 1.0);
        // Gauges exist and are quiescent. `WorkerPool::run` returns when
        // the job's result is delivered, a hair before the worker's busy
        // guard drops, so give the gauge a moment to settle.
        let deadline = Instant::now() + Duration::from_secs(5);
        while d.pool.busy_workers() > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = metrics_doc(d);
        let g = m.get("gauges").unwrap();
        assert_eq!(g.get("pool_busy_workers").unwrap().as_f64(), Some(0.0));
        assert_eq!(g.get("admission_running").unwrap().as_f64(), Some(0.0));
    }
}
