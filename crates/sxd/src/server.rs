//! The daemon: a TCP accept loop feeding an NQS-admitted, pool-bounded,
//! cache-fronted job executor.
//!
//! Jobs are admitted through the same Resource-Block gate NQS applies on
//! the real machine (paper §2.6.3): a submit that cannot fit its block is
//! *rejected* with a typed error, one that could fit but finds the node
//! busy *waits*, and admitted jobs run with their simulated time stretched
//! by the memory-contention model of Table 6. Every state transition
//! updates the [`Counters`] inside a single critical section, so the
//! invariant `accepted == done + rejected + queued + running` holds at
//! every instant, not just at quiescence.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ncar_suite::report::{json_escape, json_f64};
use ncar_suite::{Artifact, Json, Registry, WorkerPool};
use superux::{Admission, JobSpec};
use sxsim::{presets, MachineModel};

use crate::cache::ResultCache;
use crate::error::SxdError;
use crate::proto::{cache_key, read_frame, submit_reply, Request, MAX_REQUEST_FRAME};

/// What one job asks of the node, in NQS Resource-Block terms.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    pub procs: usize,
    pub memory_bytes: u64,
    /// Simulated wall seconds the job takes when it has the node alone.
    pub solo_seconds: f64,
    /// Memory traffic per processor, for the contention stretch model.
    pub bytes_per_cycle_per_proc: f64,
}

impl Demand {
    /// A light single-processor job (kernels, accuracy checks).
    pub fn light(solo_seconds: f64) -> Demand {
        Demand { procs: 1, memory_bytes: 256 << 20, solo_seconds, bytes_per_cycle_per_proc: 8.0 }
    }
}

/// How a runner produces a result: pure function of the requested machine
/// and the canonicalized parameters. Determinism here is what makes the
/// result cache sound.
pub type RunFn = Arc<
    dyn Fn(&MachineModel, &BTreeMap<String, String>) -> Result<Vec<Artifact>, String> + Send + Sync,
>;

/// A runnable suite as the daemon sees it.
#[derive(Clone)]
pub struct JobEntry {
    pub demand: Demand,
    pub description: String,
    pub runner: RunFn,
}

impl JobEntry {
    pub fn new(
        demand: Demand,
        description: impl Into<String>,
        runner: impl Fn(&MachineModel, &BTreeMap<String, String>) -> Result<Vec<Artifact>, String>
            + Send
            + Sync
            + 'static,
    ) -> JobEntry {
        JobEntry { demand, description: description.into(), runner: Arc::new(runner) }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads actually executing simulations.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_cap: usize,
    /// The machine whose node the admission gate models.
    pub machine: MachineModel,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_cap: 256,
            machine: presets::sx4_benchmarked(),
        }
    }
}

/// Job counters. All transitions happen under one lock (see module docs).
#[derive(Debug, Default, Clone)]
pub struct Counters {
    pub accepted: u64,
    pub rejected: u64,
    pub queued: u64,
    pub running: u64,
    pub done: u64,
    /// Frames that never became jobs (garbage, unknown suite/machine).
    pub bad_requests: u64,
    /// Simulated seconds per suite, contention stretch included.
    pub suite_seconds: BTreeMap<String, f64>,
}

struct Daemon {
    registry: Registry<JobEntry>,
    addr: SocketAddr,
    workers: usize,
    admission: Mutex<Admission>,
    admit_cv: Condvar,
    cache: Mutex<ResultCache>,
    counters: Mutex<Counters>,
    pool: WorkerPool,
    shutting_down: AtomicBool,
    seq: AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a client
/// sends `shutdown` and the queue drains.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
}

impl Server {
    /// Bind the listener and stand up the shared state.
    pub fn bind(registry: Registry<JobEntry>, config: ServerConfig) -> Result<Server, SxdError> {
        let listener = TcpListener::bind(&config.addr).map_err(SxdError::io)?;
        let addr = listener.local_addr().map_err(SxdError::io)?;
        let daemon = Arc::new(Daemon {
            registry,
            addr,
            workers: config.workers.max(1),
            admission: Mutex::new(Admission::whole_node(config.machine)),
            admit_cv: Condvar::new(),
            cache: Mutex::new(ResultCache::new(config.cache_cap)),
            counters: Mutex::new(Counters::default()),
            pool: WorkerPool::new(config.workers.max(1)),
            shutting_down: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        Ok(Server { listener, daemon })
    }

    /// Where the daemon is actually listening (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.addr
    }

    /// Accept connections until shutdown, then drain and return.
    pub fn run(self) -> Result<(), SxdError> {
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.daemon.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let id = self.daemon.seq.fetch_add(1, Ordering::SeqCst);
            if let Ok(track) = stream.try_clone() {
                self.daemon.conns.lock().unwrap().push((id, track));
            }
            let d = Arc::clone(&self.daemon);
            handles.push(std::thread::spawn(move || handle_conn(&d, stream, id)));
        }
        for h in handles {
            let _ = h.join();
        }
        // Dropping the daemon drops the worker pool, which drains any
        // still-queued jobs before its threads exit.
        Ok(())
    }
}

fn handle_conn(d: &Daemon, stream: TcpStream, id: u64) {
    let mut writer = stream;
    let mut reader = match writer.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(_) => {
            d.untrack(id);
            return;
        }
    };
    loop {
        match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                let reply = d.handle_frame(&frame);
                if writeln!(writer, "{reply}").is_err() {
                    break;
                }
            }
            Err(e) => {
                // Framing is lost (oversized or non-UTF-8 line): reply
                // with the typed error, then close the connection.
                let _ = writeln!(writer, "{}", e.to_reply());
                break;
            }
        }
    }
    d.untrack(id);
}

impl Daemon {
    fn handle_frame(&self, frame: &str) -> String {
        match Request::parse(frame) {
            Err(e) => {
                self.counters.lock().unwrap().bad_requests += 1;
                e.to_reply()
            }
            Ok(Request::Stats) => self.stats_reply(),
            Ok(Request::Shutdown) => {
                self.initiate_shutdown();
                "{\"ok\":true,\"shutting_down\":true}".into()
            }
            Ok(Request::Submit { suite, machine, params }) => {
                match self.handle_submit(&suite, &machine, &params) {
                    Ok(reply) => reply,
                    Err(e) => e.to_reply(),
                }
            }
        }
    }

    fn handle_submit(
        &self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
    ) -> Result<String, SxdError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SxdError::ShuttingDown);
        }
        let entry = match self.registry.get(suite) {
            Some(e) => e,
            None => {
                self.counters.lock().unwrap().bad_requests += 1;
                return Err(SxdError::UnknownSuite { suite: suite.into() });
            }
        };
        let model = match presets::by_name(machine) {
            Some(m) => m,
            None => {
                self.counters.lock().unwrap().bad_requests += 1;
                return Err(SxdError::UnknownMachine { machine: machine.into() });
            }
        };
        let key = cache_key(suite, &model, params);

        {
            let mut c = self.counters.lock().unwrap();
            c.accepted += 1;
            c.queued += 1;
        }
        if let Some(payload) = self.cache.lock().unwrap().get(key) {
            let mut c = self.counters.lock().unwrap();
            c.queued -= 1;
            c.done += 1;
            return Ok(submit_reply(true, key, &payload));
        }

        let job = JobSpec {
            name: format!("sxd-{}", self.seq.fetch_add(1, Ordering::SeqCst)),
            procs: entry.demand.procs,
            memory_bytes: entry.demand.memory_bytes,
            solo_seconds: entry.demand.solo_seconds,
            bytes_per_cycle_per_proc: entry.demand.bytes_per_cycle_per_proc,
            block: 0,
            after: Vec::new(),
        };
        let stretch = {
            let mut adm = self.admission.lock().unwrap();
            loop {
                match adm.try_admit(&job) {
                    Err(e) => {
                        let mut c = self.counters.lock().unwrap();
                        c.queued -= 1;
                        c.rejected += 1;
                        return Err(SxdError::Rejected { detail: e.to_string() });
                    }
                    Ok(true) => break adm.stretch(),
                    Ok(false) => adm = self.admit_cv.wait(adm).unwrap(),
                }
            }
        };
        {
            let mut c = self.counters.lock().unwrap();
            c.queued -= 1;
            c.running += 1;
        }

        let runner = entry.runner.clone();
        let run_params = params.clone();
        let run_model = model.clone();
        let outcome = self.pool.run(move || {
            catch_unwind(AssertUnwindSafe(|| runner(&run_model, &run_params)))
                .unwrap_or_else(|_| Err("runner panicked".into()))
        });

        self.admission.lock().unwrap().release(&job.name);
        self.admit_cv.notify_all();

        match outcome {
            Err(detail) => {
                let mut c = self.counters.lock().unwrap();
                c.running -= 1;
                c.rejected += 1;
                Err(SxdError::RunFailed { detail })
            }
            Ok(artifacts) => {
                let sim_seconds = entry.demand.solo_seconds * stretch;
                {
                    let mut c = self.counters.lock().unwrap();
                    c.running -= 1;
                    c.done += 1;
                    *c.suite_seconds.entry(suite.to_ascii_lowercase()).or_insert(0.0) +=
                        sim_seconds;
                }
                let payload =
                    render_payload(suite, machine, params, sim_seconds, stretch, &artifacts);
                self.cache.lock().unwrap().insert(key, payload.clone());
                Ok(submit_reply(false, key, &payload))
            }
        }
    }

    fn stats_reply(&self) -> String {
        let (hits, misses, entries, cap) = {
            let c = self.cache.lock().unwrap();
            (c.hits(), c.misses(), c.len(), c.cap())
        };
        let snap = self.counters.lock().unwrap().clone();
        let suite_seconds =
            Json::Obj(snap.suite_seconds.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect());
        format!(
            "{{\"ok\":true,\"stats\":{{\"accepted\":{},\"rejected\":{},\"queued\":{},\
             \"running\":{},\"done\":{},\"bad_requests\":{},\"queue_depth\":{},\
             \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"entries\":{entries},\
             \"cap\":{cap}}},\"suite_seconds\":{},\"workers\":{},\"shutting_down\":{}}}}}",
            snap.accepted,
            snap.rejected,
            snap.queued,
            snap.running,
            snap.done,
            snap.bad_requests,
            snap.queued,
            suite_seconds,
            self.workers,
            self.shutting_down.load(Ordering::SeqCst),
        )
    }

    /// Flip the drain flag, unblock every parked reader, poke the accept
    /// loop. Idempotent.
    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Half-close tracked connections: blocked reads return EOF while
        // replies still in flight can be written out.
        for (_, s) in self.conns.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
        // Unblock the accept loop so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn untrack(&self, id: u64) {
        let mut conns = self.conns.lock().unwrap();
        if let Some(pos) = conns.iter().position(|(i, _)| *i == id) {
            conns.remove(pos);
        }
    }
}

/// Serialize one run result. Deterministic: key order is fixed, floats use
/// the shortest round-trip form, artifacts serialize themselves. Cache
/// hits replay these exact bytes.
fn render_payload(
    suite: &str,
    machine: &str,
    params: &BTreeMap<String, String>,
    sim_seconds: f64,
    stretch: f64,
    artifacts: &[Artifact],
) -> String {
    let params_json =
        Json::Obj(params.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
            .to_string();
    let arts: Vec<String> = artifacts.iter().map(Artifact::to_json).collect();
    let rendered: String = artifacts.iter().map(Artifact::render).collect();
    format!(
        "{{\"suite\":\"{}\",\"machine\":\"{}\",\"params\":{},\"sim_seconds\":{},\
         \"stretch\":{},\"artifacts\":[{}],\"rendered\":\"{}\"}}",
        json_escape(suite),
        json_escape(machine),
        params_json,
        json_f64(sim_seconds),
        json_f64(stretch),
        arts.join(","),
        json_escape(&rendered)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_registry() -> Registry<JobEntry> {
        let mut r = Registry::new();
        r.register(
            "toy",
            JobEntry::new(Demand::light(2.0), "toy scalar", |_m, p| {
                let n = p.get("n").map(String::as_str).unwrap_or("1");
                Ok(vec![Artifact::Scalar {
                    title: format!("toy n={n}"),
                    value: 42.0,
                    unit: "mflops".into(),
                }])
            }),
        );
        r
    }

    #[test]
    fn payload_is_deterministic_for_equal_inputs() {
        let mut p = BTreeMap::new();
        p.insert("n".to_string(), "4".to_string());
        let a = vec![Artifact::Scalar { title: "t".into(), value: 1.5, unit: "u".into() }];
        let one = render_payload("toy", "sx4-9.2", &p, 2.25, 1.125, &a);
        let two = render_payload("toy", "sx4-9.2", &p, 2.25, 1.125, &a);
        assert_eq!(one, two);
        Json::parse(&one).expect("payload must be valid JSON");
    }

    #[test]
    fn submit_path_counts_and_caches_without_tcp() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let params = BTreeMap::new();
        let first = d.handle_submit("toy", "sx4", &params).unwrap();
        let second = d.handle_submit("TOY", "sx4-9.2", &params).unwrap();
        assert!(first.contains("\"cached\":false"));
        assert!(second.contains("\"cached\":true"));
        // Byte-identical modulo the cached flag.
        assert_eq!(second, first.replace("\"cached\":false", "\"cached\":true"));
        let c = d.counters.lock().unwrap();
        assert_eq!((c.accepted, c.done, c.rejected, c.queued, c.running), (2, 2, 0, 0, 0));
        assert!(*c.suite_seconds.get("toy").unwrap() > 0.0);
    }

    #[test]
    fn unknown_suite_and_machine_are_typed_not_accepted() {
        let server = Server::bind(toy_registry(), ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let params = BTreeMap::new();
        let e1 = d.handle_submit("nope", "sx4", &params).unwrap_err();
        assert_eq!(e1.kind(), "unknown_suite");
        let e2 = d.handle_submit("toy", "cray-2", &params).unwrap_err();
        assert_eq!(e2.kind(), "unknown_machine");
        let c = d.counters.lock().unwrap();
        assert_eq!(c.accepted, 0);
        assert_eq!(c.bad_requests, 2);
    }

    #[test]
    fn infeasible_demand_is_rejected_with_counters_reconciled() {
        let mut r = toy_registry();
        r.register(
            "wide",
            JobEntry::new(
                Demand {
                    procs: 4096,
                    memory_bytes: 1 << 20,
                    solo_seconds: 1.0,
                    bytes_per_cycle_per_proc: 8.0,
                },
                "asks for more processors than the node has",
                |_m, _p| Ok(vec![]),
            ),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let d = &server.daemon;
        let err = d.handle_submit("wide", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(err.kind(), "rejected");
        let c = d.counters.lock().unwrap();
        assert_eq!((c.accepted, c.rejected, c.done, c.queued, c.running), (1, 1, 0, 0, 0));
    }

    #[test]
    fn runner_panic_becomes_run_failed_not_a_crash() {
        let mut r = Registry::new();
        r.register(
            "boom",
            JobEntry::new(
                Demand::light(1.0),
                "always panics",
                |_m, _p| -> Result<Vec<Artifact>, String> { panic!("kaboom") },
            ),
        );
        let server = Server::bind(r, ServerConfig::default()).unwrap();
        let err = server.daemon.handle_submit("boom", "sx4", &BTreeMap::new()).unwrap_err();
        assert_eq!(err.kind(), "run_failed");
        let c = server.daemon.counters.lock().unwrap();
        assert_eq!((c.accepted, c.rejected, c.running), (1, 1, 0));
    }
}
