//! # sxd — the benchmark-serving daemon
//!
//! The paper's SX-4 was not a workstation: it was a shared, batch-
//! scheduled machine front-ended by NQS (paper §2.6.3), taking jobs from
//! many users and multiplexing them onto Resource Blocks of a real-memory
//! node. This crate reproduces that *service* shape around the simulated
//! suite: a long-running daemon accepting benchmark jobs over a newline-
//! delimited-JSON TCP protocol, admitting them through the same Resource-
//! Block gate as [`superux::Admission`], executing them on a bounded
//! worker pool, and answering repeats from a content-addressed result
//! cache.
//!
//! - [`proto`] — frame reading with a hard cap, fallible request parsing,
//!   the FNV-1a cache key over (code version, suite, machine model bytes,
//!   parameter set);
//! - [`cache`] — the LRU result cache with hit/miss accounting;
//! - [`journal`] — the durable write-ahead result journal (checksummed
//!   records, torn-tail truncation, snapshot compaction) and the drain-
//!   checkpoint restart specs, the daemon's SUPER-UX checkpoint/restart
//!   analogue (paper §2.6.2);
//! - [`faultpoint`] — named crash/IO-error injection points (behind the
//!   `faults` feature) that the kill-and-restart tests arm one at a time;
//! - [`server`] — the daemon: accept loop, bounded admission wait,
//!   contention-stretched simulated seconds, single-flighted identical
//!   submits, always-consistent counters, and the `METRICS` verb serving
//!   per-stage latency histograms and level gauges (the daemon's PROGINF/
//!   FTRACE analogue, backed by `ncar_suite::metrics`);
//! - [`client`] — typed client, plus the `flood` load generator that
//!   reproduces the ensemble regime of Table 6 over live connections;
//! - [`cluster`] — the multi-node fabric (the paper's IXS crossbar, §1):
//!   N shard daemons behind a rendezvous-hash router with cluster-wide
//!   merged observability and keyspace hand-off on member drain;
//! - [`error`] — [`SxdError`]: every failure as a value; the serving path
//!   never panics on client input.

pub mod cache;
pub mod client;
pub mod cluster;
pub mod error;
pub mod faultpoint;
pub mod journal;
pub mod proto;
pub mod server;

pub use cache::ResultCache;
pub use client::{flood, Client, FloodConfig, FloodOutcome, Submission};
pub use cluster::{Cluster, ClusterConfig, Ring, Router, RouterMember};
pub use error::SxdError;
pub use journal::{Journal, RestartSpec};
pub use proto::{cache_key, read_frame, Request, CODE_VERSION, MAX_REPLY_FRAME, MAX_REQUEST_FRAME};
pub use server::{Counters, Demand, JobEntry, RunFn, Server, ServerConfig, SuiteStat};
