//! Named fault-injection points for the crash-safety tests.
//!
//! The SUPER-UX checkpoint/restart story (paper §2.6.2) is only worth
//! modeling if the daemon's own durability survives a crash at *any*
//! instant, not just between requests. This module plants named points in
//! the journal-write, compaction and drain paths; a test arms exactly one
//! of them through the environment and the daemon either aborts (as
//! `kill -9` would) or sees a forced IO error when execution reaches it.
//!
//! Arming: set `SXD_FAULTPOINT=<name>` (crash) or `SXD_FAULTPOINT=<name>:io`
//! (forced `std::io::Error`) before the daemon process starts. The
//! variable is read once and cached; fault points are meaningful per
//! process, matching how the kill-and-restart test spawns one daemon per
//! armed point.
//!
//! Everything here compiles to a no-op unless the crate is built with the
//! `faults` feature, so production binaries carry no injection machinery —
//! only the registry of names ([`FAULT_POINTS`]) stays available for docs
//! and test enumeration.

/// Every registered fault point, in pipeline order. The kill-and-restart
/// test iterates this list; keep it in sync with the `check`/`torn` call
/// sites.
pub const FAULT_POINTS: &[&str] = &[
    // Crash or IO-error before a result record reaches the journal.
    "journal.append",
    // Crash after half the record's bytes are written (a torn tail).
    "journal.append.torn",
    // Crash midway through writing the compaction snapshot temp file.
    "journal.compact.write",
    // Crash after the snapshot is complete but before the rename commits.
    "journal.compact.rename",
    // Crash or IO-error while persisting drain-checkpoint restart specs.
    "drain.persist",
];

/// What an armed fault point does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort the process on the spot (the `kill -9` model).
    Crash,
    /// Surface a forced `std::io::Error` to the caller.
    IoError,
}

#[cfg(feature = "faults")]
mod armed {
    use super::Fault;
    use std::sync::OnceLock;

    static ARMED: OnceLock<Option<(String, Fault)>> = OnceLock::new();

    pub fn armed(name: &str) -> Option<Fault> {
        let slot = ARMED.get_or_init(|| {
            let spec = std::env::var("SXD_FAULTPOINT").ok()?;
            let (point, fault) = match spec.split_once(':') {
                Some((p, "io")) => (p, Fault::IoError),
                Some((p, _)) => (p, Fault::Crash),
                None => (spec.as_str(), Fault::Crash),
            };
            Some((point.to_string(), fault))
        });
        match slot {
            Some((point, fault)) if point == name => Some(*fault),
            _ => None,
        }
    }
}

/// Is the named point armed in this process, and to do what?
#[cfg(feature = "faults")]
pub fn armed(name: &str) -> Option<Fault> {
    armed::armed(name)
}

/// Is the named point armed in this process, and to do what?
#[cfg(not(feature = "faults"))]
pub fn armed(_name: &str) -> Option<Fault> {
    None
}

/// Execute the named fault point: abort if armed to crash, return a typed
/// IO error if armed to fail, fall straight through otherwise (and always,
/// when the `faults` feature is off).
pub fn check(name: &str) -> std::io::Result<()> {
    match armed(name) {
        Some(Fault::Crash) => std::process::abort(),
        Some(Fault::IoError) => Err(std::io::Error::other(format!("fault injected at {name}"))),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for p in FAULT_POINTS {
            assert!(seen.insert(*p), "duplicate fault point {p}");
        }
        assert!(FAULT_POINTS.contains(&"journal.append"));
        assert!(FAULT_POINTS.contains(&"drain.persist"));
    }

    #[test]
    fn unarmed_points_fall_through() {
        // Whatever the feature set, a point that is not armed (the test
        // runner never sets SXD_FAULTPOINT) must be a clean no-op.
        assert_eq!(armed("journal.append"), None);
        assert!(check("journal.append").is_ok());
        assert!(check("not.a.point").is_ok());
    }
}
