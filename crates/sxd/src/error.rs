//! [`SxdError`]: every way a request, frame or job can fail, as a value.
//!
//! The daemon multiplexes many users onto one simulated node, like the
//! NQS subsystem it models (paper §2.6.3) — one client's garbage must
//! never abort another client's job, so nothing in the serving path
//! panics on input. Each variant maps to a stable snake_case `kind` that
//! goes over the wire in error replies and comes back typed on the client.

use ncar_suite::report::json_escape;

/// Typed serving-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SxdError {
    /// Socket-level failure (connect, read, write, unexpected close).
    Io { detail: String },
    /// A request line exceeded the frame cap before its newline arrived.
    FrameTooLong { len: usize, max: usize },
    /// The frame was not a valid JSON document (or not valid UTF-8).
    BadJson { detail: String },
    /// Valid JSON, but not a valid request (missing op/suite, bad types).
    BadRequest { detail: String },
    /// The requested suite is not in the server's registry.
    UnknownSuite { suite: String },
    /// The requested machine preset does not exist.
    UnknownMachine { machine: String },
    /// NQS admission rejected the job (can never fit its Resource Block).
    Rejected { detail: String },
    /// The runner failed (or panicked — caught, never unwound through the
    /// daemon).
    RunFailed { detail: String },
    /// The daemon is draining and refuses new work.
    ShuttingDown,
    /// A drain deadline expired while this job was still pending; its
    /// remaining work was checkpointed to a restart spec and will be
    /// re-admitted on the next boot (the SUPER-UX checkpoint/restart
    /// model, paper §2.6.2).
    Checkpointed { detail: String },
    /// A cluster router could not reach the shard member that owns the
    /// request's keyspace (connect refused, member mid-crash, or the
    /// member has left the ring).
    ShardUnavailable { member: String, detail: String },
    /// A bounded connect/retry loop exhausted its attempts. Terminal: the
    /// caller has already waited through the full backoff schedule.
    Retries { attempts: usize, detail: String },
    /// Client-side view of an error reply whose kind the client does not
    /// interpret further.
    Remote { kind: String, detail: String },
}

impl SxdError {
    pub fn io(e: std::io::Error) -> SxdError {
        SxdError::Io { detail: e.to_string() }
    }

    /// Stable wire identifier for the error class.
    pub fn kind(&self) -> &str {
        match self {
            SxdError::Io { .. } => "io",
            SxdError::FrameTooLong { .. } => "frame_too_long",
            SxdError::BadJson { .. } => "bad_json",
            SxdError::BadRequest { .. } => "bad_request",
            SxdError::UnknownSuite { .. } => "unknown_suite",
            SxdError::UnknownMachine { .. } => "unknown_machine",
            SxdError::Rejected { .. } => "rejected",
            SxdError::RunFailed { .. } => "run_failed",
            SxdError::ShuttingDown => "shutting_down",
            SxdError::Checkpointed { .. } => "checkpointed",
            SxdError::ShardUnavailable { .. } => "shard_unavailable",
            SxdError::Retries { .. } => "retries",
            SxdError::Remote { kind, .. } => kind,
        }
    }

    /// The human detail (what Display prints after the kind).
    pub fn detail(&self) -> String {
        match self {
            SxdError::Io { detail }
            | SxdError::BadJson { detail }
            | SxdError::BadRequest { detail }
            | SxdError::Rejected { detail }
            | SxdError::RunFailed { detail }
            | SxdError::Checkpointed { detail }
            | SxdError::Remote { detail, .. } => detail.clone(),
            SxdError::FrameTooLong { len, max } => {
                format!("frame of {len}+ bytes exceeds the {max}-byte cap")
            }
            SxdError::ShardUnavailable { member, detail } => {
                format!("shard member {member} is unreachable: {detail}")
            }
            SxdError::Retries { attempts, detail } => {
                format!("gave up after {attempts} connect attempts: {detail}")
            }
            SxdError::UnknownSuite { suite } => format!("no suite named {suite:?} is registered"),
            SxdError::UnknownMachine { machine } => {
                format!("no machine preset named {machine:?}")
            }
            SxdError::ShuttingDown => "daemon is draining; new jobs are refused".into(),
        }
    }

    /// The one-line error reply the server sends for this failure.
    pub fn to_reply(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
            json_escape(self.kind()),
            json_escape(&self.detail())
        )
    }
}

impl std::fmt::Display for SxdError {
    /// `kind: detail`, for every variant.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for SxdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ncar_suite::Json;

    #[test]
    fn replies_are_valid_json_with_kind_and_detail() {
        let errs = [
            SxdError::FrameTooLong { len: 70000, max: 65536 },
            SxdError::BadJson { detail: "bad JSON at byte 0: expected a value".into() },
            SxdError::UnknownSuite { suite: "nope\"quote".into() },
            SxdError::ShuttingDown,
        ];
        for e in errs {
            let reply = e.to_reply();
            let v = Json::parse(&reply).expect("error reply must parse");
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
            let kind = v.get("error").unwrap().get("kind").unwrap().as_str().unwrap();
            assert_eq!(kind, e.kind());
            assert!(v.get("error").unwrap().get("detail").is_some());
        }
    }

    #[test]
    fn display_is_kind_colon_detail() {
        let e = SxdError::UnknownMachine { machine: "cray-2".into() };
        assert_eq!(e.to_string(), "unknown_machine: no machine preset named \"cray-2\"");
    }
}
