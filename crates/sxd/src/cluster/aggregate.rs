//! Merging member STATS/METRICS replies into one cluster-wide view.
//!
//! RZBENCH's lesson (arXiv 0712.3389) applies verbatim: a cross-node
//! benchmark matrix is only trustworthy when one harness aggregates all
//! members. The merged document keeps the exact shape of a single
//! member's reply — counters sum, occupancy gauges sum while ratio gauges
//! re-weight by served traffic, latency histograms merge bucket-wise (see
//! `ncar_suite::metrics::HistogramSnapshot::merge`),
//! per-suite rows combine with run-weighted average stretch — so every
//! existing consumer (`flood`, `ncar-bench metrics`, the CI smoke greps)
//! reads a router exactly as it reads a daemon.
//!
//! The reconciliation guarantee survives the merge because it is linear:
//! each member's METRICS snapshot satisfies
//! `accepted == done + rejected + queued + running` and
//! `latency.job.count == done + rejected` *internally*, so the sums
//! satisfy both identities too, even though the member snapshots were
//! taken at different instants.

use std::collections::BTreeMap;

use ncar_suite::metrics::HistogramSnapshot;
use ncar_suite::Json;

/// Sum one top-level counter across member docs (absent fields count 0).
fn sum_u64(members: &[Json], key: &str) -> u64 {
    members.iter().filter_map(|m| m.get(key).and_then(Json::as_u64)).sum()
}

fn sum_nested_u64(members: &[Json], outer: &str, key: &str) -> u64 {
    members
        .iter()
        .filter_map(|m| m.get(outer).and_then(|o| o.get(key)).and_then(Json::as_u64))
        .sum()
}

fn any_true(members: &[Json], key: &str) -> bool {
    members.iter().any(|m| m.get(key).and_then(Json::as_bool) == Some(true))
}

/// Merge member `stats` documents into one cluster `stats` document with
/// the same fields (plus `members`, the count merged over). Counters and
/// cache tallies sum; `draining`/`shutting_down` are true when any member
/// says so; `journal` sums across the durable members, or is `null` when
/// no member has one.
pub fn merge_stats(members: &[Json]) -> String {
    let mut suite_seconds: BTreeMap<String, f64> = BTreeMap::new();
    for m in members {
        if let Some(obj) = m.get("suite_seconds").and_then(Json::as_obj) {
            for (k, v) in obj {
                if let Some(x) = v.as_f64() {
                    *suite_seconds.entry(k.clone()).or_insert(0.0) += x;
                }
            }
        }
    }
    let suite_json =
        Json::Obj(suite_seconds.into_iter().map(|(k, v)| (k, Json::Num(v))).collect()).to_string();

    let journals: Vec<&Json> = members
        .iter()
        .filter_map(|m| m.get("journal"))
        .filter(|j| !matches!(j, Json::Null))
        .collect();
    let journal = if journals.is_empty() {
        "null".to_string()
    } else {
        let jn = |k: &str| -> u64 {
            journals.iter().filter_map(|j| j.get(k).and_then(Json::as_u64)).sum()
        };
        format!(
            "{{\"appended\":{},\"replayed\":{},\"compactions\":{},\
             \"truncated_bytes\":{},\"io_errors\":{}}}",
            jn("appended"),
            jn("replayed"),
            jn("compactions"),
            jn("truncated_bytes"),
            jn("io_errors"),
        )
    };

    let cn = |k: &str| sum_nested_u64(members, "cache", k);
    let xn = |k: &str| sum_nested_u64(members, "conns", k);
    format!(
        "{{\"accepted\":{},\"rejected\":{},\"queued\":{},\
         \"running\":{},\"done\":{},\"bad_requests\":{},\"coalesced\":{},\
         \"checkpointed\":{},\"absorbed\":{},\"fastpath_hits\":{},\
         \"queue_depth\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\
         \"evictions\":{},\"entries\":{},\"cap\":{}}},\
         \"conns\":{{\"open\":{},\"accepted\":{},\"idle_closed\":{}}},\
         \"suite_seconds\":{},\"workers\":{},\"journal\":{},\
         \"draining\":{},\"shutting_down\":{},\"members\":{}}}",
        sum_u64(members, "accepted"),
        sum_u64(members, "rejected"),
        sum_u64(members, "queued"),
        sum_u64(members, "running"),
        sum_u64(members, "done"),
        sum_u64(members, "bad_requests"),
        sum_u64(members, "coalesced"),
        sum_u64(members, "checkpointed"),
        sum_u64(members, "absorbed"),
        sum_u64(members, "fastpath_hits"),
        sum_u64(members, "queue_depth"),
        cn("hits"),
        cn("misses"),
        cn("evictions"),
        cn("entries"),
        cn("cap"),
        xn("open"),
        xn("accepted"),
        xn("idle_closed"),
        suite_json,
        sum_u64(members, "workers"),
        journal,
        any_true(members, "draining"),
        any_true(members, "shutting_down"),
        members.len(),
    )
}

/// Merge the latency histogram objects of every member. Buckets add
/// exactly (the property `core/tests/metrics_merge.rs` pins: merged
/// percentiles equal percentiles of the concatenated stream); a member
/// whose histogram is missing or shaped differently is skipped rather
/// than poisoning the merge.
fn merge_latency(members: &[Json]) -> Json {
    let mut merged: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for m in members {
        let Some(obj) = m.get("latency").and_then(Json::as_obj) else { continue };
        for (name, doc) in obj {
            let Some(snap) = HistogramSnapshot::from_json(doc) else { continue };
            match merged.get_mut(name) {
                None => {
                    merged.insert(name.clone(), snap);
                }
                Some(acc) => {
                    acc.merge(&snap);
                }
            }
        }
    }
    Json::Obj(merged.into_iter().map(|(k, s)| (k, s.to_json())).collect())
}

/// Merge the per-suite breakdowns: runs and simulated seconds sum, the
/// average stretch re-weights by each member's run count.
fn merge_suites(members: &[Json]) -> Json {
    #[derive(Default)]
    struct Row {
        runs: u64,
        sim_seconds: f64,
        stretch_weighted: f64,
    }
    let mut rows: BTreeMap<String, Row> = BTreeMap::new();
    for m in members {
        let Some(obj) = m.get("suites").and_then(Json::as_obj) else { continue };
        for (name, s) in obj {
            let runs = s.get("runs").and_then(Json::as_u64).unwrap_or(0);
            let row = rows.entry(name.clone()).or_default();
            row.runs += runs;
            row.sim_seconds += s.get("sim_seconds").and_then(Json::as_f64).unwrap_or(0.0);
            row.stretch_weighted +=
                s.get("avg_stretch").and_then(Json::as_f64).unwrap_or(0.0) * runs as f64;
        }
    }
    Json::Obj(
        rows.into_iter()
            .map(|(name, r)| {
                let avg = if r.runs > 0 { r.stretch_weighted / r.runs as f64 } else { 0.0 };
                (
                    name,
                    Json::Obj(vec![
                        ("runs".into(), Json::Num(r.runs as f64)),
                        ("sim_seconds".into(), Json::Num(r.sim_seconds)),
                        ("avg_stretch".into(), Json::Num(avg)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Gauges that are ratios (instantaneous rates), not occupancy counts.
/// Summing them across members is meaningless — a cluster of N equally
/// loaded members would report N× the stretch any one of them sees — so
/// they merge as run-weighted means instead (see [`merge_metrics`]).
const RATIO_GAUGES: &[&str] = &["admission_stretch"];

/// Merge full member `metrics` documents into one cluster `metrics`
/// document: merged stats, merged gauges, merged latency histograms,
/// merged suite breakdown. Occupancy gauges (queue depths, busy workers,
/// cache entries) sum; ratio gauges ([`RATIO_GAUGES`]) merge as the mean
/// weighted by each member's completed-job count, falling back to a plain
/// mean when no member has completed anything. The cluster is
/// `reconciled` when every member reported itself reconciled *and* the
/// merged `job` histogram count equals the merged `done + rejected` — the
/// cross-member restatement of the single-node guarantee.
pub fn merge_metrics(members: &[Json]) -> String {
    let stats_docs: Vec<Json> = members.iter().filter_map(|m| m.get("stats").cloned()).collect();
    let stats = merge_stats(&stats_docs);

    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    // Ratio-gauge accumulator: (run-weighted sum, weight, plain sum, count).
    let mut ratios: BTreeMap<String, (f64, f64, f64, f64)> = BTreeMap::new();
    for m in members {
        let runs =
            m.get("stats").and_then(|s| s.get("done")).and_then(Json::as_u64).unwrap_or(0) as f64;
        if let Some(obj) = m.get("gauges").and_then(Json::as_obj) {
            for (k, v) in obj {
                let x = v.as_f64().unwrap_or(0.0);
                if RATIO_GAUGES.contains(&k.as_str()) {
                    let acc = ratios.entry(k.clone()).or_insert((0.0, 0.0, 0.0, 0.0));
                    acc.0 += x * runs;
                    acc.1 += runs;
                    acc.2 += x;
                    acc.3 += 1.0;
                } else {
                    *gauges.entry(k.clone()).or_insert(0.0) += x;
                }
            }
        }
    }
    for (k, (weighted, weight, plain, count)) in ratios {
        let mean = if weight > 0.0 {
            weighted / weight
        } else if count > 0.0 {
            plain / count
        } else {
            0.0
        };
        gauges.insert(k, mean);
    }
    let gauges = Json::Obj(gauges.into_iter().map(|(k, v)| (k, Json::Num(v))).collect());

    let latency = merge_latency(members);
    let suites = merge_suites(members);

    let each_reconciled = !members.is_empty()
        && members.iter().all(|m| m.get("reconciled").and_then(Json::as_bool) == Some(true));
    let job_count =
        latency.get("job").and_then(|h| h.get("count")).and_then(Json::as_u64).unwrap_or(0);
    let done = sum_nested_u64(members, "stats", "done");
    let rejected = sum_nested_u64(members, "stats", "rejected");
    let reconciled = each_reconciled && job_count == done + rejected;

    format!(
        "{{\"stats\":{stats},\"gauges\":{gauges},\"latency\":{latency},\
         \"suites\":{suites},\"reconciled\":{reconciled}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_stats(accepted: u64, done: u64, queued: u64, hits: u64) -> Json {
        Json::parse(&format!(
            "{{\"accepted\":{accepted},\"rejected\":0,\"queued\":{queued},\"running\":0,\
             \"done\":{done},\"bad_requests\":1,\"coalesced\":2,\"checkpointed\":0,\
             \"absorbed\":0,\"fastpath_hits\":{hits},\"queue_depth\":{queued},\
             \"cache\":{{\"hits\":{hits},\"misses\":3,\"evictions\":0,\"entries\":4,\"cap\":256}},\
             \"conns\":{{\"open\":1,\"accepted\":{accepted},\"idle_closed\":2}},\
             \"suite_seconds\":{{\"fig5\":1.5}},\"workers\":4,\
             \"journal\":{{\"appended\":5,\"replayed\":0,\"compactions\":1,\
             \"truncated_bytes\":0,\"io_errors\":0}},\
             \"draining\":false,\"shutting_down\":false}}"
        ))
        .unwrap()
    }

    #[test]
    fn merged_stats_sum_counters_and_keep_the_member_shape() {
        let merged = merge_stats(&[member_stats(5, 3, 2, 7), member_stats(10, 10, 0, 1)]);
        let doc = Json::parse(&merged).expect("merged stats must be valid JSON");
        let n = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(n("accepted"), 15);
        assert_eq!(n("done"), 13);
        assert_eq!(n("queued"), 2);
        assert_eq!(n("bad_requests"), 2);
        assert_eq!(n("fastpath_hits"), 8);
        assert_eq!(n("workers"), 8);
        assert_eq!(n("members"), 2);
        assert_eq!(doc.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(8));
        let conns = doc.get("conns").unwrap();
        assert_eq!(conns.get("open").unwrap().as_u64(), Some(2));
        assert_eq!(conns.get("accepted").unwrap().as_u64(), Some(15));
        assert_eq!(conns.get("idle_closed").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("suite_seconds").unwrap().get("fig5").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("journal").unwrap().get("appended").unwrap().as_u64(), Some(10));
        // Each member satisfies the invariant, so the sum does too.
        assert_eq!(n("accepted"), n("done") + n("rejected") + n("queued") + n("running"));
    }

    #[test]
    fn memory_only_members_merge_to_a_null_journal() {
        let mut a = member_stats(1, 1, 0, 0);
        let mut b = member_stats(1, 1, 0, 0);
        for m in [&mut a, &mut b] {
            if let Json::Obj(fields) = m {
                for (k, v) in fields.iter_mut() {
                    if k == "journal" {
                        *v = Json::Null;
                    }
                }
            }
        }
        let doc = Json::parse(&merge_stats(&[a, b])).unwrap();
        assert!(matches!(doc.get("journal"), Some(Json::Null)));
    }

    #[test]
    fn merged_metrics_reconcile_and_reweight_stretch() {
        let member = |done: u64, runs: u64, stretch: f64| {
            Json::parse(&format!(
                "{{\"stats\":{{\"accepted\":{done},\"rejected\":0,\"queued\":0,\"running\":0,\
                 \"done\":{done},\"bad_requests\":0,\"coalesced\":0,\"checkpointed\":0,\
                 \"absorbed\":0,\"queue_depth\":0,\
                 \"cache\":{{\"hits\":0,\"misses\":0,\"evictions\":0,\"entries\":0,\"cap\":8}},\
                 \"suite_seconds\":{{}},\"workers\":1,\"journal\":null,\
                 \"draining\":false,\"shutting_down\":false}},\
                 \"gauges\":{{\"pool_queue_depth\":1.0}},\
                 \"latency\":{{\"job\":{{\"le\":[1.0,2.0],\"n\":[{done},0,0],\
                 \"count\":{done},\"sum\":0.5}}}},\
                 \"suites\":{{\"toy\":{{\"runs\":{runs},\"sim_seconds\":1.0,\
                 \"avg_stretch\":{stretch}}}}},\
                 \"reconciled\":true}}"
            ))
            .unwrap()
        };
        let merged = merge_metrics(&[member(2, 2, 1.0), member(6, 6, 2.0)]);
        let doc = Json::parse(&merged).expect("merged metrics must be valid JSON");
        assert_eq!(doc.get("reconciled").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("stats").unwrap().get("done").unwrap().as_u64(), Some(8));
        let job = doc.get("latency").unwrap().get("job").unwrap();
        assert_eq!(job.get("count").unwrap().as_u64(), Some(8));
        assert_eq!(doc.get("gauges").unwrap().get("pool_queue_depth").unwrap().as_f64(), Some(2.0));
        let toy = doc.get("suites").unwrap().get("toy").unwrap();
        assert_eq!(toy.get("runs").unwrap().as_u64(), Some(8));
        // (2·1.0 + 6·2.0) / 8 = 1.75 — run-weighted, not a plain average.
        assert_eq!(toy.get("avg_stretch").unwrap().as_f64(), Some(1.75));
    }

    #[test]
    fn ratio_gauges_merge_as_run_weighted_means_not_sums() {
        let member = |done: u64, stretch: f64, depth: f64| {
            Json::parse(&format!(
                "{{\"stats\":{{\"accepted\":{done},\"rejected\":0,\"queued\":0,\"running\":0,\
                 \"done\":{done},\
                 \"cache\":{{\"hits\":0,\"misses\":0,\"evictions\":0,\"entries\":0,\"cap\":8}},\
                 \"suite_seconds\":{{}},\"workers\":1,\"journal\":null,\
                 \"draining\":false,\"shutting_down\":false}},\
                 \"gauges\":{{\"admission_stretch\":{stretch},\"pool_queue_depth\":{depth}}},\
                 \"latency\":{{}},\"suites\":{{}},\"reconciled\":true}}"
            ))
            .unwrap()
        };
        // A busy member at stretch 2.0 and a lightly loaded one at 1.0:
        // the cluster stretch is (6·2.0 + 2·1.0) / 8 = 1.75, never the
        // 3.0 a plain sum would claim; occupancy gauges still sum.
        let doc = Json::parse(&merge_metrics(&[member(6, 2.0, 3.0), member(2, 1.0, 1.0)])).unwrap();
        let g = |k: &str| doc.get("gauges").unwrap().get(k).unwrap().as_f64().unwrap();
        assert_eq!(g("admission_stretch"), 1.75);
        assert_eq!(g("pool_queue_depth"), 4.0);

        // Idle members (zero completed jobs) fall back to the plain mean.
        let doc = Json::parse(&merge_metrics(&[member(0, 2.0, 0.0), member(0, 1.0, 0.0)])).unwrap();
        let stretch =
            doc.get("gauges").unwrap().get("admission_stretch").unwrap().as_f64().unwrap();
        assert_eq!(stretch, 1.5);
    }

    #[test]
    fn a_lying_member_breaks_cluster_reconciliation() {
        let bad = Json::parse(
            "{\"stats\":{\"accepted\":1,\"rejected\":0,\"queued\":0,\"running\":0,\"done\":1,\
             \"cache\":{\"hits\":0,\"misses\":0,\"evictions\":0,\"entries\":0,\"cap\":8},\
             \"suite_seconds\":{},\"workers\":1,\"journal\":null,\
             \"draining\":false,\"shutting_down\":false},\
             \"gauges\":{},\"latency\":{\"job\":{\"le\":[1.0],\"n\":[9,0],\"count\":9,\"sum\":0.0}},\
             \"suites\":{},\"reconciled\":false}",
        )
        .unwrap();
        let doc = Json::parse(&merge_metrics(&[bad])).unwrap();
        assert_eq!(doc.get("reconciled").unwrap().as_bool(), Some(false));
    }
}
