//! Multi-node sxd: a shard fabric behind one protocol endpoint.
//!
//! The paper's SX-4 scales past one node over the IXS inter-node crossbar
//! (§1, 8 GB/s per node); this module is the daemon's version of that
//! move. A [`Cluster`] is N member daemons — each a full [`Server`] with
//! its own NQS admission gate, worker pool, result cache and journal —
//! plus a [`Router`] front end speaking the identical wire protocol:
//!
//! ```text
//!                         ┌──────────┐
//!   clients ── NDJSON ──► │  router  │  rendezvous ring over cache keys
//!                         └─┬──┬──┬──┘
//!                     ┌─────┘  │  └─────┐
//!                ┌────▼───┐┌───▼────┐┌──▼─────┐
//!                │shard-0 ││shard-1 ││shard-2 │   each: admission, pool,
//!                │ [sxd]  ││ [sxd]  ││ [sxd]  │   cache, journal
//!                └────────┘└────────┘└────────┘
//! ```
//!
//! - [`ring`] — rendezvous placement: key → member, minimal disruption on
//!   membership change;
//! - [`router`] — the forwarding front end, fan-out verbs, and the drain
//!   hand-off that moves a leaving member's durable keyspace to its
//!   successors;
//! - [`aggregate`] — merging member STATS/METRICS into one cluster view
//!   that preserves the reconciliation invariant.
//!
//! [`spawn`] stands the whole fabric up in one process tree (the
//! `ncar-bench serve --cluster N` shape): member listeners on ephemeral
//! ports, the router on the public address.

pub mod aggregate;
pub mod ring;
pub mod router;

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;

use ncar_suite::Registry;

pub use ring::Ring;
pub use router::{Router, RouterMember};

use crate::error::SxdError;
use crate::server::{JobEntry, Server, ServerConfig};

/// How to stand up a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard member count (at least 1).
    pub shards: usize,
    /// Router bind address (port 0 picks an ephemeral port). Members
    /// always bind ephemeral loopback ports of their own.
    pub addr: String,
    /// Root state directory; member `i` journals under `<root>/shard-i`.
    /// `None` runs every member memory-only (no hand-off on drain).
    pub state_dir: Option<PathBuf>,
    /// Template for each member daemon (its `addr` and `state_dir` are
    /// overridden per member).
    pub server: ServerConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 3,
            addr: "127.0.0.1:0".into(),
            state_dir: None,
            server: ServerConfig::default(),
        }
    }
}

/// A running cluster: the router thread plus its member threads (owned by
/// the router for drain hand-off).
pub struct Cluster {
    addr: SocketAddr,
    member_addrs: Vec<SocketAddr>,
    router: JoinHandle<Result<(), SxdError>>,
}

impl Cluster {
    /// The router's address — the only one clients need.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Member addresses, by shard index (useful for tests that poke one
    /// member directly).
    pub fn member_addrs(&self) -> &[SocketAddr] {
        &self.member_addrs
    }

    /// Block until the cluster shuts down (a `shutdown` to the router, or
    /// a full-cluster `drain` completing).
    pub fn join(self) -> Result<(), SxdError> {
        self.router.join().map_err(|_| SxdError::Io { detail: "router thread panicked".into() })?
    }
}

/// Stand up `config.shards` member daemons plus the router, all in this
/// process. Every member gets the same suite registry; durable members
/// get `<state_dir>/shard-i`, created if missing, so a re-spawned cluster
/// recovers each shard's journal exactly as a single daemon would.
pub fn spawn(registry: Registry<JobEntry>, config: ClusterConfig) -> Result<Cluster, SxdError> {
    let n = config.shards.max(1);
    let names = Ring::default_names(n);
    let mut members = Vec::with_capacity(n);
    let mut member_addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for name in &names {
        let mut sc = config.server.clone();
        sc.addr = "127.0.0.1:0".into();
        sc.state_dir = config.state_dir.as_ref().map(|root| root.join(name));
        if let Some(dir) = &sc.state_dir {
            std::fs::create_dir_all(dir).map_err(SxdError::io)?;
        }
        let server = Server::bind(registry.clone(), sc.clone())?;
        let addr = server.local_addr();
        member_addrs.push(addr);
        members.push(RouterMember {
            name: name.clone(),
            addr: addr.to_string(),
            state_dir: sc.state_dir,
        });
        handles.push(Some(std::thread::spawn(move || server.run())));
    }
    let router = Router::bind(
        members,
        handles,
        &config.addr,
        config.server.drain_deadline,
        config.server.idle_timeout,
        config.server.dispatchers,
        config.server.pipeline_depth,
    )?;
    let addr = router.local_addr();
    let router = std::thread::spawn(move || router.run());
    Ok(Cluster { addr, member_addrs, router })
}
