//! The shard router: one front end speaking the daemon's own NDJSON/TCP
//! protocol, fanning work out over N member daemons.
//!
//! This is the harness-side analogue of the SX-4's IXS crossbar (paper
//! §1): clients talk to one address; each `submit` is routed by the
//! rendezvous [`Ring`] over its content-addressed cache key to the member
//! that owns the keyspace, so identical configurations always land on the
//! same shard and its cache/single-flight machinery dedupes cluster-wide.
//! `stats` and `metrics` fan out to every live member and merge (see
//! [`super::aggregate`]); `drain` with a `member` retires one shard and
//! hands its durable results to the keyspace successors, so repeat
//! submits of the drained member's keys still hit — byte-identically.
//!
//! The router serves on the same [`ncar_suite::reactor`] event loop as
//! the member daemons. Forwarding rides *multiplexed* member connections:
//! one socket per member, shared by every client request, with a reader
//! thread per member pairing replies to requests in wire order. A forward
//! registers its reply waiter and writes its frame in one atomic step
//! under the member's `sxd.router.mux` lock, then awaits the reply off
//! every lock — so N concurrent forwards to one member pipeline into a
//! single socket instead of paying one connection (and one serial round
//! trip) each. Fan-out verbs (`stats`/`metrics`) and the drain hand-off's
//! `put` replication use the same machinery in two phases: send
//! everything, then collect everything, turning N round trips into one
//! send burst plus one collect sweep.
//!
//! `route` and parse errors are pure ring math — no member I/O — so the
//! reactor answers them inline on its own thread (the router's fast path,
//! counted in `fastpath_hits`).
//!
//! The router's long-lived locks (`sxd.router.members`,
//! `sxd.router.handles`, `sxd.router.counters`, `sxd.router.reactor`,
//! and the per-member `sxd.router.mux` slots) are all leaves: none is
//! ever held while acquiring another. Dials, joins and reply waits are
//! declared via `lockreg::blocking_io` with no lock held; the one
//! exemption is the mux frame write itself, which — like the journal's
//! append — holds exactly the lock that *is* the wire-order guard.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ncar_suite::par::lockreg;
use ncar_suite::reactor::{DecodeError, Reactor, ReactorConfig, ReactorHandle, Reply, Service};
use ncar_suite::{plock_named, Json};
use sxsim::presets;

use super::aggregate;
use super::ring::Ring;
use crate::client::Client;
use crate::error::SxdError;
use crate::journal::{self, Journal};
use crate::proto::{cache_key, read_frame, Request, MAX_REPLY_FRAME, MAX_REQUEST_FRAME};

/// How the router dials a member: a few quick retries so member startup
/// races (the member thread is still binding) resolve without failing the
/// client's request.
const CONNECT_ATTEMPTS: usize = 5;
const CONNECT_BACKOFF: Duration = Duration::from_millis(20);

/// Join handle for an in-process member daemon, `None` for shards this
/// process does not own. A hand-off joins the handle so the drained
/// member's journal is final before replication starts.
pub type MemberHandle = Option<JoinHandle<Result<(), SxdError>>>;

/// One shard as the router addresses it.
#[derive(Debug, Clone)]
pub struct RouterMember {
    /// Ring name (`shard-i` by default); feeds the rendezvous scores.
    pub name: String,
    /// Wire address of the member daemon.
    pub addr: String,
    /// The member's durable state directory, read at hand-off time.
    pub state_dir: Option<PathBuf>,
}

/// Live membership state, guarded by `sxd.router.members`.
struct MemberSlot {
    addr: String,
    state_dir: Option<PathBuf>,
    alive: bool,
}

/// Router-side tallies, guarded by `sxd.router.counters`.
#[derive(Debug, Default, Clone)]
struct RouterCounters {
    forwarded: u64,
    bad_requests: u64,
    /// Journal entries replicated to successors by hand-offs.
    handoff_entries: u64,
    /// Hand-off entries skipped (oversized for a request frame); their
    /// keys recompute on the successor instead of replaying.
    handoff_skipped: u64,
    /// Checkpointed restart specs re-submitted across the ring.
    handoff_resubmits: u64,
    unavailable: u64,
    /// Frames answered inline on the reactor thread (`route`, parse
    /// errors): pure ring math, no member I/O.
    fastpath_hits: u64,
}

/// One multiplexed member connection: the shared writer half, plus the
/// queue handing each request's reply waiter to the reader thread. Reply
/// pairing is positional — waiters are registered in the same order their
/// frames hit the wire (both under the `sxd.router.mux` lock), and the
/// member answers each connection strictly in request order.
struct MuxState {
    writer: TcpStream,
    waiters: mpsc::Sender<ReplyTx>,
}

type ReplyTx = mpsc::Sender<Result<String, SxdError>>;
type ReplyRx = mpsc::Receiver<Result<String, SxdError>>;

struct RouterInner {
    ring: Ring,
    members: Mutex<Vec<MemberSlot>>,
    /// Multiplexed member connections, one slot per member, each guarded
    /// by its own `sxd.router.mux` lock (a leaf; see module docs).
    muxes: Vec<Mutex<Option<MuxState>>>,
    /// Join handles for in-process members, one slot per member.
    handles: Mutex<Vec<MemberHandle>>,
    counters: Mutex<RouterCounters>,
    /// Handle of the running reactor, installed by [`Router::run`]. A
    /// leaf lock, like every router lock (see module docs).
    reactor: Mutex<Option<ReactorHandle>>,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    drain_deadline: Duration,
    idle_timeout: Option<Duration>,
    dispatchers: usize,
    pipeline_depth: usize,
}

/// A bound, not-yet-running router. [`Router::run`] blocks until a
/// `shutdown` (or a full-cluster `drain`) retires every member and the
/// router itself.
pub struct Router {
    listener: TcpListener,
    inner: Arc<RouterInner>,
}

impl Router {
    /// Bind the router over `members`. `handles` pairs with `members` by
    /// index; pass `None` for shards this process does not own.
    /// `dispatchers == 0` auto-sizes (the router does no compute of its
    /// own — dispatchers only hold blocking forward I/O).
    /// `pipeline_depth` is the per-client-connection frame window, as on
    /// the member daemons ([`crate::ServerConfig::pipeline_depth`]).
    #[allow(clippy::too_many_arguments)]
    pub fn bind(
        members: Vec<RouterMember>,
        handles: Vec<MemberHandle>,
        addr: &str,
        drain_deadline: Duration,
        idle_timeout: Option<Duration>,
        dispatchers: usize,
        pipeline_depth: usize,
    ) -> Result<Router, SxdError> {
        assert_eq!(members.len(), handles.len(), "one handle slot per member");
        let dispatchers = if dispatchers == 0 { 8 } else { dispatchers };
        let listener = TcpListener::bind(addr).map_err(SxdError::io)?;
        let local = listener.local_addr().map_err(SxdError::io)?;
        let ring = Ring::new(members.iter().map(|m| m.name.clone()).collect::<Vec<_>>());
        let muxes = members.iter().map(|_| Mutex::new(None)).collect();
        let slots = members
            .into_iter()
            .map(|m| MemberSlot { addr: m.addr, state_dir: m.state_dir, alive: true })
            .collect();
        Ok(Router {
            listener,
            inner: Arc::new(RouterInner {
                ring,
                members: Mutex::new(slots),
                muxes,
                handles: Mutex::new(handles),
                counters: Mutex::new(RouterCounters::default()),
                reactor: Mutex::new(None),
                addr: local,
                shutting_down: AtomicBool::new(false),
                drain_deadline,
                idle_timeout,
                dispatchers,
                pipeline_depth: pipeline_depth.max(1),
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Serve on the reactor event loop until a `shutdown` (or a
    /// full-cluster `drain`) retires every member and the router itself.
    /// A frame's forwarding I/O runs on a dispatcher thread, never on the
    /// event loop; `route` and parse errors answer inline.
    pub fn run(self) -> Result<(), SxdError> {
        let inner = Arc::clone(&self.inner);
        let reactor = Reactor::new(
            self.listener,
            RouterService { inner: Arc::clone(&self.inner) },
            ReactorConfig {
                max_frame: MAX_REQUEST_FRAME,
                idle_timeout: inner.idle_timeout,
                dispatchers: inner.dispatchers,
                pipeline_depth: inner.pipeline_depth,
                ..ReactorConfig::default()
            },
        )
        .map_err(SxdError::io)?;
        let handle = reactor.handle();
        *plock_named(&inner.reactor, "sxd.router.reactor") = Some(handle.clone());
        // Cover a shutdown that raced with startup: the flag flip may have
        // happened before the handle was installed.
        if inner.shutting_down.load(Ordering::SeqCst) {
            handle.shutdown();
        }
        let res = reactor.run().map_err(SxdError::io);
        *plock_named(&inner.reactor, "sxd.router.reactor") = None;
        // Retire the member muxes (their reader threads exit on the
        // socket shutdown), then join whatever member threads a shutdown
        // fan-out left running.
        for idx in 0..inner.ring.len() {
            kill_mux(&inner, idx);
        }
        for h in drain_handles(&inner) {
            let _ = h.join();
        }
        res
    }
}

/// The router as a [`Service`]: connections carry no per-connection state
/// (member sockets are multiplexed router-wide), so `Conn` is `()`.
struct RouterService {
    inner: Arc<RouterInner>,
}

impl Service for RouterService {
    type Conn = ();

    fn open(&self, _id: u64) {}

    fn handle(&self, _conn: &(), frame: &str) -> Reply {
        Reply::send(handle_frame(&self.inner, frame))
    }

    /// Reactor-thread fast path: `route` and parse errors are pure ring
    /// math, answered inline; everything else holds member I/O and
    /// dispatches.
    fn fast_handle(&self, _conn: &(), frame: &str) -> Option<Reply> {
        fast_frame(&self.inner, frame).map(Reply::send)
    }

    fn decode_error_reply(&self, err: &DecodeError) -> String {
        match *err {
            DecodeError::FrameTooLong { len, max } => SxdError::FrameTooLong { len, max },
            DecodeError::NotUtf8 => SxdError::BadJson { detail: "frame is not valid UTF-8".into() },
        }
        .to_reply()
    }
}

/// Take every remaining member join handle out of the registry.
fn drain_handles(inner: &RouterInner) -> Vec<JoinHandle<Result<(), SxdError>>> {
    plock_named(&inner.handles, "sxd.router.handles").iter_mut().filter_map(Option::take).collect()
}

/// The reader half of one member mux: pairs replies to waiters in wire
/// order. Exits on member EOF or a read error; dropping the waiter queue
/// Receiver then disconnects every parked or future waiter (their channel
/// recv/send errors), so nothing can wait forever on a dead connection.
fn mux_reader(sock: TcpStream, waiters: mpsc::Receiver<ReplyTx>) {
    let mut reader = BufReader::new(sock);
    while let Ok(waiter) = waiters.recv() {
        match read_frame(&mut reader, MAX_REPLY_FRAME) {
            Ok(Some(line)) => {
                let _ = waiter.send(Ok(line));
            }
            Ok(None) => {
                let _ = waiter.send(Err(SxdError::Io {
                    detail: "member closed the multiplexed connection".into(),
                }));
                break;
            }
            Err(e) => {
                let _ = waiter.send(Err(e));
                break;
            }
        }
    }
}

/// Dial a member with the standard retry schedule (no lock held).
fn dial(addr: &str) -> Result<TcpStream, SxdError> {
    let mut delay = CONNECT_BACKOFF;
    let mut last = String::new();
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => {
                // Forwards are small frames pipelined back-to-back; never
                // let Nagle hold one hostage to the previous one's ACK.
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_secs(1));
        }
    }
    Err(SxdError::Retries { attempts: CONNECT_ATTEMPTS, detail: format!("{addr}: {last}") })
}

/// Stand a freshly dialed socket up as member `idx`'s mux. If a
/// concurrent dialer won the race, its state stays and ours retires (the
/// dropped waiter Sender exits our reader thread).
fn install_mux(inner: &RouterInner, idx: usize, sock: TcpStream) -> Result<(), SxdError> {
    let reader_sock = sock.try_clone().map_err(SxdError::io)?;
    let (wtx, wrx) = mpsc::channel();
    std::thread::spawn(move || mux_reader(reader_sock, wrx));
    let mut slot = plock_named(&inner.muxes[idx], "sxd.router.mux");
    if slot.is_none() {
        *slot = Some(MuxState { writer: sock, waiters: wtx });
    }
    Ok(())
}

/// Retire member `idx`'s mux. The explicit shutdown matters: the reader
/// thread shares the socket via `try_clone`, so only a shutdown (not a
/// drop of our half) wakes it out of a blocked read.
fn kill_mux(inner: &RouterInner, idx: usize) {
    let state = plock_named(&inner.muxes[idx], "sxd.router.mux").take();
    if let Some(s) = state {
        let _ = s.writer.shutdown(Shutdown::Both);
    }
}

/// Try to enqueue one frame on member `idx`'s existing mux. `Ok(None)`
/// means there is no usable mux (none installed, or its reader exited) —
/// dial and retry. `Err` means the write itself failed; the slot is
/// cleared so the next attempt redials.
fn try_enqueue(inner: &RouterInner, idx: usize, line: &str) -> Result<Option<ReplyRx>, SxdError> {
    let mut slot = plock_named(&inner.muxes[idx], "sxd.router.mux");
    let Some(state) = slot.as_mut() else { return Ok(None) };
    let (tx, rx) = mpsc::channel();
    if state.waiters.send(tx).is_err() {
        // The reader noticed the socket die first and exited.
        *slot = None;
        return Ok(None);
    }
    // Waiter registration and the frame write are one atomic step under
    // the mux lock: that is what pairs replies with requests in wire
    // order when forwards interleave. Holding the mux lock across this
    // write is therefore by design — the lock *is* the wire-order guard —
    // and exempted the same way as the journal's append lock.
    lockreg::blocking_io("sxd.router.mux.send", &["sxd.router.mux"]);
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    if let Err(e) = state.writer.write_all(&buf) {
        *slot = None;
        return Err(SxdError::io(e));
    }
    Ok(Some(rx))
}

/// Put one frame on member `idx`'s wire and return the receiver its reply
/// will arrive on. Dials (outside every lock) when no mux is up. This is
/// the *send phase*; pair it with [`mux_recv`] — possibly after sending
/// more frames first, which is exactly how forwards pipeline.
fn mux_send(inner: &RouterInner, idx: usize, line: &str) -> Result<ReplyRx, SxdError> {
    let (addr, alive) = {
        let members = plock_named(&inner.members, "sxd.router.members");
        (members[idx].addr.clone(), members[idx].alive)
    };
    if !alive {
        return Err(SxdError::ShardUnavailable {
            member: inner.ring.name(idx).to_string(),
            detail: "member has left the ring".into(),
        });
    }
    if let Some(rx) = try_enqueue(inner, idx, line)? {
        return Ok(rx);
    }
    lockreg::blocking_io("sxd.router.dial", &[]);
    let sock = dial(&addr)?;
    install_mux(inner, idx, sock)?;
    match try_enqueue(inner, idx, line)? {
        Some(rx) => Ok(rx),
        None => Err(SxdError::ShardUnavailable {
            member: inner.ring.name(idx).to_string(),
            detail: "member closed the multiplexed connection while dialing".into(),
        }),
    }
}

/// The *collect phase*: await one reply off every lock.
fn mux_recv(rx: ReplyRx) -> Result<String, SxdError> {
    lockreg::blocking_io("sxd.router.recv", &[]);
    rx.recv().unwrap_or_else(|_| {
        Err(SxdError::Io { detail: "multiplexed member connection closed".into() })
    })
}

/// Forward one raw frame to member `idx` and return the raw reply. The
/// line goes through verbatim, so a member's reply — including a cache
/// hit's exact payload bytes — passes back unmodified. One failed round
/// retires the mux and retries on a fresh dial.
fn forward(inner: &RouterInner, idx: usize, line: &str) -> Result<String, SxdError> {
    let mut last = String::new();
    for _attempt in 0..2 {
        let outcome = mux_send(inner, idx, line).and_then(mux_recv);
        match outcome {
            Ok(reply) => {
                plock_named(&inner.counters, "sxd.router.counters").forwarded += 1;
                return Ok(reply);
            }
            Err(e) => {
                kill_mux(inner, idx);
                last = e.detail();
            }
        }
    }
    plock_named(&inner.counters, "sxd.router.counters").unavailable += 1;
    Err(SxdError::ShardUnavailable { member: inner.ring.name(idx).to_string(), detail: last })
}

/// Resolve the key's owner among live members, or the typed reason there
/// is none.
fn owner_of(inner: &RouterInner, key: u64) -> Result<usize, SxdError> {
    let members = plock_named(&inner.members, "sxd.router.members");
    inner.ring.owner_among(key, |m| members[m].alive).ok_or_else(|| SxdError::ShardUnavailable {
        member: "(none)".into(),
        detail: "no live shard members remain".into(),
    })
}

/// Answer a `route` request: ring math only, shared by the dispatcher
/// path and the fast path. Counts its own `bad_requests`.
fn route_reply(
    inner: &RouterInner,
    suite: &str,
    machine: &str,
    params: &std::collections::BTreeMap<String, String>,
) -> String {
    let Some(model) = presets::by_name(machine) else {
        plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
        return SxdError::UnknownMachine { machine: machine.to_string() }.to_reply();
    };
    let key = cache_key(suite, &model, params);
    match owner_of(inner, key) {
        Ok(owner) => format!(
            "{{\"ok\":true,\"member\":{owner},\"shard\":\"{}\",\"key\":\"{key:016x}\"}}",
            inner.ring.name(owner)
        ),
        Err(e) => e.to_reply(),
    }
}

/// The router's fast path: frames that need no member I/O — `route` and
/// parse errors — answer inline on the reactor thread. Everything else
/// returns `None` and dispatches.
fn fast_frame(inner: &RouterInner, frame: &str) -> Option<String> {
    let reply = match Request::parse(frame) {
        Err(e) => {
            let mut c = plock_named(&inner.counters, "sxd.router.counters");
            c.bad_requests += 1;
            c.fastpath_hits += 1;
            drop(c);
            e.to_reply()
        }
        Ok(Request::Route { ref suite, ref machine, ref params }) => {
            let r = route_reply(inner, suite, machine, params);
            plock_named(&inner.counters, "sxd.router.counters").fastpath_hits += 1;
            r
        }
        Ok(_) => return None,
    };
    Some(reply)
}

fn handle_frame(inner: &Arc<RouterInner>, frame: &str) -> String {
    let parsed = match Request::parse(frame) {
        Ok(r) => r,
        Err(e) => {
            plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
            return e.to_reply();
        }
    };
    match parsed {
        Request::Submit { ref suite, ref machine, ref params } => {
            let Some(model) = presets::by_name(machine) else {
                plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
                return SxdError::UnknownMachine { machine: machine.clone() }.to_reply();
            };
            let key = cache_key(suite, &model, params);
            match owner_of(inner, key).and_then(|owner| forward(inner, owner, frame)) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Put { key, .. } => {
            match owner_of(inner, key).and_then(|owner| forward(inner, owner, frame)) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Route { ref suite, ref machine, ref params } => {
            // Normally answered by the fast path; kept here so the verb
            // still works if a service ever routes it through dispatch.
            route_reply(inner, suite, machine, params)
        }
        Request::Stats => match fanout_docs(inner, &Request::Stats.to_line(), "stats") {
            Ok(docs) => {
                // Splice the router's own tallies into the merged stats
                // object as an extra `router` member.
                let mut merged = aggregate::merge_stats(&docs);
                merged.pop(); // drop the closing brace
                let router = router_json(inner);
                format!("{{\"ok\":true,\"stats\":{merged},\"router\":{router}}}}}")
            }
            Err(e) => e.to_reply(),
        },
        Request::Metrics => match fanout_docs(inner, &Request::Metrics.to_line(), "metrics") {
            Ok(docs) => {
                let merged = aggregate::merge_metrics(&docs);
                format!("{{\"ok\":true,\"metrics\":{merged}}}")
            }
            Err(e) => e.to_reply(),
        },
        Request::Shutdown => {
            shutdown_cluster(inner);
            "{\"ok\":true,\"shutting_down\":true}".into()
        }
        Request::Drain { deadline_ms, member: Some(idx) } => {
            let deadline = deadline_ms.map(Duration::from_millis).unwrap_or(inner.drain_deadline);
            match drain_member(inner, idx, deadline) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Drain { deadline_ms, member: None } => {
            // Cluster-wide graceful drain: every member drains (each
            // checkpointing its own stragglers), then the router follows.
            let deadline = deadline_ms.map(Duration::from_millis).unwrap_or(inner.drain_deadline);
            let alive: Vec<usize> = {
                let members = plock_named(&inner.members, "sxd.router.members");
                (0..members.len()).filter(|&m| members[m].alive).collect()
            };
            for idx in alive {
                let req =
                    Request::Drain { deadline_ms: Some(deadline.as_millis() as u64), member: None };
                let _ = forward(inner, idx, &req.to_line());
            }
            let inner2 = Arc::clone(inner);
            std::thread::spawn(move || {
                for h in drain_handles(&inner2) {
                    let _ = h.join();
                }
                initiate_shutdown(&inner2);
            });
            format!("{{\"ok\":true,\"draining\":true,\"deadline_ms\":{}}}", deadline.as_millis())
        }
    }
}

/// The router's own counters, for the `router` member of a stats reply.
fn router_json(inner: &RouterInner) -> String {
    let c = plock_named(&inner.counters, "sxd.router.counters").clone();
    let alive =
        plock_named(&inner.members, "sxd.router.members").iter().filter(|m| m.alive).count();
    // Leaf lock, read and released before formatting; never nested.
    let (conns_open, conns_accepted, conns_idle_closed) = {
        match plock_named(&inner.reactor, "sxd.router.reactor").as_ref() {
            Some(h) => (h.open(), h.accepted(), h.idle_closed()),
            None => (0, 0, 0),
        }
    };
    format!(
        "{{\"forwarded\":{},\"bad_requests\":{},\"handoff_entries\":{},\
         \"handoff_skipped\":{},\"handoff_resubmits\":{},\"unavailable\":{},\
         \"fastpath_hits\":{},\
         \"conns\":{{\"open\":{conns_open},\"accepted\":{conns_accepted},\
         \"idle_closed\":{conns_idle_closed}}},\
         \"members_alive\":{alive},\"members_total\":{}}}",
        c.forwarded,
        c.bad_requests,
        c.handoff_entries,
        c.handoff_skipped,
        c.handoff_resubmits,
        c.unavailable,
        c.fastpath_hits,
        inner.ring.len(),
    )
}

/// Send `line` to every live member and collect the named reply member
/// from each — pipelined: every member gets the frame before any reply is
/// awaited, so the fan-out costs one round trip, not one per member. A
/// member whose mux round fails is retried once on a fresh connection via
/// [`forward`]; a member that stays unreachable fails the whole fan-out —
/// a partial stats view would silently break the reconciliation sums.
fn fanout_docs(inner: &RouterInner, line: &str, member_key: &str) -> Result<Vec<Json>, SxdError> {
    let alive: Vec<usize> = {
        let members = plock_named(&inner.members, "sxd.router.members");
        (0..members.len()).filter(|&m| members[m].alive).collect()
    };
    let sends: Vec<(usize, Result<ReplyRx, SxdError>)> =
        alive.into_iter().map(|idx| (idx, mux_send(inner, idx, line))).collect();
    let mut docs = Vec::with_capacity(sends.len());
    for (idx, sent) in sends {
        let reply = match sent.and_then(mux_recv) {
            Ok(r) => {
                plock_named(&inner.counters, "sxd.router.counters").forwarded += 1;
                r
            }
            Err(_) => {
                kill_mux(inner, idx);
                forward(inner, idx, line)?
            }
        };
        let doc = Json::parse(&reply)
            .map_err(|e| SxdError::BadJson { detail: format!("{} reply: {e}", member_key) })?;
        let member = doc.get(member_key).cloned().ok_or_else(|| SxdError::BadJson {
            detail: format!("member reply lacks \"{member_key}\""),
        })?;
        docs.push(member);
    }
    Ok(docs)
}

/// Fan `shutdown` out to every live member, then retire the router once
/// the member threads exit (asynchronously — the client gets its ack
/// immediately, like a single daemon's shutdown).
fn shutdown_cluster(inner: &Arc<RouterInner>) {
    let alive: Vec<usize> = {
        let members = plock_named(&inner.members, "sxd.router.members");
        (0..members.len()).filter(|&m| members[m].alive).collect()
    };
    for idx in alive {
        let _ = forward(inner, idx, &Request::Shutdown.to_line());
    }
    let inner2 = Arc::clone(inner);
    std::thread::spawn(move || {
        for h in drain_handles(&inner2) {
            let _ = h.join();
        }
        initiate_shutdown(&inner2);
    });
}

/// Flip the shutdown flag and wake the reactor. Idempotent (mirrors the
/// daemon's shutdown): the reactor stops accepting immediately, flushes
/// in-flight replies within its grace window, and exits.
fn initiate_shutdown(inner: &RouterInner) {
    if inner.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    let handle = plock_named(&inner.reactor, "sxd.router.reactor").clone();
    if let Some(h) = handle {
        h.shutdown();
    }
}

/// Drain one member and hand its keyspace off: mark it out of the ring,
/// let it drain (checkpointing its own stragglers), wait for it to exit,
/// then replicate its journal to the keys' new owners and re-submit its
/// checkpointed restart specs across the ring. Synchronous by design —
/// when the reply arrives, repeat submits of the drained member's keys
/// already hit their successors' caches byte-identically.
///
/// The journal replication is *batched*: every surviving entry's `put`
/// goes on its successor's wire first (the send phase), then the acks are
/// collected (the collect phase) — N entries cost one send burst plus one
/// sweep instead of N serial round trips. An entry whose mux round fails
/// is retried once on a fresh connection before failing the hand-off.
fn drain_member(inner: &RouterInner, idx: usize, deadline: Duration) -> Result<String, SxdError> {
    let (addr, state_dir) = {
        let mut members = plock_named(&inner.members, "sxd.router.members");
        let Some(slot) = members.get_mut(idx) else {
            return Err(SxdError::BadRequest {
                detail: format!("no member {idx}; the cluster has {}", inner.ring.len()),
            });
        };
        if !slot.alive {
            return Err(SxdError::ShardUnavailable {
                member: inner.ring.name(idx).to_string(),
                detail: "member already left the ring".into(),
            });
        }
        // Out of the ring first: new submits route to successors from
        // this instant, so nothing new lands on the draining member.
        slot.alive = false;
        (slot.addr.clone(), slot.state_dir.clone())
    };
    // The member is gone from the ring; its mux is dead weight now.
    kill_mux(inner, idx);

    // Ask the member to drain. Dial directly (not through the mux) so a
    // dead member is tolerated: it may have crashed, and hand-off of its
    // durable journal is exactly what recovers its keyspace.
    lockreg::blocking_io("sxd.router.drain", &[]);
    if let Ok(mut c) = Client::connect_with_retry(&addr, 2, CONNECT_BACKOFF) {
        let _ = c.drain(Some(deadline.as_millis() as u64));
    }

    // Wait for the member to finish draining so its journal is final.
    let handle =
        plock_named(&inner.handles, "sxd.router.handles").get_mut(idx).and_then(Option::take);
    lockreg::blocking_io("sxd.router.join", &[]);
    match handle {
        Some(h) => {
            let _ = h.join();
        }
        None => {
            // Externally-managed member: poll until its listener is gone.
            let t0 = std::time::Instant::now();
            while t0.elapsed() < deadline + Duration::from_secs(30) {
                if TcpStream::connect(&addr).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Replicate the drained member's durable results to each key's new
    // owner, newest append winning, and re-submit its checkpointed
    // stragglers. Without a state dir there is nothing durable to move —
    // the keyspace reassigns and recomputes on demand.
    let mut handed_off = 0u64;
    let mut skipped = 0u64;
    let mut resubmitted = 0u64;
    if let Some(dir) = state_dir {
        lockreg::blocking_io("sxd.router.handoff", &[]);
        if let Ok((_journal, entries)) = Journal::open(&dir) {
            let mut newest: Vec<(u64, String)> = Vec::new();
            for (key, payload) in entries {
                if let Some(slot) = newest.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = payload;
                } else {
                    newest.push((key, payload));
                }
            }
            // Send phase: pipeline every put onto its owner's wire.
            let mut batch: Vec<(usize, String, Result<ReplyRx, SxdError>)> = Vec::new();
            for (key, payload) in newest {
                let line = Request::Put { key, payload }.to_line();
                if line.len() > MAX_REQUEST_FRAME {
                    skipped += 1; // the successor recomputes this key on demand
                    continue;
                }
                let owner = owner_of(inner, key)?;
                let sent = mux_send(inner, owner, &line);
                batch.push((owner, line, sent));
            }
            // Collect phase: one ack per entry, retrying stragglers once.
            for (owner, line, sent) in batch {
                match sent.and_then(mux_recv) {
                    Ok(_) => {
                        plock_named(&inner.counters, "sxd.router.counters").forwarded += 1;
                    }
                    Err(_) => {
                        kill_mux(inner, owner);
                        forward(inner, owner, &line)?;
                    }
                }
                handed_off += 1;
            }
        }
        for spec in journal::load_restart_specs(&dir) {
            let Some(model) = presets::by_name(&spec.machine) else { continue };
            let params: std::collections::BTreeMap<String, String> =
                spec.params.iter().cloned().collect();
            let key = cache_key(&spec.suite, &model, &params);
            let owner = owner_of(inner, key)?;
            // A restart spec is full recompute anyway (fraction 0), so it
            // re-enters the cluster as a fresh submit at its new owner.
            let req = Request::Submit {
                suite: spec.suite.clone(),
                machine: spec.machine.clone(),
                params,
            };
            forward(inner, owner, &req.to_line())?;
            resubmitted += 1;
        }
        let _ = journal::clear_restart_specs(&dir);
    }
    {
        let mut c = plock_named(&inner.counters, "sxd.router.counters");
        c.handoff_entries += handed_off;
        c.handoff_skipped += skipped;
        c.handoff_resubmits += resubmitted;
    }
    Ok(format!(
        "{{\"ok\":true,\"drained\":{idx},\"shard\":\"{}\",\"handed_off\":{handed_off},\
         \"skipped\":{skipped},\"resubmitted\":{resubmitted}}}",
        inner.ring.name(idx)
    ))
}
