//! The shard router: one front end speaking the daemon's own NDJSON/TCP
//! protocol, fanning work out over N member daemons.
//!
//! This is the harness-side analogue of the SX-4's IXS crossbar (paper
//! §1): clients talk to one address; each `submit` is routed by the
//! rendezvous [`Ring`] over its content-addressed cache key to the member
//! that owns the keyspace, so identical configurations always land on the
//! same shard and its cache/single-flight machinery dedupes cluster-wide.
//! `stats` and `metrics` fan out to every live member and merge (see
//! [`super::aggregate`]); `drain` with a `member` retires one shard and
//! hands its durable results to the keyspace successors, so repeat
//! submits of the drained member's keys still hit — byte-identically.
//!
//! The router serves on the same [`ncar_suite::reactor`] event loop as
//! the member daemons: one thread owns every client socket, and decoded
//! frames run on a bounded dispatcher pool. Forwarding reuses connections
//! *per client connection*, not per member globally: each router
//! connection owns a [`ShardConns`] (the reactor's per-connection service
//! state, round-tripping through every dispatch) so two clients' requests
//! to one member ride separate sockets and the member's own single-flight
//! layer — not a router lock — serializes identical work. The router's
//! long-lived locks (`sxd.router.members`, `sxd.router.handles`,
//! `sxd.router.counters`, `sxd.router.reactor`) are all leaves: none is
//! ever held across another, none is held across forwarding I/O (declared
//! via `lockreg::blocking_io`), so the lockcheck graph of the cluster
//! layer is edge-free by construction.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ncar_suite::par::lockreg;
use ncar_suite::reactor::{DecodeError, Reactor, ReactorConfig, ReactorHandle, Reply, Service};
use ncar_suite::{plock_named, Json};
use sxsim::presets;

use super::aggregate;
use super::ring::Ring;
use crate::client::Client;
use crate::error::SxdError;
use crate::journal::{self, Journal};
use crate::proto::{cache_key, Request, MAX_REQUEST_FRAME};

/// How the router dials a member: a few quick retries so member startup
/// races (the member thread is still binding) resolve without failing the
/// client's request.
const CONNECT_ATTEMPTS: usize = 5;
const CONNECT_BACKOFF: Duration = Duration::from_millis(20);

/// Join handle for an in-process member daemon, `None` for shards this
/// process does not own. A hand-off joins the handle so the drained
/// member's journal is final before replication starts.
pub type MemberHandle = Option<JoinHandle<Result<(), SxdError>>>;

/// One shard as the router addresses it.
#[derive(Debug, Clone)]
pub struct RouterMember {
    /// Ring name (`shard-i` by default); feeds the rendezvous scores.
    pub name: String,
    /// Wire address of the member daemon.
    pub addr: String,
    /// The member's durable state directory, read at hand-off time.
    pub state_dir: Option<PathBuf>,
}

/// Live membership state, guarded by `sxd.router.members`.
struct MemberSlot {
    addr: String,
    state_dir: Option<PathBuf>,
    alive: bool,
}

/// Router-side tallies, guarded by `sxd.router.counters`.
#[derive(Debug, Default, Clone)]
struct RouterCounters {
    forwarded: u64,
    bad_requests: u64,
    /// Journal entries replicated to successors by hand-offs.
    handoff_entries: u64,
    /// Hand-off entries skipped (oversized for a request frame); their
    /// keys recompute on the successor instead of replaying.
    handoff_skipped: u64,
    /// Checkpointed restart specs re-submitted across the ring.
    handoff_resubmits: u64,
    unavailable: u64,
}

struct RouterInner {
    ring: Ring,
    members: Mutex<Vec<MemberSlot>>,
    /// Join handles for in-process members, one slot per member.
    handles: Mutex<Vec<MemberHandle>>,
    counters: Mutex<RouterCounters>,
    /// Handle of the running reactor, installed by [`Router::run`]. A
    /// leaf lock, like every router lock (see module docs).
    reactor: Mutex<Option<ReactorHandle>>,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    drain_deadline: Duration,
    idle_timeout: Option<Duration>,
    dispatchers: usize,
}

/// A bound, not-yet-running router. [`Router::run`] blocks until a
/// `shutdown` (or a full-cluster `drain`) retires every member and the
/// router itself.
pub struct Router {
    listener: TcpListener,
    inner: Arc<RouterInner>,
}

impl Router {
    /// Bind the router over `members`. `handles` pairs with `members` by
    /// index; pass `None` for shards this process does not own.
    /// `dispatchers == 0` auto-sizes (the router does no compute of its
    /// own — dispatchers only hold blocking forward I/O).
    pub fn bind(
        members: Vec<RouterMember>,
        handles: Vec<MemberHandle>,
        addr: &str,
        drain_deadline: Duration,
        idle_timeout: Option<Duration>,
        dispatchers: usize,
    ) -> Result<Router, SxdError> {
        assert_eq!(members.len(), handles.len(), "one handle slot per member");
        let dispatchers = if dispatchers == 0 { 8 } else { dispatchers };
        let listener = TcpListener::bind(addr).map_err(SxdError::io)?;
        let local = listener.local_addr().map_err(SxdError::io)?;
        let ring = Ring::new(members.iter().map(|m| m.name.clone()).collect::<Vec<_>>());
        let slots = members
            .into_iter()
            .map(|m| MemberSlot { addr: m.addr, state_dir: m.state_dir, alive: true })
            .collect();
        Ok(Router {
            listener,
            inner: Arc::new(RouterInner {
                ring,
                members: Mutex::new(slots),
                handles: Mutex::new(handles),
                counters: Mutex::new(RouterCounters::default()),
                reactor: Mutex::new(None),
                addr: local,
                shutting_down: AtomicBool::new(false),
                drain_deadline,
                idle_timeout,
                dispatchers,
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Serve on the reactor event loop until a `shutdown` (or a
    /// full-cluster `drain`) retires every member and the router itself.
    /// Each client connection's [`ShardConns`] is its reactor service
    /// state; a frame's forwarding I/O runs on a dispatcher thread, never
    /// on the event loop.
    pub fn run(self) -> Result<(), SxdError> {
        let inner = Arc::clone(&self.inner);
        let reactor = Reactor::new(
            self.listener,
            RouterService { inner: Arc::clone(&self.inner) },
            ReactorConfig {
                max_frame: MAX_REQUEST_FRAME,
                idle_timeout: inner.idle_timeout,
                dispatchers: inner.dispatchers,
                ..ReactorConfig::default()
            },
        )
        .map_err(SxdError::io)?;
        let handle = reactor.handle();
        *plock_named(&inner.reactor, "sxd.router.reactor") = Some(handle.clone());
        // Cover a shutdown that raced with startup: the flag flip may have
        // happened before the handle was installed.
        if inner.shutting_down.load(Ordering::SeqCst) {
            handle.shutdown();
        }
        let res = reactor.run().map_err(SxdError::io);
        *plock_named(&inner.reactor, "sxd.router.reactor") = None;
        // Join whatever member threads a shutdown fan-out left running.
        for h in drain_handles(&inner) {
            let _ = h.join();
        }
        res
    }
}

/// The router as a [`Service`]: the per-connection state is that client's
/// own [`ShardConns`], so member sockets persist across the connection's
/// requests and die with it.
struct RouterService {
    inner: Arc<RouterInner>,
}

impl Service for RouterService {
    type Conn = ShardConns;

    fn open(&self, _id: u64) -> ShardConns {
        ShardConns::new(self.inner.ring.len())
    }

    fn handle(&self, conns: &mut ShardConns, frame: &str) -> Reply {
        Reply::send(handle_frame(&self.inner, conns, frame))
    }

    fn decode_error_reply(&self, err: &DecodeError) -> String {
        match *err {
            DecodeError::FrameTooLong { len, max } => SxdError::FrameTooLong { len, max },
            DecodeError::NotUtf8 => SxdError::BadJson { detail: "frame is not valid UTF-8".into() },
        }
        .to_reply()
    }
}

/// Take every remaining member join handle out of the registry.
fn drain_handles(inner: &RouterInner) -> Vec<JoinHandle<Result<(), SxdError>>> {
    plock_named(&inner.handles, "sxd.router.handles").iter_mut().filter_map(Option::take).collect()
}

/// Per-connection member sockets: lazily dialed, reused across requests,
/// redialed once after an I/O failure.
struct ShardConns {
    slots: Vec<Option<Client>>,
}

impl ShardConns {
    fn new(n: usize) -> ShardConns {
        ShardConns { slots: (0..n).map(|_| None).collect() }
    }

    /// Forward one raw frame to member `idx` and return the raw reply.
    /// The line goes through verbatim, so a member's reply — including a
    /// cache hit's exact payload bytes — passes back unmodified.
    fn forward(&mut self, inner: &RouterInner, idx: usize, line: &str) -> Result<String, SxdError> {
        let (addr, alive) = {
            let members = plock_named(&inner.members, "sxd.router.members");
            (members[idx].addr.clone(), members[idx].alive)
        };
        let name = inner.ring.name(idx).to_string();
        if !alive {
            return Err(SxdError::ShardUnavailable {
                member: name,
                detail: "member has left the ring".into(),
            });
        }
        // Shard forwarding is blocking socket I/O; declared so the lock
        // analysis can prove no router lock is ever held across it.
        lockreg::blocking_io("sxd.router.forward", &[]);
        let mut last = String::new();
        for _attempt in 0..2 {
            if self.slots[idx].is_none() {
                match Client::connect_with_retry(&addr, CONNECT_ATTEMPTS, CONNECT_BACKOFF) {
                    Ok(c) => self.slots[idx] = Some(c),
                    Err(e) => {
                        last = e.detail();
                        continue;
                    }
                }
            }
            match self.slots[idx].as_mut().unwrap().raw(line) {
                Ok(reply) => {
                    plock_named(&inner.counters, "sxd.router.counters").forwarded += 1;
                    return Ok(reply);
                }
                Err(e) => {
                    // The socket is dead or desynced; drop it and redial.
                    self.slots[idx] = None;
                    last = e.detail();
                }
            }
        }
        plock_named(&inner.counters, "sxd.router.counters").unavailable += 1;
        Err(SxdError::ShardUnavailable { member: name, detail: last })
    }
}

/// Resolve the key's owner among live members, or the typed reason there
/// is none.
fn owner_of(inner: &RouterInner, key: u64) -> Result<usize, SxdError> {
    let members = plock_named(&inner.members, "sxd.router.members");
    inner.ring.owner_among(key, |m| members[m].alive).ok_or_else(|| SxdError::ShardUnavailable {
        member: "(none)".into(),
        detail: "no live shard members remain".into(),
    })
}

fn handle_frame(inner: &Arc<RouterInner>, conns: &mut ShardConns, frame: &str) -> String {
    let parsed = match Request::parse(frame) {
        Ok(r) => r,
        Err(e) => {
            plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
            return e.to_reply();
        }
    };
    match parsed {
        Request::Submit { ref suite, ref machine, ref params } => {
            let Some(model) = presets::by_name(machine) else {
                plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
                return SxdError::UnknownMachine { machine: machine.clone() }.to_reply();
            };
            let key = cache_key(suite, &model, params);
            match owner_of(inner, key).and_then(|owner| conns.forward(inner, owner, frame)) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Put { key, .. } => {
            match owner_of(inner, key).and_then(|owner| conns.forward(inner, owner, frame)) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Route { ref suite, ref machine, ref params } => {
            let Some(model) = presets::by_name(machine) else {
                plock_named(&inner.counters, "sxd.router.counters").bad_requests += 1;
                return SxdError::UnknownMachine { machine: machine.clone() }.to_reply();
            };
            let key = cache_key(suite, &model, params);
            match owner_of(inner, key) {
                Ok(owner) => format!(
                    "{{\"ok\":true,\"member\":{owner},\"shard\":\"{}\",\"key\":\"{key:016x}\"}}",
                    inner.ring.name(owner)
                ),
                Err(e) => e.to_reply(),
            }
        }
        Request::Stats => match fanout_docs(inner, conns, &Request::Stats.to_line(), "stats") {
            Ok(docs) => {
                // Splice the router's own tallies into the merged stats
                // object as an extra `router` member.
                let mut merged = aggregate::merge_stats(&docs);
                merged.pop(); // drop the closing brace
                let router = router_json(inner);
                format!("{{\"ok\":true,\"stats\":{merged},\"router\":{router}}}}}")
            }
            Err(e) => e.to_reply(),
        },
        Request::Metrics => match fanout_docs(inner, conns, &Request::Metrics.to_line(), "metrics")
        {
            Ok(docs) => {
                let merged = aggregate::merge_metrics(&docs);
                format!("{{\"ok\":true,\"metrics\":{merged}}}")
            }
            Err(e) => e.to_reply(),
        },
        Request::Shutdown => {
            shutdown_cluster(inner, conns);
            "{\"ok\":true,\"shutting_down\":true}".into()
        }
        Request::Drain { deadline_ms, member: Some(idx) } => {
            let deadline = deadline_ms.map(Duration::from_millis).unwrap_or(inner.drain_deadline);
            match drain_member(inner, conns, idx, deadline) {
                Ok(reply) => reply,
                Err(e) => e.to_reply(),
            }
        }
        Request::Drain { deadline_ms, member: None } => {
            // Cluster-wide graceful drain: every member drains (each
            // checkpointing its own stragglers), then the router follows.
            let deadline = deadline_ms.map(Duration::from_millis).unwrap_or(inner.drain_deadline);
            let alive: Vec<usize> = {
                let members = plock_named(&inner.members, "sxd.router.members");
                (0..members.len()).filter(|&m| members[m].alive).collect()
            };
            for idx in alive {
                let req =
                    Request::Drain { deadline_ms: Some(deadline.as_millis() as u64), member: None };
                let _ = conns.forward(inner, idx, &req.to_line());
            }
            let inner2 = Arc::clone(inner);
            std::thread::spawn(move || {
                for h in drain_handles(&inner2) {
                    let _ = h.join();
                }
                initiate_shutdown(&inner2);
            });
            format!("{{\"ok\":true,\"draining\":true,\"deadline_ms\":{}}}", deadline.as_millis())
        }
    }
}

/// The router's own counters, for the `router` member of a stats reply.
fn router_json(inner: &RouterInner) -> String {
    let c = plock_named(&inner.counters, "sxd.router.counters").clone();
    let alive =
        plock_named(&inner.members, "sxd.router.members").iter().filter(|m| m.alive).count();
    // Leaf lock, read and released before formatting; never nested.
    let (conns_open, conns_accepted, conns_idle_closed) = {
        match plock_named(&inner.reactor, "sxd.router.reactor").as_ref() {
            Some(h) => (h.open(), h.accepted(), h.idle_closed()),
            None => (0, 0, 0),
        }
    };
    format!(
        "{{\"forwarded\":{},\"bad_requests\":{},\"handoff_entries\":{},\
         \"handoff_skipped\":{},\"handoff_resubmits\":{},\"unavailable\":{},\
         \"conns\":{{\"open\":{conns_open},\"accepted\":{conns_accepted},\
         \"idle_closed\":{conns_idle_closed}}},\
         \"members_alive\":{alive},\"members_total\":{}}}",
        c.forwarded,
        c.bad_requests,
        c.handoff_entries,
        c.handoff_skipped,
        c.handoff_resubmits,
        c.unavailable,
        inner.ring.len(),
    )
}

/// Send `line` to every live member and collect the named reply member
/// from each. A member that cannot be reached fails the whole fan-out —
/// a partial stats view would silently break the reconciliation sums.
fn fanout_docs(
    inner: &RouterInner,
    conns: &mut ShardConns,
    line: &str,
    member_key: &str,
) -> Result<Vec<Json>, SxdError> {
    let alive: Vec<usize> = {
        let members = plock_named(&inner.members, "sxd.router.members");
        (0..members.len()).filter(|&m| members[m].alive).collect()
    };
    let mut docs = Vec::with_capacity(alive.len());
    for idx in alive {
        let reply = conns.forward(inner, idx, line)?;
        let doc = Json::parse(&reply)
            .map_err(|e| SxdError::BadJson { detail: format!("{} reply: {e}", member_key) })?;
        let member = doc.get(member_key).cloned().ok_or_else(|| SxdError::BadJson {
            detail: format!("member reply lacks \"{member_key}\""),
        })?;
        docs.push(member);
    }
    Ok(docs)
}

/// Fan `shutdown` out to every live member, then retire the router once
/// the member threads exit (asynchronously — the client gets its ack
/// immediately, like a single daemon's shutdown).
fn shutdown_cluster(inner: &Arc<RouterInner>, conns: &mut ShardConns) {
    let alive: Vec<usize> = {
        let members = plock_named(&inner.members, "sxd.router.members");
        (0..members.len()).filter(|&m| members[m].alive).collect()
    };
    for idx in alive {
        let _ = conns.forward(inner, idx, &Request::Shutdown.to_line());
    }
    let inner2 = Arc::clone(inner);
    std::thread::spawn(move || {
        for h in drain_handles(&inner2) {
            let _ = h.join();
        }
        initiate_shutdown(&inner2);
    });
}

/// Flip the shutdown flag and wake the reactor. Idempotent (mirrors the
/// daemon's shutdown): the reactor stops accepting immediately, flushes
/// in-flight replies within its grace window, and exits.
fn initiate_shutdown(inner: &RouterInner) {
    if inner.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    let handle = plock_named(&inner.reactor, "sxd.router.reactor").clone();
    if let Some(h) = handle {
        h.shutdown();
    }
}

/// Drain one member and hand its keyspace off: mark it out of the ring,
/// let it drain (checkpointing its own stragglers), wait for it to exit,
/// then replicate its journal to the keys' new owners and re-submit its
/// checkpointed restart specs across the ring. Synchronous by design —
/// when the reply arrives, repeat submits of the drained member's keys
/// already hit their successors' caches byte-identically.
fn drain_member(
    inner: &RouterInner,
    conns: &mut ShardConns,
    idx: usize,
    deadline: Duration,
) -> Result<String, SxdError> {
    let (addr, state_dir) = {
        let mut members = plock_named(&inner.members, "sxd.router.members");
        let Some(slot) = members.get_mut(idx) else {
            return Err(SxdError::BadRequest {
                detail: format!("no member {idx}; the cluster has {}", inner.ring.len()),
            });
        };
        if !slot.alive {
            return Err(SxdError::ShardUnavailable {
                member: inner.ring.name(idx).to_string(),
                detail: "member already left the ring".into(),
            });
        }
        // Out of the ring first: new submits route to successors from
        // this instant, so nothing new lands on the draining member.
        slot.alive = false;
        (slot.addr.clone(), slot.state_dir.clone())
    };

    // Ask the member to drain. Dial directly (not through `conns`) so a
    // dead member is tolerated: it may have crashed, and hand-off of its
    // durable journal is exactly what recovers its keyspace.
    lockreg::blocking_io("sxd.router.drain", &[]);
    if let Ok(mut c) = Client::connect_with_retry(&addr, 2, CONNECT_BACKOFF) {
        let _ = c.drain(Some(deadline.as_millis() as u64));
    }

    // Wait for the member to finish draining so its journal is final.
    let handle =
        plock_named(&inner.handles, "sxd.router.handles").get_mut(idx).and_then(Option::take);
    lockreg::blocking_io("sxd.router.join", &[]);
    match handle {
        Some(h) => {
            let _ = h.join();
        }
        None => {
            // Externally-managed member: poll until its listener is gone.
            let t0 = std::time::Instant::now();
            while t0.elapsed() < deadline + Duration::from_secs(30) {
                if TcpStream::connect(&addr).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Replicate the drained member's durable results to each key's new
    // owner, newest append winning, and re-submit its checkpointed
    // stragglers. Without a state dir there is nothing durable to move —
    // the keyspace reassigns and recomputes on demand.
    let mut handed_off = 0u64;
    let mut skipped = 0u64;
    let mut resubmitted = 0u64;
    if let Some(dir) = state_dir {
        lockreg::blocking_io("sxd.router.handoff", &[]);
        if let Ok((_journal, entries)) = Journal::open(&dir) {
            let mut newest: Vec<(u64, String)> = Vec::new();
            for (key, payload) in entries {
                if let Some(slot) = newest.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = payload;
                } else {
                    newest.push((key, payload));
                }
            }
            for (key, payload) in newest {
                let line = Request::Put { key, payload }.to_line();
                if line.len() > MAX_REQUEST_FRAME {
                    skipped += 1; // the successor recomputes this key on demand
                    continue;
                }
                let owner = owner_of(inner, key)?;
                conns.forward(inner, owner, &line)?;
                handed_off += 1;
            }
        }
        for spec in journal::load_restart_specs(&dir) {
            let Some(model) = presets::by_name(&spec.machine) else { continue };
            let params: std::collections::BTreeMap<String, String> =
                spec.params.iter().cloned().collect();
            let key = cache_key(&spec.suite, &model, &params);
            let owner = owner_of(inner, key)?;
            // A restart spec is full recompute anyway (fraction 0), so it
            // re-enters the cluster as a fresh submit at its new owner.
            let req = Request::Submit {
                suite: spec.suite.clone(),
                machine: spec.machine.clone(),
                params,
            };
            conns.forward(inner, owner, &req.to_line())?;
            resubmitted += 1;
        }
        let _ = journal::clear_restart_specs(&dir);
    }
    {
        let mut c = plock_named(&inner.counters, "sxd.router.counters");
        c.handoff_entries += handed_off;
        c.handoff_skipped += skipped;
        c.handoff_resubmits += resubmitted;
    }
    Ok(format!(
        "{{\"ok\":true,\"drained\":{idx},\"shard\":\"{}\",\"handed_off\":{handed_off},\
         \"skipped\":{skipped},\"resubmitted\":{resubmitted}}}",
        inner.ring.name(idx)
    ))
}
