//! Rendezvous (highest-random-weight) hashing over the shard members.
//!
//! Each member's claim on a key is an independent pseudo-random score
//! mixed from the key and the member's name hash; the highest score owns
//! the key. This is the IXS-fabric analogue of the paper's multi-node
//! SX-4 (§1): any front end can compute the owner with no shared state,
//! and — the property the hand-off story rests on — removing a member
//! only remaps the keys *that member* owned, because every other key's
//! argmax is untouched. No virtual-node table, no rebalancing protocol.
//!
//! Scores use the splitmix64 finalizer over `key ^ fnv64(name)`: the
//! cache key is itself an FNV-1a digest, whose avalanche alone is too
//! weak for an argmax across members (member hashes differ in few bits
//! for similar names); the finalizer's two xor-shift-multiply rounds make
//! the per-member score streams statistically independent, which is what
//! the 15%-uniformity placement test actually measures.

use ncar_suite::fnv64;

/// The immutable member list and its score seeds. Membership *state*
/// (who is alive) lives with the router; the ring answers pure placement
/// questions over any alive-subset of the original members.
#[derive(Debug, Clone)]
pub struct Ring {
    names: Vec<String>,
    seeds: Vec<u64>,
}

/// The splitmix64 finalizer: full-avalanche 64-bit mixing.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Ring {
    pub fn new<S: Into<String>>(names: Vec<S>) -> Ring {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let seeds = names.iter().map(|n| fnv64(n.as_bytes())).collect();
        Ring { names, seeds }
    }

    /// Member names for a cluster of `n` shards: `shard-0` .. `shard-n-1`.
    pub fn default_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn name(&self, member: usize) -> &str {
        &self.names[member]
    }

    /// One member's claim on one key. Deterministic, stateless.
    pub fn score(&self, key: u64, member: usize) -> u64 {
        mix64(key ^ self.seeds[member])
    }

    /// The member owning `key` among all members.
    pub fn owner(&self, key: u64) -> Option<usize> {
        self.owner_among(key, |_| true)
    }

    /// The member owning `key` among those `alive` admits. Ties (score
    /// collisions) break toward the lower index, deterministically on
    /// every front end. This *is* the successor function: after a member
    /// leaves, the owner among the survivors is where its keys land.
    pub fn owner_among<F: Fn(usize) -> bool>(&self, key: u64, alive: F) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for m in 0..self.names.len() {
            if !alive(m) {
                continue;
            }
            let s = self.score(key, m);
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, m));
            }
        }
        best.map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names_are_stable() {
        assert_eq!(Ring::default_names(3), vec!["shard-0", "shard-1", "shard-2"]);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(Vec::<String>::new());
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = Ring::new(vec!["only"]);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.owner(key), Some(0));
        }
    }

    #[test]
    fn owner_ignores_dead_members() {
        let ring = Ring::new(Ring::default_names(4));
        let key = 0x1234_5678_9abc_def0;
        let full = ring.owner(key).unwrap();
        let without = ring.owner_among(key, |m| m != full).unwrap();
        assert_ne!(without, full);
        // A key not owned by the excluded member keeps its owner.
        let other = (0..4).find(|&m| ring.owner(key ^ 1) == Some(m)).unwrap();
        if other != full {
            assert_eq!(ring.owner_among(key ^ 1, |m| m != full), Some(other));
        }
    }
}
