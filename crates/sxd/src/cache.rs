//! Content-addressed result cache with LRU eviction.
//!
//! Keys come from [`crate::proto::cache_key`]; values are the serialized
//! result payloads, stored verbatim so that a hit replays the exact bytes
//! of the run that populated it (the determinism tests rely on this).
//!
//! Recency is O(1) per operation: every touch stamps the entry with a
//! fresh monotonic sequence number and appends `(seq, key)` to the order
//! queue without removing the old position. Eviction pops from the front,
//! lazily skipping stale stamps (entries whose stamp no longer matches the
//! map — they were touched again later, or already evicted). The queue is
//! compacted whenever stale stamps outnumber live entries, so the per-hit
//! cost that used to be an O(n) `VecDeque` scan is now amortized constant.

use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct Entry {
    value: String,
    /// The sequence number of this entry's newest stamp in `order`.
    seq: u64,
}

/// Bounded map from run identity to its serialized result.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    map: HashMap<u64, Entry>,
    /// `(seq, key)` stamps from oldest to newest. A key may appear many
    /// times; only the stamp matching `map[key].seq` is live.
    order: VecDeque<(u64, u64)>,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `cap` results (`cap == 0` disables caching
    /// but still counts misses).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a result, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: u64) -> Option<String> {
        match self.map.get(&key) {
            Some(e) => {
                self.hits += 1;
                let v = e.value.clone();
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fast-path lookup: counts a hit and refreshes recency when the key
    /// is present but — unlike [`ResultCache::get`] — records nothing on
    /// absence. The reactor-thread fast path probes before deciding
    /// whether to dispatch; a declined probe falls through to the
    /// dispatcher, whose own `get` counts the miss exactly once.
    pub fn probe(&mut self, key: u64) -> Option<String> {
        match self.map.get(&key) {
            Some(e) => {
                self.hits += 1;
                let v = e.value.clone();
                self.touch(key);
                Some(v)
            }
            None => None,
        }
    }

    /// Insert (or refresh) a result, evicting the least-recently used
    /// entry when full.
    pub fn insert(&mut self, key: u64, value: String) {
        if self.cap == 0 {
            return;
        }
        match self.map.get_mut(&key) {
            Some(e) => {
                e.value = value;
                self.touch(key);
                return;
            }
            None => {
                self.next_seq += 1;
                self.map.insert(key, Entry { value, seq: self.next_seq });
                self.order.push_back((self.next_seq, key));
            }
        }
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some((seq, old)) => {
                    // Live stamp: this really is the LRU entry. A stale
                    // stamp (seq mismatch) is debris from a later touch.
                    if self.map.get(&old).is_some_and(|e| e.seq == seq) {
                        self.map.remove(&old);
                        self.evictions += 1;
                    }
                }
                None => break, // unreachable: every live entry has a stamp
            }
        }
        self.maybe_compact();
    }

    /// O(1): restamp the entry and append; the old stamp goes stale.
    fn touch(&mut self, key: u64) {
        if let Some(e) = self.map.get_mut(&key) {
            self.next_seq += 1;
            e.seq = self.next_seq;
            self.order.push_back((self.next_seq, key));
        }
        self.maybe_compact();
    }

    /// Drop stale stamps once they dominate, keeping the queue within a
    /// constant factor of the live set (amortized O(1) per operation).
    fn maybe_compact(&mut self) {
        if self.order.len() > (2 * self.map.len()).max(16) {
            let map = &self.map;
            self.order.retain(|&(seq, key)| map.get(&key).is_some_and(|e| e.seq == seq));
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room (not counting same-key refreshes).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Snapshot every live entry in LRU order (least recently used first).
    /// This is the journal-compaction feed: replaying the snapshot
    /// oldest-first through [`ResultCache::insert`] rebuilds the same
    /// recency order, so eviction behaves identically across a restart.
    pub fn entries_lru(&self) -> Vec<(u64, String)> {
        let mut v: Vec<(u64, u64, &String)> =
            self.map.iter().map(|(k, e)| (e.seq, *k, &e.value)).collect();
        v.sort_unstable_by_key(|&(seq, _, _)| seq);
        v.into_iter().map(|(_, k, val)| (k, val.clone())).collect()
    }

    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting_and_verbatim_replay() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, "{\"x\":1}".into());
        assert_eq!(c.get(1).as_deref(), Some("{\"x\":1}"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn probe_counts_hits_but_never_misses() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.probe(1), None);
        assert_eq!((c.hits(), c.misses()), (0, 0), "a declined probe is invisible");
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert_eq!(c.probe(1).as_deref(), Some("a"));
        assert_eq!((c.hits(), c.misses()), (1, 0));
        // A probe refreshes recency exactly like `get`: 2 is now the LRU.
        c.insert(3, "c".into());
        assert!(c.probe(2).is_none());
        assert!(c.probe(1).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert!(c.get(1).is_some()); // 1 is now MRU; 2 is LRU
        c.insert(3, "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(1, "a2".into());
        c.insert(2, "b".into());
        c.insert(3, "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest distinct key evicted exactly once");
        assert_eq!(c.get(3).as_deref(), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into());
        assert!(c.get(1).is_none());
        assert_eq!(c.misses(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn repeated_hits_keep_the_order_queue_bounded() {
        // The regression the seq scheme fixes: every hit used to scan the
        // whole recency deque. Hammer one entry and make sure the lazy
        // stamps are compacted instead of accumulating without bound.
        let mut c = ResultCache::new(4);
        for k in 0..4 {
            c.insert(k, format!("v{k}"));
        }
        for _ in 0..10_000 {
            assert!(c.get(2).is_some());
        }
        assert!(
            c.order_len() <= 16.max(2 * c.len()),
            "order queue must stay within a constant factor of the live set, got {}",
            c.order_len()
        );
        // Recency is still correct after heavy touching: 2 is MRU.
        c.insert(4, "v4".into());
        c.insert(5, "v5".into());
        c.insert(6, "v6".into());
        assert!(c.get(2).is_some(), "hot entry must have survived the evictions");
    }

    /// Property test against a reference model: a naive ordered-list LRU
    /// driven by the same random insert/hit/evict churn. At every step the
    /// real cache must agree with the model on membership, values,
    /// counters and bounds; at the end, [`ResultCache::entries_lru`] must
    /// reproduce the model's exact recency order (the journal-compaction
    /// contract).
    #[test]
    fn random_churn_matches_reference_model_and_stays_bounded() {
        use ncar_suite::SmallRng;

        // The model: front = least recently used, back = most recent.
        struct Model {
            cap: usize,
            list: Vec<(u64, String)>,
            hits: u64,
            misses: u64,
            evictions: u64,
        }
        impl Model {
            fn get(&mut self, k: u64) -> Option<String> {
                match self.list.iter().position(|(mk, _)| *mk == k) {
                    Some(i) => {
                        self.hits += 1;
                        let e = self.list.remove(i);
                        let v = e.1.clone();
                        self.list.push(e);
                        Some(v)
                    }
                    None => {
                        self.misses += 1;
                        None
                    }
                }
            }
            fn insert(&mut self, k: u64, v: String) {
                if let Some(i) = self.list.iter().position(|(mk, _)| *mk == k) {
                    self.list.remove(i);
                    self.list.push((k, v));
                    return;
                }
                self.list.push((k, v));
                while self.list.len() > self.cap {
                    self.list.remove(0);
                    self.evictions += 1;
                }
            }
        }

        let mut rng = SmallRng::seed_from_u64(0x4c52_5543); // "LRUC"
        for trial in 0..20 {
            let cap = rng.range(1, 9);
            let keyspace = (rng.range(1, 4) * cap + 1) as u64;
            let mut real = ResultCache::new(cap);
            let mut model = Model { cap, list: Vec::new(), hits: 0, misses: 0, evictions: 0 };
            for step in 0..1000u64 {
                let k = rng.next_u64() % keyspace;
                if rng.next_below(3) == 0 {
                    let v = format!("t{trial}s{step}");
                    real.insert(k, v.clone());
                    model.insert(k, v);
                } else {
                    assert_eq!(real.get(k), model.get(k), "trial {trial} step {step} key {k}");
                }
                assert!(real.len() <= cap, "capacity exceeded: {} > {cap}", real.len());
                assert!(
                    real.order_len() <= (2 * real.len()).max(16) + 1,
                    "order queue unbounded at trial {trial} step {step}: {}",
                    real.order_len()
                );
                assert_eq!(
                    (real.hits(), real.misses(), real.evictions()),
                    (model.hits, model.misses, model.evictions),
                    "counter drift at trial {trial} step {step}"
                );
            }
            assert_eq!(
                real.entries_lru(),
                model.list,
                "entries_lru must reproduce the model's recency order (trial {trial})"
            );
        }
    }

    #[test]
    fn lru_order_correct_under_interleaved_touches() {
        let mut c = ResultCache::new(3);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        c.insert(3, "c".into());
        // Touch in the order 3, 1 — making 2 the LRU.
        assert!(c.get(3).is_some());
        assert!(c.get(1).is_some());
        c.insert(4, "d".into());
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some() && c.get(3).is_some() && c.get(4).is_some());
        assert_eq!(c.evictions(), 1);
    }
}
