//! Content-addressed result cache with LRU eviction.
//!
//! Keys come from [`crate::proto::cache_key`]; values are the serialized
//! result payloads, stored verbatim so that a hit replays the exact bytes
//! of the run that populated it (the determinism tests rely on this).

use std::collections::{HashMap, VecDeque};

/// Bounded map from run identity to its serialized result.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    map: HashMap<u64, String>,
    /// Keys from least- to most-recently used. Each live key appears once.
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache holding at most `cap` results (`cap == 0` disables caching
    /// but still counts misses).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache { cap, map: HashMap::new(), order: VecDeque::new(), hits: 0, misses: 0 }
    }

    /// Look up a result, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: u64) -> Option<String> {
        match self.map.get(&key) {
            Some(v) => {
                self.hits += 1;
                let v = v.clone();
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a result, evicting the least-recently used
    /// entry when full.
    pub fn insert(&mut self, key: u64, value: String) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key, value).is_some() {
            self.touch(key);
            return;
        }
        self.order.push_back(key);
        while self.map.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting_and_verbatim_replay() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, "{\"x\":1}".into());
        assert_eq!(c.get(1).as_deref(), Some("{\"x\":1}"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert!(c.get(1).is_some()); // 1 is now MRU; 2 is LRU
        c.insert(3, "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(1, "a2".into());
        c.insert(2, "b".into());
        c.insert(3, "c".into());
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest distinct key evicted exactly once");
        assert_eq!(c.get(3).as_deref(), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into());
        assert!(c.get(1).is_none());
        assert_eq!(c.misses(), 1);
        assert!(c.is_empty());
    }
}
