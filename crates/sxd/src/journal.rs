//! Durable write-ahead result journal and drain-checkpoint restart specs.
//!
//! The paper's SX-4 ran under an operating system whose job story did not
//! end at the process boundary: SUPER-UX checkpointed NQS jobs to disk and
//! restarted them after a reboot (§2.6.2). This module gives `sxd` the
//! same property for its own state. Two files live under `--state-dir`:
//!
//! - `results.sxj` — the result journal: an 8-byte magic header followed
//!   by checksummed [`WireWriter::put_record`] records, one per completed
//!   run, appended as results are produced. On startup the journal is
//!   replayed oldest-first into the result cache, so a configuration that
//!   completed before a crash answers from cache — byte-identically —
//!   after restart.
//! - `restart.sxj` — restart specs written by a drain that hit its
//!   deadline: each still-pending job is split at its progress fraction by
//!   [`superux::nqs::checkpoint_split`] and the *remaining* work persisted
//!   here; the next boot re-admits it.
//!
//! ## Crash model
//!
//! Appends go through a single `write(2)` of the complete record, so a
//! killed *process* (the `kill -9` the fault tests throw) never loses a
//! record the daemon reported durable; only an OS crash could, and the
//! journal is a cache — the worst case is recomputation, never wrong
//! bytes. What a torn append *can* leave is a partial record at the tail.
//! Records are length-prefixed and FNV-digested, so replay detects the
//! torn tail, truncates the file at the last good record boundary, and
//! carries on; corruption is never fatal and never served.
//!
//! Compaction (triggered once appends since the last snapshot exceed a
//! multiple of the cache capacity) rewrites the live cache entries to a
//! temp file, fsyncs, and renames over the journal — crash-atomic at every
//! step: before the rename the old journal is intact, after it the
//! snapshot is.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ncar_suite::{WireReader, WireWriter};

use crate::faultpoint::{self, Fault};

/// Journal file magic: identifies the format and its version.
const MAGIC: &[u8; 8] = b"SXDJRNL1";

/// Record kind for a completed result (`u64` cache key + payload bytes).
const KIND_RESULT: u16 = 1;
/// Record kind for a drain-checkpoint restart spec.
const KIND_RESTART: u16 = 2;

/// Journal file name under the state directory.
pub const JOURNAL_FILE: &str = "results.sxj";
/// Restart-spec file name under the state directory.
pub const RESTART_FILE: &str = "restart.sxj";

/// Append-only result journal with torn-tail recovery and snapshot
/// compaction. All methods take `&mut self`; the server wraps the journal
/// in a `Mutex` (locked *before* the cache — see `server.rs` lock order).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records appended this process lifetime (not counting compaction
    /// rewrites).
    appended: u64,
    /// Good records replayed into the cache at open.
    replayed: u64,
    /// Bytes of torn/corrupt tail truncated at open (0 = clean).
    truncated_bytes: u64,
    /// Snapshot compactions completed this process lifetime.
    compactions: u64,
    /// Appends since the last compaction (or open), the compaction
    /// trigger.
    since_compact: u64,
}

impl Journal {
    /// Open (creating if necessary) the journal under `dir` and replay it:
    /// returns the journal plus the surviving `(key, payload)` entries
    /// oldest-first, ready to insert into the cache in order so LRU
    /// recency is preserved across the restart. A torn or corrupt tail is
    /// truncated in place; a file with the wrong magic is discarded and
    /// restarted empty (the journal is a cache, so the safe response to an
    /// unreadable file is recomputation, not refusal to boot).
    pub fn open(dir: &Path) -> io::Result<(Journal, Vec<(u64, String)>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        // A leftover temp file means a crash mid-compaction; the rename
        // never happened, so it is dead weight.
        let _ = fs::remove_file(dir.join(format!("{JOURNAL_FILE}.tmp")));

        let mut bytes = Vec::new();
        if let Ok(mut f) = File::open(&path) {
            f.read_to_end(&mut bytes)?;
        }

        let mut entries: Vec<(u64, String)> = Vec::new();
        let mut replayed = 0u64;
        let mut good_end = MAGIC.len();
        let fresh = bytes.is_empty();
        let mut discard_all = false;
        if !fresh {
            if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                discard_all = true;
            } else {
                let body = &bytes[MAGIC.len()..];
                let mut r = WireReader::new(body);
                while r.remaining() > 0 {
                    let Ok(payload) = r.try_get_record() else { break };
                    // The digest already vouches for the bytes; a record
                    // that decodes to the wrong shape is from a future
                    // format and ends the replay at the previous boundary.
                    let mut p = WireReader::new(payload);
                    let Ok(kind) = p.try_get_u16() else { break };
                    if kind != KIND_RESULT {
                        break;
                    }
                    let Ok(key) = p.try_get_u64() else { break };
                    let Ok(value) = std::str::from_utf8(p.rest()) else { break };
                    entries.push((key, value.to_string()));
                    replayed += 1;
                    good_end = MAGIC.len() + (body.len() - r.remaining());
                }
            }
        }

        let truncated_bytes = if discard_all {
            bytes.len() as u64
        } else {
            (bytes.len() - good_end.min(bytes.len())) as u64
        };

        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if fresh || discard_all {
            file.set_len(0)?;
            let mut f = &file;
            f.write_all(MAGIC)?;
            entries.clear();
            replayed = 0;
        } else if truncated_bytes > 0 {
            // Cut the torn tail so the next append lands on a record
            // boundary instead of extending garbage.
            file.set_len(good_end as u64)?;
        }

        Ok((
            Journal {
                file,
                path,
                appended: 0,
                replayed,
                truncated_bytes,
                compactions: 0,
                since_compact: 0,
            },
            entries,
        ))
    }

    /// Append one completed result. The record is assembled in memory and
    /// written with a single `write_all`, so a process kill either lands
    /// the whole record or (at worst, mid-syscall) a detectable torn tail.
    /// No per-append fsync: the threat model is process death, not power
    /// loss, and `write(2)`-ed pages survive the former.
    pub fn append(&mut self, key: u64, payload: &str) -> io::Result<()> {
        faultpoint::check("journal.append")?;
        let bytes = encode_result(key, payload);
        match faultpoint::armed("journal.append.torn") {
            Some(Fault::Crash) => {
                // Simulate the kill arriving mid-write: half the record
                // reaches the file, then the process dies.
                let _ = self.file.write_all(&bytes[..bytes.len() / 2]);
                let _ = self.file.sync_data();
                std::process::abort();
            }
            Some(Fault::IoError) => {
                return Err(io::Error::other("fault injected at journal.append.torn"));
            }
            None => {}
        }
        self.file.write_all(&bytes)?;
        self.appended += 1;
        self.since_compact += 1;
        Ok(())
    }

    /// Has enough been appended since the last snapshot that the journal
    /// should be compacted? The threshold is a multiple of the cache
    /// capacity: the journal can hold at most `cap` *live* entries, so a
    /// file several times that deep is mostly superseded records.
    pub fn should_compact(&self, cap: usize) -> bool {
        self.since_compact >= (4 * cap.max(1)).max(8) as u64
    }

    /// Rewrite the journal as a snapshot of `entries` (pass them
    /// oldest-first so replay rebuilds the same LRU order). Temp-file +
    /// fsync + rename: a crash before the rename leaves the old journal
    /// untouched; after it, the snapshot is complete.
    pub fn compact(&mut self, entries: &[(u64, String)]) -> io::Result<()> {
        let tmp = self.path.with_extension("sxj.tmp");
        let mut body = Vec::with_capacity(MAGIC.len() + entries.len() * 64);
        body.extend_from_slice(MAGIC);
        for (key, payload) in entries {
            body.extend_from_slice(&encode_result(*key, payload));
        }
        {
            let mut f = File::create(&tmp)?;
            match faultpoint::armed("journal.compact.write") {
                Some(Fault::Crash) => {
                    // Die with the snapshot half-written: the rename never
                    // happens, so the live journal must stay intact.
                    let _ = f.write_all(&body[..body.len() / 2]);
                    let _ = f.sync_data();
                    std::process::abort();
                }
                Some(Fault::IoError) => {
                    return Err(io::Error::other("fault injected at journal.compact.write"));
                }
                None => {}
            }
            f.write_all(&body)?;
            f.sync_all()?;
        }
        faultpoint::check("journal.compact.rename")?;
        fs::rename(&tmp, &self.path)?;
        // The old handle points at the unlinked inode; reopen on the new
        // snapshot so subsequent appends extend it.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.compactions += 1;
        self.since_compact = 0;
        Ok(())
    }

    pub fn appended(&self) -> u64 {
        self.appended
    }

    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

fn encode_result(key: u64, payload: &str) -> Vec<u8> {
    let mut inner = WireWriter::with_capacity(2 + 8 + payload.len());
    inner.put_u16(KIND_RESULT);
    inner.put_u64(key);
    inner.put_bytes(payload.as_bytes());
    let mut w = WireWriter::with_capacity(inner.len() + 12);
    w.put_record(&inner.into_vec());
    w.into_vec()
}

/// The persisted remainder of a job a drain checkpointed at its deadline.
/// On the next boot the server re-admits it with `solo_seconds` of work
/// left (the output of [`superux::nqs::checkpoint_split`]'s restart half).
#[derive(Debug, Clone, PartialEq)]
pub struct RestartSpec {
    pub suite: String,
    pub machine: String,
    /// Sorted `(key, value)` parameter pairs, as the cache key uses them.
    pub params: Vec<(String, String)>,
    /// Simulated seconds of work remaining at the checkpoint.
    pub solo_seconds: f64,
    /// Fraction of the original job already done when checkpointed.
    pub fraction_done: f64,
}

impl RestartSpec {
    fn encode(&self, w: &mut WireWriter) {
        let mut inner = WireWriter::with_capacity(64);
        inner.put_u16(KIND_RESTART);
        inner.put_str(&self.suite);
        inner.put_str(&self.machine);
        inner.put_u32(self.params.len() as u32);
        for (k, v) in &self.params {
            inner.put_str(k);
            inner.put_str(v);
        }
        inner.put_f64(self.solo_seconds);
        inner.put_f64(self.fraction_done);
        w.put_record(&inner.into_vec());
    }

    fn decode(payload: &[u8]) -> Option<RestartSpec> {
        let mut p = WireReader::new(payload);
        if p.try_get_u16().ok()? != KIND_RESTART {
            return None;
        }
        let suite = p.try_get_str().ok()?;
        let machine = p.try_get_str().ok()?;
        let n = p.try_get_u32().ok()? as usize;
        let mut params = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            params.push((p.try_get_str().ok()?, p.try_get_str().ok()?));
        }
        let solo_seconds = p.try_get_f64().ok()?;
        let fraction_done = p.try_get_f64().ok()?;
        Some(RestartSpec { suite, machine, params, solo_seconds, fraction_done })
    }
}

/// Persist drain-checkpoint restart specs atomically (temp + fsync +
/// rename). The caller only marks jobs as checkpointed *after* this
/// returns `Ok`, so a crash or IO fault here leaves them un-checkpointed —
/// work is never considered saved until it durably is.
pub fn write_restart_specs(dir: &Path, specs: &[RestartSpec]) -> io::Result<()> {
    faultpoint::check("drain.persist")?;
    fs::create_dir_all(dir)?;
    let path = dir.join(RESTART_FILE);
    let tmp = dir.join(format!("{RESTART_FILE}.tmp"));
    let mut w = WireWriter::with_capacity(MAGIC.len() + specs.len() * 96);
    w.put_bytes(MAGIC);
    for s in specs {
        s.encode(&mut w);
    }
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&w.into_vec())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)
}

/// Load the restart specs persisted by a previous drain. A missing file
/// means no checkpointed work; a torn or alien tail ends the load at the
/// last good record (same discipline as the journal).
pub fn load_restart_specs(dir: &Path) -> Vec<RestartSpec> {
    let mut bytes = Vec::new();
    match File::open(dir.join(RESTART_FILE)) {
        Ok(mut f) => {
            if f.read_to_end(&mut bytes).is_err() {
                return Vec::new();
            }
        }
        Err(_) => return Vec::new(),
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Vec::new();
    }
    let mut r = WireReader::new(&bytes[MAGIC.len()..]);
    let mut specs = Vec::new();
    while r.remaining() > 0 {
        let Ok(payload) = r.try_get_record() else { break };
        let Some(spec) = RestartSpec::decode(payload) else { break };
        specs.push(spec);
    }
    specs
}

/// Delete the restart-spec file: called only after every loaded spec has
/// been re-admitted and retired, so a crash mid-boot re-loads (and the
/// result cache dedupes) rather than losing work.
pub fn clear_restart_specs(dir: &Path) -> io::Result<()> {
    match fs::remove_file(dir.join(RESTART_FILE)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sxd-journal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replay_returns_appends_in_order_across_reopen() {
        let dir = scratch("replay");
        {
            let (mut j, entries) = Journal::open(&dir).unwrap();
            assert!(entries.is_empty());
            j.append(11, "{\"a\":1}").unwrap();
            j.append(22, "{\"b\":2}").unwrap();
            j.append(33, "{\"c\":3}").unwrap();
            assert_eq!(j.appended(), 3);
        }
        let (j, entries) = Journal::open(&dir).unwrap();
        assert_eq!(j.replayed(), 3);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(
            entries,
            vec![
                (11, "{\"a\":1}".to_string()),
                (22, "{\"b\":2}".to_string()),
                (33, "{\"c\":3}".to_string()),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue_cleanly() {
        let dir = scratch("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(1, "first").unwrap();
            j.append(2, "second").unwrap();
        }
        // Tear the tail: chop bytes off the last record, the way a kill
        // mid-write would.
        let path = dir.join(JOURNAL_FILE);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut j, entries) = Journal::open(&dir).unwrap();
        assert_eq!(entries, vec![(1, "first".to_string())]);
        assert!(j.truncated_bytes() > 0, "the torn tail was detected");
        // The file was cut at the record boundary, so a fresh append and
        // another replay see both records intact.
        j.append(3, "third").unwrap();
        drop(j);
        let (_, entries) = Journal::open(&dir).unwrap();
        assert_eq!(entries, vec![(1, "first".to_string()), (3, "third".to_string())]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_byte_cuts_replay_at_the_boundary_not_the_boot() {
        let dir = scratch("corrupt");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(1, "keep-me").unwrap();
            j.append(2, "flip-me").unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x20; // inside the second record's payload
        fs::write(&path, &bytes).unwrap();

        let (j, entries) = Journal::open(&dir).unwrap();
        assert_eq!(entries, vec![(1, "keep-me".to_string())]);
        assert!(j.truncated_bytes() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn alien_magic_restarts_the_journal_empty() {
        let dir = scratch("magic");
        fs::write(dir.join(JOURNAL_FILE), b"NOTAJRNLgarbage").unwrap();
        let (j, entries) = Journal::open(&dir).unwrap();
        assert!(entries.is_empty());
        assert_eq!(j.replayed(), 0);
        assert!(j.truncated_bytes() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_to_the_live_set_and_resets_the_trigger() {
        let dir = scratch("compact");
        let (mut j, _) = Journal::open(&dir).unwrap();
        for i in 0..10u64 {
            j.append(i % 2, format!("v{i}").as_str()).unwrap();
        }
        assert!(j.should_compact(2), "10 appends over cap 2 must trigger");
        // The cache's live view: two keys, latest values, LRU order.
        let live = vec![(0, "v8".to_string()), (1, "v9".to_string())];
        j.compact(&live).unwrap();
        assert!(!j.should_compact(2));
        assert_eq!(j.compactions(), 1);
        // Appends after compaction extend the snapshot.
        j.append(7, "post").unwrap();
        drop(j);
        let (_, entries) = Journal::open(&dir).unwrap();
        assert_eq!(
            entries,
            vec![(0, "v8".to_string()), (1, "v9".to_string()), (7, "post".to_string())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_specs_roundtrip_and_tolerate_missing_or_torn_files() {
        let dir = scratch("restart");
        assert!(load_restart_specs(&dir).is_empty(), "missing file is empty, not an error");
        let specs = vec![
            RestartSpec {
                suite: "shal".into(),
                machine: "sx4-9.2".into(),
                params: vec![("n".into(), "64".into())],
                solo_seconds: 12.5,
                fraction_done: 0.75,
            },
            RestartSpec {
                suite: "table2".into(),
                machine: "sx4-9.2".into(),
                params: vec![],
                solo_seconds: 3.0,
                fraction_done: 0.25,
            },
        ];
        write_restart_specs(&dir, &specs).unwrap();
        assert_eq!(load_restart_specs(&dir), specs);

        // Tear the second record: the first must still load.
        let path = dir.join(RESTART_FILE);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        assert_eq!(load_restart_specs(&dir), specs[..1].to_vec());

        clear_restart_specs(&dir).unwrap();
        assert!(load_restart_specs(&dir).is_empty());
        clear_restart_specs(&dir).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }
}
