//! Client side of the protocol: one-request/one-reply over a persistent
//! connection, plus the `flood` load generator used by the acceptance
//! gate (`ncar-bench flood --clients 8 --jobs 64`).

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ncar_suite::Json;
use sxsim::presets;

use crate::error::SxdError;
use crate::proto::{cache_key, read_frame, Request, MAX_REPLY_FRAME, MAX_REQUEST_FRAME};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A successful submit, decoded.
#[derive(Debug, Clone)]
pub struct Submission {
    pub cached: bool,
    /// Content address of the run, as the server printed it (16 hex digits).
    pub key: String,
    /// The result object. Its `to_string()` reproduces the server's bytes
    /// (both sides share the same deterministic JSON printer).
    pub result: Json,
    /// The raw reply line, for byte-level comparisons.
    pub raw: String,
}

impl Client {
    pub fn connect(addr: &str) -> Result<Client, SxdError> {
        let writer = TcpStream::connect(addr).map_err(SxdError::io)?;
        let reader = BufReader::new(writer.try_clone().map_err(SxdError::io)?);
        Ok(Client { reader, writer })
    }

    /// [`Client::connect`] with bounded exponential backoff: up to
    /// `attempts` tries, sleeping `base`, `2·base`, `4·base`, … (capped at
    /// one second) between failures. Exists for startup races — a router
    /// dialing members that are still binding, `flood` aimed at a daemon
    /// whose listener is not up yet. Exhaustion is the *terminal* typed
    /// error [`SxdError::Retries`]: the caller has already waited through
    /// the whole schedule, so there is no point retrying the error itself.
    pub fn connect_with_retry(
        addr: &str,
        attempts: usize,
        base: Duration,
    ) -> Result<Client, SxdError> {
        let attempts = attempts.max(1);
        let mut delay = base;
        let mut last = String::new();
        for attempt in 0..attempts {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = e.detail(),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(1));
            }
        }
        Err(SxdError::Retries { attempts, detail: format!("{addr}: {last}") })
    }

    /// Send one raw line and return the raw reply line. The building block
    /// for everything else, and what the CI smoke test uses to throw
    /// malformed frames at the daemon.
    pub fn raw(&mut self, line: &str) -> Result<String, SxdError> {
        writeln!(self.writer, "{line}").map_err(SxdError::io)?;
        read_frame(&mut self.reader, MAX_REPLY_FRAME)?
            .ok_or_else(|| SxdError::Io { detail: "server closed the connection".into() })
    }

    /// Send `lines` back-to-back — one buffered write, so the whole batch
    /// leaves in a single syscall burst — then read exactly one raw reply
    /// per line, in order. This is the client half of frame pipelining:
    /// it only pays off against a server whose `pipeline_depth` covers the
    /// batch, but it is *correct* against any server, because replies are
    /// always delivered in request order.
    pub fn raw_pipelined(&mut self, lines: &[String]) -> Result<Vec<String>, SxdError> {
        let mut buf = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            buf.push_str(line);
            buf.push('\n');
        }
        self.writer.write_all(buf.as_bytes()).map_err(SxdError::io)?;
        let mut replies = Vec::with_capacity(lines.len());
        for _ in 0..lines.len() {
            replies.push(read_frame(&mut self.reader, MAX_REPLY_FRAME)?.ok_or_else(|| {
                SxdError::Io { detail: "server closed the connection mid-pipeline".into() }
            })?);
        }
        Ok(replies)
    }

    /// Pipeline a batch of submits and verify strict reply order: every
    /// request leaves the socket before any reply is read, and each
    /// decoded reply's `key` must equal the content address its own
    /// request hashes to — so a server answering out of order is caught
    /// as a typed error, never silently interleaved.
    pub fn submit_pipelined(
        &mut self,
        batch: &[(String, String, BTreeMap<String, String>)],
    ) -> Result<Vec<Submission>, SxdError> {
        let mut lines = Vec::with_capacity(batch.len());
        let mut expected: Vec<Option<u64>> = Vec::with_capacity(batch.len());
        for (suite, machine, params) in batch {
            let req = Request::Submit {
                suite: suite.clone(),
                machine: machine.clone(),
                params: params.clone(),
            };
            let line = req.to_line();
            if line.len() > MAX_REQUEST_FRAME {
                return Err(SxdError::FrameTooLong { len: line.len(), max: MAX_REQUEST_FRAME });
            }
            lines.push(line);
            // An unknown machine has no client-side key; its reply is a
            // typed error and skips the order check.
            expected.push(presets::by_name(machine).map(|m| cache_key(suite, &m, params)));
        }
        let replies = self.raw_pipelined(&lines)?;
        let mut out = Vec::with_capacity(replies.len());
        for (i, raw) in replies.into_iter().enumerate() {
            let doc = Json::parse(&raw)
                .map_err(|e| SxdError::BadJson { detail: format!("reply {i}: {e}") })?;
            match doc.get("ok").and_then(Json::as_bool) {
                Some(true) => {}
                _ => {
                    let err = doc.get("error").cloned().unwrap_or(Json::Null);
                    return Err(SxdError::Remote {
                        kind: err
                            .get("kind")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        detail: err.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
                    });
                }
            }
            let key = doc.get("key").and_then(Json::as_str).unwrap_or("").to_string();
            if let Some(want) = expected[i] {
                let want = format!("{want:016x}");
                if key != want {
                    return Err(SxdError::BadJson {
                        detail: format!(
                            "pipelined reply {i} is out of order: key {key} but request \
                             hashes to {want}"
                        ),
                    });
                }
            }
            let cached = doc.get("cached").and_then(Json::as_bool).ok_or_else(|| {
                SxdError::BadJson { detail: "submit reply lacks \"cached\"".into() }
            })?;
            let result = doc.get("result").cloned().ok_or_else(|| SxdError::BadJson {
                detail: "submit reply lacks \"result\"".into(),
            })?;
            out.push(Submission { cached, key, result, raw });
        }
        Ok(out)
    }

    /// Send a line, parse the reply, surface `ok:false` as a typed error.
    ///
    /// Preflights the frame cap before writing a byte: the server would
    /// reject an oversized line with the same `frame_too_long` kind *and
    /// then close the connection* (there is no resync point inside an
    /// unterminated frame), so catching it client-side keeps the
    /// connection usable. [`Client::raw`] deliberately skips this check —
    /// it exists to throw hostile frames at the server.
    fn roundtrip(&mut self, line: &str) -> Result<(Json, String), SxdError> {
        if line.len() > MAX_REQUEST_FRAME {
            return Err(SxdError::FrameTooLong { len: line.len(), max: MAX_REQUEST_FRAME });
        }
        let raw = self.raw(line)?;
        let doc =
            Json::parse(&raw).map_err(|e| SxdError::BadJson { detail: format!("reply: {e}") })?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok((doc, raw)),
            Some(false) => {
                let err = doc.get("error").cloned().unwrap_or(Json::Null);
                Err(SxdError::Remote {
                    kind: err.get("kind").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                    detail: err.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
                })
            }
            None => Err(SxdError::BadJson { detail: "reply lacks a boolean \"ok\"".into() }),
        }
    }

    pub fn submit(
        &mut self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
    ) -> Result<Submission, SxdError> {
        let req = Request::Submit {
            suite: suite.to_string(),
            machine: machine.to_string(),
            params: params.clone(),
        };
        let (doc, raw) = self.roundtrip(&req.to_line())?;
        let cached = doc
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or_else(|| SxdError::BadJson { detail: "submit reply lacks \"cached\"".into() })?;
        let key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| SxdError::BadJson { detail: "submit reply lacks \"key\"".into() })?
            .to_string();
        let result = doc
            .get("result")
            .cloned()
            .ok_or_else(|| SxdError::BadJson { detail: "submit reply lacks \"result\"".into() })?;
        Ok(Submission { cached, key, result, raw })
    }

    /// Fetch the daemon's counters as a JSON object (the `stats` member).
    pub fn stats(&mut self) -> Result<Json, SxdError> {
        let (doc, _) = self.roundtrip(&Request::Stats.to_line())?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| SxdError::BadJson { detail: "stats reply lacks \"stats\"".into() })
    }

    /// Fetch the full observability snapshot (the `metrics` member:
    /// embedded stats, gauges, per-stage latency histograms, per-suite
    /// breakdown and the `reconciled` flag).
    pub fn metrics(&mut self) -> Result<Json, SxdError> {
        let (doc, _) = self.roundtrip(&Request::Metrics.to_line())?;
        doc.get("metrics")
            .cloned()
            .ok_or_else(|| SxdError::BadJson { detail: "metrics reply lacks \"metrics\"".into() })
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), SxdError> {
        self.roundtrip(&Request::Shutdown.to_line()).map(|_| ())
    }

    /// Ask the daemon to drain gracefully: stop admission, give in-flight
    /// jobs `deadline_ms` to finish (the server's configured default when
    /// `None`), checkpoint the stragglers to restart specs, then exit.
    pub fn drain(&mut self, deadline_ms: Option<u64>) -> Result<(), SxdError> {
        self.roundtrip(&Request::Drain { deadline_ms, member: None }.to_line()).map(|_| ())
    }

    /// Ask a cluster router to drain one shard member and hand its
    /// keyspace to the ring successor. A single-node daemon rejects this
    /// with `bad_request`.
    pub fn drain_member(
        &mut self,
        member: usize,
        deadline_ms: Option<u64>,
    ) -> Result<(), SxdError> {
        self.roundtrip(&Request::Drain { deadline_ms, member: Some(member) }.to_line()).map(|_| ())
    }

    /// Ask a cluster router which member owns a configuration. Returns the
    /// routing reply (`member`, `shard`, `key` fields) without running
    /// anything.
    pub fn route(
        &mut self,
        suite: &str,
        machine: &str,
        params: &BTreeMap<String, String>,
    ) -> Result<Json, SxdError> {
        let req = Request::Route {
            suite: suite.to_string(),
            machine: machine.to_string(),
            params: params.clone(),
        };
        self.roundtrip(&req.to_line()).map(|(doc, _)| doc)
    }

    /// Insert an already-rendered result under its content address (the
    /// hand-off path). `payload` must be the result object's exact bytes.
    pub fn put(&mut self, key: u64, payload: &str) -> Result<(), SxdError> {
        let req = Request::Put { key, payload: payload.to_string() };
        self.roundtrip(&req.to_line()).map(|_| ())
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct FloodConfig {
    pub addr: String,
    pub clients: usize,
    pub jobs: usize,
    /// Suites cycled through round-robin; repeats are what exercises the
    /// cache (Table 6's ensemble regime: many copies of the same code).
    pub suites: Vec<String>,
    pub machine: String,
    /// Frames each client keeps in flight: `0`/`1` submits serially (one
    /// round trip per job, the classic shape); above 1, jobs go out in
    /// pipelined batches of this size with strict reply-order checking.
    pub pipeline: usize,
}

/// What the flood observed, checked against the acceptance criteria.
#[derive(Debug, Clone)]
pub struct FloodOutcome {
    pub submitted: usize,
    pub completed: usize,
    pub cached_replies: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub accepted: u64,
    pub done: u64,
    pub rejected: u64,
    pub queued: u64,
    pub running: u64,
    /// Submits that coalesced onto an identical in-flight run instead of
    /// executing again (the single-flight dedup at work).
    pub coalesced: u64,
    /// Frames the daemon answered inline on its reactor thread.
    pub fastpath_hits: u64,
    /// The daemon's own snapshot-consistency verdict: the `job` latency
    /// histogram count equals `done + rejected` in the same snapshot.
    pub reconciled: bool,
    /// Wall seconds from the submit barrier dropping to the last client
    /// finishing (connect time excluded).
    pub wall: f64,
    /// `completed / wall` — the number BENCH_7's `sxd_flood` reports.
    pub jobs_per_sec: f64,
    /// Empty when every acceptance criterion held.
    pub problems: Vec<String>,
}

impl FloodOutcome {
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Hammer the daemon: `clients` concurrent connections submitting `jobs`
/// jobs round-robin, then reconcile the STATS counters. Fails (via
/// `problems`) on any dropped job, a zero cache hit-rate, or counters
/// that do not satisfy `accepted == done + rejected + queued + running`.
pub fn flood(config: &FloodConfig) -> Result<FloodOutcome, SxdError> {
    let suites =
        if config.suites.is_empty() { vec!["toy".to_string()] } else { config.suites.clone() };
    let clients = config.clients.max(1);
    let per_client: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            (0..config.jobs)
                .filter(|j| j % clients == c)
                .map(|j| suites[j % suites.len()].clone())
                .collect()
        })
        .collect();

    // Clients connect first, then cross a barrier before submitting, so
    // the first wave hits the daemon simultaneously — the regime where
    // single-flight coalescing (rather than the cache) must dedup.
    let start = std::sync::Arc::new(std::sync::Barrier::new(clients));
    let pipeline = config.pipeline.max(1);
    let mut handles = Vec::new();
    for assigned in per_client {
        let addr = config.addr.clone();
        let machine = config.machine.clone();
        let start = std::sync::Arc::clone(&start);
        handles.push(std::thread::spawn(move || -> Result<(usize, usize, f64), SxdError> {
            // Retry the connect: the daemon may still be binding when the
            // flood starts (CI boots both in one script).
            let mut client = Client::connect_with_retry(&addr, 6, Duration::from_millis(25))?;
            start.wait();
            let t0 = Instant::now();
            let params = BTreeMap::new();
            let mut completed = 0;
            let mut cached = 0;
            if pipeline > 1 {
                for chunk in assigned.chunks(pipeline) {
                    let batch: Vec<_> = chunk
                        .iter()
                        .map(|s| (s.clone(), machine.clone(), params.clone()))
                        .collect();
                    for sub in client.submit_pipelined(&batch)? {
                        completed += 1;
                        if sub.cached {
                            cached += 1;
                        }
                    }
                }
            } else {
                for suite in &assigned {
                    let sub = client.submit(suite, &machine, &params)?;
                    completed += 1;
                    if sub.cached {
                        cached += 1;
                    }
                }
            }
            Ok((completed, cached, t0.elapsed().as_secs_f64()))
        }));
    }

    let mut completed = 0;
    let mut cached_replies = 0;
    let mut wall = 0.0f64;
    let mut problems = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok((c, hit, secs))) => {
                completed += c;
                cached_replies += hit;
                // The barrier synchronises every client's start, so the
                // flood's wall time is the slowest client's elapsed time.
                wall = wall.max(secs);
            }
            Ok(Err(e)) => problems.push(format!("client failed: {e}")),
            Err(_) => problems.push("client thread panicked".into()),
        }
    }
    if completed != config.jobs {
        problems.push(format!("dropped jobs: {completed}/{} completed", config.jobs));
    }

    // One connection reads both views; METRICS embeds its own stats and
    // the daemon's reconciliation verdict over a single atomic snapshot.
    let mut observer = Client::connect(&config.addr)?;
    let metrics = observer.metrics()?;
    let stats = metrics.get("stats").cloned().unwrap_or(Json::Null);
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    let cache = stats.get("cache").cloned().unwrap_or(Json::Null);
    let cn = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut outcome = FloodOutcome {
        submitted: config.jobs,
        completed,
        cached_replies,
        cache_hits: cn("hits"),
        cache_misses: cn("misses"),
        accepted: n("accepted"),
        done: n("done"),
        rejected: n("rejected"),
        queued: n("queued"),
        running: n("running"),
        coalesced: n("coalesced"),
        fastpath_hits: n("fastpath_hits"),
        reconciled: metrics.get("reconciled").and_then(Json::as_bool).unwrap_or(false),
        wall,
        jobs_per_sec: if wall > 0.0 { completed as f64 / wall } else { 0.0 },
        problems,
    };
    if outcome.cache_hits == 0 && config.jobs > suites.len() {
        outcome.problems.push("cache hit-rate is zero despite repeated configs".into());
    }
    let recon = outcome.done + outcome.rejected + outcome.queued + outcome.running;
    if outcome.accepted != recon {
        outcome.problems.push(format!(
            "counters do not reconcile: accepted={} but done+rejected+queued+running={recon}",
            outcome.accepted
        ));
    }
    if !outcome.reconciled {
        outcome
            .problems
            .push("metrics snapshot is not reconciled: job histogram != done+rejected".into());
    }
    Ok(outcome)
}
