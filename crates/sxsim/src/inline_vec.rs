//! A tiny fixed-capacity inline vector for hot-path descriptors.
//!
//! [`crate::VecOp`] is constructed millions of times per benchmark run;
//! holding its access lists in `Vec` meant two heap allocations per
//! descriptor. `InlineVec<T, N>` stores up to `N` elements inline — no
//! allocator, `Copy` when `T: Copy` — which is all a vector operation
//! needs: no machine here has more than a handful of memory streams per
//! instruction. The type is deliberately minimal (build from a slice,
//! push, deref to `[T]`); it is a descriptor holder, not a collection
//! library.

use std::ops::Deref;

/// Up to `N` elements of `T` stored inline; the live prefix is the value.
#[derive(Debug, Clone, Copy)]
pub struct InlineVec<T, const N: usize> {
    data: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Empty list.
    pub fn new() -> InlineVec<T, N> {
        assert!(N <= u8::MAX as usize, "InlineVec capacity must fit in a u8");
        InlineVec { data: [T::default(); N], len: 0 }
    }

    /// Copy a slice in. Panics if `items.len() > N` — descriptor widths
    /// are static properties of call sites, so overflow is a programming
    /// error, not a runtime condition.
    pub fn from_slice(items: &[T]) -> InlineVec<T, N> {
        assert!(items.len() <= N, "InlineVec<_, {N}> cannot hold {} items", items.len());
        let mut v = InlineVec::new();
        v.data[..items.len()].copy_from_slice(items);
        v.len = items.len() as u8;
        v
    }

    /// Append one element. Panics when full (same contract as
    /// [`InlineVec::from_slice`]).
    pub fn push(&mut self, item: T) {
        assert!((self.len as usize) < N, "InlineVec<_, {N}> is full");
        self.data[self.len as usize] = item;
        self.len += 1;
    }

    /// The live prefix.
    pub fn as_slice(&self) -> &[T] {
        &self.data[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data[..self.len as usize]
    }
}

/// Equality is over the live prefix only; dead tail slots never compare.
impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self[..] == other[..]
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_roundtrip_and_deref() {
        let v: InlineVec<u32, 4> = InlineVec::from_slice(&[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.iter().sum::<u32>(), 6);
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn equality_ignores_dead_tail() {
        let mut a: InlineVec<u32, 4> = InlineVec::from_slice(&[7, 8, 9]);
        let b: InlineVec<u32, 4> = InlineVec::from_slice(&[7, 8]);
        assert_ne!(a, b);
        // Rebuild `a` with the same live prefix as `b` but different
        // (dead) history in slot 2.
        a = InlineVec::from_slice(&a[..2]);
        assert_eq!(a, b);
    }

    #[test]
    fn push_and_copy_semantics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(5);
        let copy = v; // Copy, not move
        v.push(6);
        assert_eq!(v.as_slice(), &[5, 6]);
        assert_eq!(copy.as_slice(), &[5]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn overflowing_from_slice_panics() {
        let _: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "is full")]
    fn overflowing_push_panics() {
        let mut v: InlineVec<u32, 1> = InlineVec::from_slice(&[1]);
        v.push(2);
    }
}
