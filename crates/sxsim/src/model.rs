//! Parameterized machine descriptions.
//!
//! A [`MachineModel`] captures everything the timing layer needs to price an
//! operation stream: clock period, vector unit geometry (if any), scalar
//! unit, banked memory system, intrinsic-function costs, and node-level
//! parameters (processor count, sustainable node bandwidth, barrier cost).
//!
//! Presets for the machines in the paper live in [`crate::presets`].

/// Classes of elementwise vector arithmetic, used to pick the pipe set that
/// serves an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VopClass {
    /// Add/subtract/shift class — served by the add/shift pipe set.
    Add,
    /// Multiply class — served by the multiply pipe set.
    Mul,
    /// Chained multiply-add — on a chaining machine the add and multiply
    /// pipe sets overlap, producing two flops per element slot.
    Fma,
    /// Divide/reciprocal — served by the divide pipe set (lower throughput).
    Div,
    /// Logical/mask operations — no flops.
    Logical,
}

/// Vectorizable intrinsic functions measured by ELEFUNT and dominating
/// RADABS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Exp,
    Log,
    /// `x.powf(y)` — priced as roughly EXP + LOG on every machine.
    Pow,
    Sin,
    Sqrt,
}

impl Intrinsic {
    /// All intrinsics, in the order the paper's Table 3 lists them.
    pub const ALL: [Intrinsic; 5] =
        [Intrinsic::Exp, Intrinsic::Log, Intrinsic::Pow, Intrinsic::Sin, Intrinsic::Sqrt];

    /// Uppercase Fortran-style name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Exp => "EXP",
            Intrinsic::Log => "LOG",
            Intrinsic::Pow => "PWR",
            Intrinsic::Sin => "SIN",
            Intrinsic::Sqrt => "SQRT",
        }
    }

    /// Cray-hardware-counter-equivalent flops per call.
    ///
    /// The Cray performance monitor counted the real adds/multiplies executed
    /// inside the vectorized libm routine; these weights are the operation
    /// counts of the classic rational/polynomial kernels used by those
    /// libraries. They define the "Cray Y-MP equivalent Mflops" metric the
    /// paper reports for RADABS and CCM2.
    pub fn cray_equiv_flops(self) -> f64 {
        match self {
            Intrinsic::Exp => 22.0,
            Intrinsic::Log => 24.0,
            Intrinsic::Pow => 46.0,
            Intrinsic::Sin => 26.0,
            Intrinsic::Sqrt => 14.0,
        }
    }
}

/// Geometry and rates of a vector unit.
#[derive(Debug, Clone)]
pub struct VectorUnit {
    /// Elements per vector register (SX-4: 8 chips x 32 elements = 256;
    /// Cray Y-MP/J90: 64). Operations longer than this strip-mine.
    pub reg_len: usize,
    /// Parallel pipes in the add/shift set (results per cycle).
    pub pipes_add: usize,
    /// Parallel pipes in the multiply set.
    pub pipes_mul: usize,
    /// Sustained divide results per cycle across the divide pipe set.
    /// Divides are iterative, so per-pipe throughput is below one.
    pub div_results_per_cycle: f64,
    /// Fixed startup (pipe fill + instruction overhead) charged per chime.
    pub startup_cycles: f64,
    /// Whether a dependent multiply+add pair chains into one pass
    /// (Cray-style chaining / SX concurrent pipe sets).
    pub chaining: bool,
    /// Sustained gather (list-vector load) throughput, elements per cycle.
    /// Irregular addressing cannot use the conflict-free stride paths.
    pub gather_elems_per_cycle: f64,
    /// Sustained scatter throughput, elements per cycle.
    pub scatter_elems_per_cycle: f64,
}

impl VectorUnit {
    /// Peak floating point results per cycle with add and multiply pipes
    /// running concurrently (the vendor "peak Gflops" number).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        (self.pipes_add + self.pipes_mul) as f64
    }
}

/// Banked main-memory system behind the processor port(s).
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// Per-processor port bandwidth in bytes per cycle
    /// (SX-4: 16 GB/s at 8 ns = 128 bytes/cycle).
    pub port_bytes_per_cycle: f64,
    /// Number of interleaved banks (SX-4: up to 1024 SSRAM banks).
    pub banks: usize,
    /// Bank busy time in cycles (SX-4 SSRAM: 2 clocks).
    pub bank_busy_cycles: f64,
    /// Word size in bytes for bandwidth accounting (the paper assumes
    /// 64-bit data everywhere).
    pub word_bytes: usize,
    /// Throughput factor (<= 1) for strided (s > 2) streams even when
    /// bank-conflict-free: strided access cannot use the port's full
    /// contiguous transfer width. Unit and stride-2 streams are exempt,
    /// matching the SX-4's guarantee.
    pub nonunit_stride_factor: f64,
}

impl MemorySystem {
    /// Sustainable words per cycle through the port.
    pub fn port_words_per_cycle(&self) -> f64 {
        self.port_bytes_per_cycle / self.word_bytes as f64
    }

    /// Throughput multiplier (<= 1) for a strided access stream.
    ///
    /// A stride-`s` stream touches `banks / gcd(s, banks)` distinct banks.
    /// Keeping `w` words per cycle in flight with a bank busy time of `t`
    /// cycles requires `w * t` banks; fewer distinct banks throttle the
    /// stream proportionally. Unit stride and stride 2 are guaranteed
    /// conflict-free on the SX-4 (the paper, section 2.2), which this model
    /// reproduces for any sane bank count.
    pub fn stride_efficiency(&self, stride: usize, words_per_cycle: f64) -> f64 {
        if stride == 0 {
            return 1.0; // broadcast of a scalar — served from a register
        }
        let base = if stride <= 2 { 1.0 } else { self.nonunit_stride_factor };
        let distinct = self.banks / gcd(stride, self.banks);
        let needed = words_per_cycle * self.bank_busy_cycles;
        if (distinct as f64) >= needed {
            base
        } else {
            base * (distinct as f64 / needed).max(1.0 / (self.bank_busy_cycles * words_per_cycle))
        }
    }
}

/// Scalar (superscalar/cache) unit parameters.
///
/// On the SX-4 this is the RISC scalar unit with 64 KB I/D caches; on the
/// SPARC20 and RS6000/590 presets it is the whole machine.
#[derive(Debug, Clone)]
pub struct ScalarUnit {
    /// Instructions issued per cycle.
    pub issue_per_cycle: f64,
    /// Peak floating point operations per cycle (RS6000/590: 4 via two FMAs).
    pub flops_per_cycle: f64,
    /// Data cache capacity in bytes.
    pub dcache_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Cycles to fill a line from memory on a miss.
    pub miss_penalty_cycles: f64,
    /// Average cost of one conditional branch (misprediction/refill
    /// amortized). Workstations with branch prediction sit near 1; the
    /// Cray-line scalar units, which refetch through memory, are several
    /// cycles. Dominates control-heavy codes like HINT.
    pub branch_penalty_cycles: f64,
}

/// Per-machine intrinsic function costs.
#[derive(Debug, Clone)]
pub struct IntrinsicCosts {
    /// Sustained cycles per element for the *vectorized* library routine
    /// (used when the machine has a vector unit and the call site is a
    /// vectorizable loop). Indexed by [`Intrinsic::ALL`] order.
    pub vector_cycles_per_elem: [f64; 5],
    /// Cycles per call through the scalar libm path.
    pub scalar_cycles_per_call: [f64; 5],
}

impl IntrinsicCosts {
    pub fn vector_cost(&self, f: Intrinsic) -> f64 {
        self.vector_cycles_per_elem[Self::index(f)]
    }

    pub fn scalar_cost(&self, f: Intrinsic) -> f64 {
        self.scalar_cycles_per_call[Self::index(f)]
    }

    fn index(f: Intrinsic) -> usize {
        match f {
            Intrinsic::Exp => 0,
            Intrinsic::Log => 1,
            Intrinsic::Pow => 2,
            Intrinsic::Sin => 3,
            Intrinsic::Sqrt => 4,
        }
    }
}

/// A complete machine description.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Marketing name, e.g. `"NEC SX-4/32 (9.2ns)"`.
    pub name: String,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Vector unit, if the machine has one.
    pub vector: Option<VectorUnit>,
    /// Scalar unit (always present; sole engine on cache machines).
    pub scalar: ScalarUnit,
    /// Main memory system.
    pub memory: MemorySystem,
    /// Intrinsic library costs.
    pub intrinsics: IntrinsicCosts,
    /// Processors in a node sharing [`MachineModel::node_bytes_per_cycle`].
    pub procs: usize,
    /// Sustainable node memory bandwidth, bytes per cycle, shared by all
    /// processors (SX-4/32: 512 GB/s at 8 ns = 4096 bytes/cycle).
    pub node_bytes_per_cycle: f64,
    /// Cost of a full-node barrier through the communications registers.
    pub barrier_cycles: f64,
}

impl MachineModel {
    /// Clock frequency in MHz.
    pub fn clock_mhz(&self) -> f64 {
        1000.0 / self.clock_ns
    }

    /// Peak Gflops per processor (vector peak if present, else scalar peak).
    pub fn peak_gflops_per_proc(&self) -> f64 {
        let per_cycle = self
            .vector
            .as_ref()
            .map(|v| v.peak_flops_per_cycle())
            .unwrap_or(self.scalar.flops_per_cycle);
        per_cycle * self.clock_mhz() / 1000.0
    }

    /// Peak Gflops for the whole node.
    pub fn peak_gflops_node(&self) -> f64 {
        self.peak_gflops_per_proc() * self.procs as f64
    }

    /// True if this machine times loops through the vector unit.
    pub fn is_vector(&self) -> bool {
        self.vector.is_some()
    }

    /// A canonical, platform-independent byte encoding of the full model:
    /// every field, in declaration order, big-endian. Two models encode
    /// identically iff they would price identically, so content-addressed
    /// caches (the `sxd` result cache) can hash run configurations that
    /// include a machine. Floats encode as their IEEE-754 bit patterns —
    /// no formatting, no rounding.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        let put_f64 = |out: &mut Vec<u8>, x: f64| out.extend_from_slice(&x.to_be_bytes());
        let put_u64 = |out: &mut Vec<u8>, x: u64| out.extend_from_slice(&x.to_be_bytes());
        put_u64(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        put_f64(&mut out, self.clock_ns);
        match &self.vector {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                put_u64(&mut out, v.reg_len as u64);
                put_u64(&mut out, v.pipes_add as u64);
                put_u64(&mut out, v.pipes_mul as u64);
                put_f64(&mut out, v.div_results_per_cycle);
                put_f64(&mut out, v.startup_cycles);
                out.push(v.chaining as u8);
                put_f64(&mut out, v.gather_elems_per_cycle);
                put_f64(&mut out, v.scatter_elems_per_cycle);
            }
        }
        put_f64(&mut out, self.scalar.issue_per_cycle);
        put_f64(&mut out, self.scalar.flops_per_cycle);
        put_u64(&mut out, self.scalar.dcache_bytes as u64);
        put_u64(&mut out, self.scalar.line_bytes as u64);
        put_f64(&mut out, self.scalar.miss_penalty_cycles);
        put_f64(&mut out, self.scalar.branch_penalty_cycles);
        put_f64(&mut out, self.memory.port_bytes_per_cycle);
        put_u64(&mut out, self.memory.banks as u64);
        put_f64(&mut out, self.memory.bank_busy_cycles);
        put_u64(&mut out, self.memory.word_bytes as u64);
        put_f64(&mut out, self.memory.nonunit_stride_factor);
        for x in self.intrinsics.vector_cycles_per_elem {
            put_f64(&mut out, x);
        }
        for x in self.intrinsics.scalar_cycles_per_call {
            put_f64(&mut out, x);
        }
        put_u64(&mut out, self.procs as u64);
        put_f64(&mut out, self.node_bytes_per_cycle);
        put_f64(&mut out, self.barrier_cycles);
        out
    }
}

/// Greatest common divisor (used by the bank-conflict model).
pub(crate) fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem {
            port_bytes_per_cycle: 128.0,
            banks: 1024,
            bank_busy_cycles: 2.0,
            word_bytes: 8,
            nonunit_stride_factor: 0.55,
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(1024, 512), 512);
    }

    #[test]
    fn unit_and_stride2_conflict_free() {
        let m = mem();
        assert_eq!(m.stride_efficiency(1, 16.0), 1.0);
        assert_eq!(m.stride_efficiency(2, 16.0), 1.0);
    }

    #[test]
    fn power_of_two_large_stride_throttles() {
        let m = mem();
        // stride 1024 hits a single bank: at most 1 access per busy time.
        let e = m.stride_efficiency(1024, 16.0);
        assert!(e < 0.05, "expected heavy throttling, got {e}");
        // odd strides keep all banks distinct (no conflict term), but still
        // pay the non-contiguous-transfer factor.
        assert_eq!(m.stride_efficiency(1023, 16.0), 0.55);
    }

    #[test]
    fn stride_efficiency_monotone_in_conflict() {
        let m = mem();
        let e256 = m.stride_efficiency(256, 16.0);
        let e512 = m.stride_efficiency(512, 16.0);
        let e1024 = m.stride_efficiency(1024, 16.0);
        assert!(e256 >= e512 && e512 >= e1024);
    }

    #[test]
    fn intrinsic_names_and_weights() {
        assert_eq!(Intrinsic::Exp.name(), "EXP");
        assert_eq!(Intrinsic::Pow.name(), "PWR");
        for f in Intrinsic::ALL {
            assert!(f.cray_equiv_flops() > 1.0);
        }
        // POW is priced like EXP + LOG.
        assert!(
            (Intrinsic::Pow.cray_equiv_flops()
                - Intrinsic::Exp.cray_equiv_flops()
                - Intrinsic::Log.cray_equiv_flops())
            .abs()
                <= 2.0
        );
    }

    #[test]
    fn peak_flops_from_pipes() {
        let v = VectorUnit {
            reg_len: 256,
            pipes_add: 8,
            pipes_mul: 8,
            div_results_per_cycle: 2.0,
            startup_cycles: 40.0,
            chaining: true,
            gather_elems_per_cycle: 2.0,
            scatter_elems_per_cycle: 2.0,
        };
        assert_eq!(v.peak_flops_per_cycle(), 16.0);
    }
}
