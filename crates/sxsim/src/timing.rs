//! Analytic timing of primitive operations against a [`MachineModel`].
//!
//! The model follows the classic parallel-vector cost decomposition:
//! an N-element operation strip-mines into chimes of the register length;
//! each chime pays a fixed startup (pipe fill + issue) and then streams at
//! the slower of the arithmetic-pipe rate and the memory-port rate, the
//! latter degraded by bank conflicts for bad strides and by the
//! list-vector (gather/scatter) hardware rate for irregular access.
//!
//! Cache machines price the same operations through
//! [`scalar_loop`] with an analytic miss model instead.

use crate::cost::Cost;
use crate::inline_vec::InlineVec;
use crate::model::{Intrinsic, MachineModel, VectorUnit, VopClass};

/// Memory access pattern of one stream of a vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Access {
    /// Constant stride in words; `Stride(1)` is unit stride.
    Stride(usize),
    /// Indexed gather (load) or scatter (store) through an index vector.
    Indexed,
    /// Operand held in a register/scalar — no memory traffic.
    #[default]
    None,
}

/// Most memory streams one instruction can name (3-operand FMA loads).
pub const MAX_STREAMS: usize = 4;

/// Descriptor of an elementwise vector operation over `n` elements.
///
/// Plain old data: access lists live inline (no allocation), the whole
/// descriptor is `Copy`, and equality is structural — which is what lets
/// [`crate::Vm`] memoize timing results keyed by the descriptor itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecOp {
    /// Elements processed.
    pub n: usize,
    /// Arithmetic class (selects the pipe set and flop count).
    pub class: VopClass,
    /// Access pattern of each input stream read from memory.
    pub loads: InlineVec<Access, MAX_STREAMS>,
    /// Access pattern of each output stream written to memory.
    pub stores: InlineVec<Access, MAX_STREAMS>,
}

impl VecOp {
    /// Convenience constructor.
    pub fn new(n: usize, class: VopClass, loads: &[Access], stores: &[Access]) -> VecOp {
        VecOp {
            n,
            class,
            loads: InlineVec::from_slice(loads),
            stores: InlineVec::from_slice(stores),
        }
    }

    /// Actual flops performed per element for the ledger.
    fn flops_per_elem(&self) -> u64 {
        match self.class {
            VopClass::Add | VopClass::Mul | VopClass::Div => 1,
            VopClass::Fma => 2,
            VopClass::Logical => 0,
        }
    }

    /// Memory words touched per element (indexed loads also fetch the index).
    fn words_per_elem(&self) -> f64 {
        let mut w = 0.0;
        for a in self.loads.iter().chain(self.stores.iter()) {
            match a {
                Access::Stride(_) => w += 1.0,
                Access::Indexed => w += 2.0, // data word + index word
                Access::None => {}
            }
        }
        w
    }
}

/// Arithmetic results per cycle for a pipe class on a vector machine.
/// The vector unit is resolved once by [`vector_op`] and passed down, so
/// this cannot be reached for a machine without one.
fn pipe_rate(v: &VectorUnit, class: VopClass) -> f64 {
    match class {
        VopClass::Add => v.pipes_add as f64,
        VopClass::Mul => v.pipes_mul as f64,
        VopClass::Logical => v.pipes_add as f64,
        VopClass::Fma => {
            if v.chaining {
                // add and multiply pipe sets run concurrently on the chained
                // stream: element rate is set by the narrower set.
                v.pipes_add.min(v.pipes_mul) as f64
            } else {
                // two passes over the data.
                (v.pipes_add.min(v.pipes_mul) as f64) / 2.0
            }
        }
        VopClass::Div => v.div_results_per_cycle,
    }
}

/// Sustained elements/cycle the memory system delivers for this op. Like
/// [`pipe_rate`], the vector unit arrives as a parameter resolved once in
/// [`vector_op`] — no panicking re-lookup on the hot path.
fn memory_rate(model: &MachineModel, v: &VectorUnit, op: &VecOp) -> f64 {
    let words_per_elem = op.words_per_elem();
    if words_per_elem == 0.0 {
        return f64::INFINITY;
    }
    let port_wpc = model.memory.port_words_per_cycle();

    // The port streams all regular accesses; each stream's bank-conflict
    // efficiency throttles the whole transfer (streams proceed in lockstep
    // with the pipes). Indexed streams are limited by the gather/scatter
    // hardware instead.
    let mut worst_regular = 1.0f64;
    let mut indexed_rate = f64::INFINITY;
    for (is_store, a) in
        op.loads.iter().map(|a| (false, a)).chain(op.stores.iter().map(|a| (true, a)))
    {
        match a {
            Access::Stride(s) => {
                let e = model.memory.stride_efficiency(*s, port_wpc);
                worst_regular = worst_regular.min(e);
            }
            Access::Indexed => {
                let r = if is_store { v.scatter_elems_per_cycle } else { v.gather_elems_per_cycle };
                indexed_rate = indexed_rate.min(r);
            }
            Access::None => {}
        }
    }
    let port_rate = port_wpc * worst_regular / words_per_elem;
    port_rate.min(indexed_rate)
}

/// Time an elementwise vector operation on a vector machine, or fall back to
/// [`scalar_loop`] on a cache machine.
pub fn vector_op(model: &MachineModel, op: &VecOp) -> Cost {
    let flops = op.flops_per_elem() * op.n as u64;
    // Round to nearest: an `as u64` cast truncates toward zero, which
    // undercounts ledger bytes for non-integral words-per-element
    // descriptors (today's accesses are whole words, so this is identical,
    // but fractional-word descriptors must not silently lose traffic).
    let bytes = (op.words_per_elem() * op.n as f64).round() as u64 * model.memory.word_bytes as u64;

    let Some(v) = model.vector.as_ref() else {
        // Cache machine: same loop priced through the scalar path.
        let pattern = scalar_pattern_of(op);
        let mut c = scalar_loop(
            model,
            op.n,
            op.flops_per_elem() as f64,
            op.loads.len() as f64,
            op.stores.len() as f64,
            pattern,
        );
        c.flops = flops;
        c.cray_flops = flops as f64;
        c.bytes = bytes;
        return c;
    };

    let n = op.n;
    if n == 0 {
        return Cost::ZERO;
    }
    let chimes = n.div_ceil(v.reg_len);
    // The first chime pays the full pipe-fill latency; strip-mine loop
    // iterations overlap their startup with the preceding chime's drain,
    // leaving only a small per-strip issue overhead.
    let startup = v.startup_cycles + (chimes - 1) as f64 * (0.1 * v.startup_cycles);
    let rate = pipe_rate(v, op.class).min(memory_rate(model, v, op));
    let stream = n as f64 / rate.max(1e-9);
    Cost { cycles: startup + stream, flops, cray_flops: flops as f64, bytes }
}

/// How a vector op's access pattern looks to a cache.
fn scalar_pattern_of(op: &VecOp) -> LocalityPattern {
    let irregular = op.loads.iter().chain(op.stores.iter()).any(|a| match a {
        Access::Indexed => true,
        Access::Stride(s) => *s > 8,
        Access::None => false,
    });
    if irregular {
        LocalityPattern::Random { working_set_bytes: usize::MAX }
    } else {
        LocalityPattern::Streaming
    }
}

/// Cache behaviour of a scalar loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalityPattern {
    /// Sequential sweeps: one miss per cache line per stream.
    Streaming,
    /// Repeated access within a working set: misses only beyond capacity.
    Resident { working_set_bytes: usize },
    /// Irregular access over a working set: miss probability is the
    /// fraction of the set not captured by the cache.
    Random { working_set_bytes: usize },
}

/// Time `iters` iterations of a scalar loop doing `flops` floating ops,
/// `loads` loads and `stores` stores per iteration, with the given cache
/// locality. Used both for cache machines and for the scalar residue of
/// vector machines (e.g. unvectorized CSHIFT in POP, HINT's control flow).
/// The loop's own backward branch is included; extra data-dependent
/// branches go through [`scalar_loop_branchy`].
pub fn scalar_loop(
    model: &MachineModel,
    iters: usize,
    flops: f64,
    loads: f64,
    stores: f64,
    pattern: LocalityPattern,
) -> Cost {
    scalar_loop_branchy(model, iters, flops, loads, stores, 1.0, pattern)
}

/// [`scalar_loop`] with an explicit count of conditional branches per
/// iteration (control-heavy codes: HINT's adaptive subdivision, heap
/// maintenance, the NQS scheduler's bookkeeping).
pub fn scalar_loop_branchy(
    model: &MachineModel,
    iters: usize,
    flops: f64,
    loads: f64,
    stores: f64,
    branches: f64,
    pattern: LocalityPattern,
) -> Cost {
    let s = &model.scalar;
    if iters == 0 {
        return Cost::ZERO;
    }
    let mem_ops = loads + stores;
    // Integer/control overhead: index update, compare, branches.
    let instrs_per_iter = flops + mem_ops + 1.0 + branches;
    let issue_cycles = instrs_per_iter / s.issue_per_cycle;
    let fp_cycles = if s.flops_per_cycle > 0.0 { flops / s.flops_per_cycle } else { 0.0 };

    let word = model.memory.word_bytes as f64;
    let miss_rate = match pattern {
        LocalityPattern::Streaming => word / s.line_bytes as f64,
        LocalityPattern::Resident { working_set_bytes } => {
            if working_set_bytes <= s.dcache_bytes {
                0.0
            } else {
                word / s.line_bytes as f64
            }
        }
        LocalityPattern::Random { working_set_bytes } => {
            if working_set_bytes <= s.dcache_bytes {
                0.0
            } else {
                let captured = s.dcache_bytes as f64 / working_set_bytes as f64;
                (1.0 - captured).clamp(0.0, 1.0)
            }
        }
    };
    // Misses overlap poorly with computation on these in-order-ish designs.
    let mem_cycles = mem_ops * miss_rate * s.miss_penalty_cycles;
    let branch_cycles = branches * s.branch_penalty_cycles;

    let per_iter = issue_cycles.max(fp_cycles) + mem_cycles + branch_cycles;
    let total_flops = (flops * iters as f64) as u64;
    Cost {
        cycles: per_iter * iters as f64,
        flops: total_flops,
        cray_flops: total_flops as f64,
        bytes: (mem_ops * iters as f64 * word) as u64,
    }
}

/// Time `n` calls of a vectorizable intrinsic (vector path on vector
/// machines, scalar libm otherwise). The ledger records one flop per call
/// plus the Cray-equivalent weight.
pub fn intrinsic_op(model: &MachineModel, f: Intrinsic, n: usize) -> Cost {
    if n == 0 {
        return Cost::ZERO;
    }
    let bytes = (2 * n * model.memory.word_bytes) as u64; // read x, write f(x)
    let cycles = match model.vector.as_ref() {
        Some(v) => {
            let chimes = n.div_ceil(v.reg_len);
            // The vectorized routine makes several passes (range reduction,
            // polynomial, reconstruction) => a few pipe fills on the first
            // strip, overlapped issue overhead on the rest.
            3.0 * v.startup_cycles
                + (chimes - 1) as f64 * (0.3 * v.startup_cycles)
                + n as f64 * model.intrinsics.vector_cost(f)
        }
        None => n as f64 * model.intrinsics.scalar_cost(f),
    };
    Cost { cycles, flops: n as u64, cray_flops: n as f64 * f.cray_equiv_flops(), bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn long_unit_stride_add_near_pipe_rate() {
        let m = presets::sx4(8.0);
        let op = VecOp::new(
            1_000_000,
            VopClass::Add,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        );
        let c = vector_op(&m, &op);
        let elems_per_cycle = op.n as f64 / c.cycles;
        // 3 words/elem against a 16 word/cycle port => memory-bound at ~5.33,
        // below the 8-wide add pipe set.
        assert!(elems_per_cycle > 4.5 && elems_per_cycle < 5.4, "epc={elems_per_cycle}");
    }

    #[test]
    fn short_vectors_dominated_by_startup() {
        let m = presets::sx4(8.0);
        let mk = |n| VecOp::new(n, VopClass::Add, &[Access::Stride(1)], &[Access::Stride(1)]);
        let c4 = vector_op(&m, &mk(4));
        let c256 = vector_op(&m, &mk(256));
        let r4 = 4.0 / c4.cycles;
        let r256 = 256.0 / c256.cycles;
        assert!(r256 > 10.0 * r4, "startup should crush short vectors: {r4} vs {r256}");
    }

    #[test]
    fn gather_slower_than_unit_stride() {
        let m = presets::sx4(8.0);
        let copy =
            VecOp::new(100_000, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(1)]);
        let gather =
            VecOp::new(100_000, VopClass::Logical, &[Access::Indexed], &[Access::Stride(1)]);
        let tc = vector_op(&m, &copy).cycles;
        let tg = vector_op(&m, &gather).cycles;
        assert!(tg > 2.0 * tc, "gather {tg} should be well above copy {tc}");
    }

    #[test]
    fn fma_counts_two_flops() {
        let m = presets::sx4(8.0);
        let op = VecOp::new(
            1000,
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        );
        let c = vector_op(&m, &op);
        assert_eq!(c.flops, 2000);
    }

    #[test]
    fn zero_length_costs_nothing() {
        let m = presets::sx4(8.0);
        let op = VecOp::new(0, VopClass::Add, &[Access::Stride(1)], &[Access::Stride(1)]);
        assert_eq!(vector_op(&m, &op), Cost::ZERO);
        assert_eq!(intrinsic_op(&m, Intrinsic::Exp, 0), Cost::ZERO);
        assert_eq!(scalar_loop(&m, 0, 1.0, 1.0, 1.0, LocalityPattern::Streaming), Cost::ZERO);
    }

    #[test]
    fn cache_machine_prices_through_scalar_path() {
        let m = presets::sparc20();
        let op = VecOp::new(
            10_000,
            VopClass::Add,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        );
        let c = vector_op(&m, &op);
        assert!(c.cycles > 10_000.0, "one add per cycle is already optimistic for a SPARC20");
        assert_eq!(c.flops, 10_000);
    }

    #[test]
    fn intrinsic_vector_beats_scalar() {
        let sx = presets::sx4(8.0);
        let sp = presets::sparc20();
        let n = 100_000;
        let cv = intrinsic_op(&sx, Intrinsic::Exp, n);
        let cs = intrinsic_op(&sp, Intrinsic::Exp, n);
        let tv = cv.seconds(sx.clock_ns);
        let ts = cs.seconds(sp.clock_ns);
        assert!(ts > 10.0 * tv);
        assert_eq!(cv.flops, n as u64);
        assert!(cv.cray_flops > cv.flops as f64);
    }

    #[test]
    fn monotone_more_work_not_fewer_cycles() {
        let m = presets::sx4(9.2);
        let mut prev = 0.0;
        for n in [1usize, 10, 100, 1000, 10_000, 100_000] {
            let op = VecOp::new(n, VopClass::Mul, &[Access::Stride(1)], &[Access::Stride(1)]);
            let c = vector_op(&m, &op);
            assert!(c.cycles >= prev);
            prev = c.cycles;
        }
    }

    #[test]
    fn resident_working_set_avoids_misses() {
        let m = presets::sparc20();
        let hot = scalar_loop(
            &m,
            10_000,
            2.0,
            2.0,
            1.0,
            LocalityPattern::Resident { working_set_bytes: 8 * 1024 },
        );
        let cold = scalar_loop(
            &m,
            10_000,
            2.0,
            2.0,
            1.0,
            LocalityPattern::Random { working_set_bytes: 64 * 1024 * 1024 },
        );
        assert!(cold.cycles > 2.0 * hot.cycles);
    }
}
