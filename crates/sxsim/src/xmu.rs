//! Extended Memory Unit (XMU) model.
//!
//! The XMU is the SX-4's semiconductor disk: 60 ns DRAM behind a 16 GB/s
//! path, up to 32 GB per node (paper §2.3). SUPER-UX uses it for
//! direct-mapped Fortran arrays, file-system caching, swap and /tmp; the
//! SFS model in the `superux` crate stages history-tape traffic through it.

use crate::cost::Cost;

/// An XMU configuration attached to one node.
#[derive(Debug, Clone)]
pub struct Xmu {
    /// Capacity in bytes (benchmarked system: 4 GB, Table 2).
    pub capacity_bytes: u64,
    /// Transfer bandwidth in bytes per second (16 GB/s).
    pub bandwidth_bytes_per_s: f64,
    /// Access latency per transfer in seconds (DRAM + controller).
    pub latency_s: f64,
    /// Bytes currently allocated by files/arrays staged in the XMU.
    used_bytes: u64,
}

impl Xmu {
    /// The benchmarked configuration from Table 2: 4 GB at 16 GB/s.
    pub fn benchmarked() -> Xmu {
        Xmu::new(4 << 30)
    }

    /// An XMU of the given capacity at the architectural 16 GB/s.
    pub fn new(capacity_bytes: u64) -> Xmu {
        Xmu { capacity_bytes, bandwidth_bytes_per_s: 16e9, latency_s: 2e-6, used_bytes: 0 }
    }

    /// Bytes still allocatable.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Reserve staging space; returns false if it does not fit.
    pub fn allocate(&mut self, bytes: u64) -> bool {
        if bytes <= self.free_bytes() {
            self.used_bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Release staging space.
    pub fn release(&mut self, bytes: u64) {
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }

    /// Seconds to move `bytes` between main memory and the XMU.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// The same transfer expressed as a processor-cycle cost at `clock_ns`
    /// (the processor initiating the transfer waits on it).
    pub fn transfer_cost(&self, bytes: u64, clock_ns: f64) -> Cost {
        let cycles = self.transfer_seconds(bytes) / (clock_ns * 1e-9);
        Cost { cycles, flops: 0, cray_flops: 0.0, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarked_capacity_is_4gb() {
        let x = Xmu::benchmarked();
        assert_eq!(x.capacity_bytes, 4 << 30);
        assert_eq!(x.free_bytes(), 4 << 30);
    }

    #[test]
    fn transfer_rate_is_16gb_per_s() {
        let x = Xmu::benchmarked();
        let s = x.transfer_seconds(16_000_000_000);
        assert!((s - 1.0).abs() < 1e-3, "16 GB at 16 GB/s should take ~1s, got {s}");
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut x = Xmu::new(1 << 20);
        assert!(x.allocate(1 << 19));
        assert!(x.allocate(1 << 19));
        assert!(!x.allocate(1));
        x.release(1 << 19);
        assert!(x.allocate(1 << 18));
    }

    #[test]
    fn cost_scales_with_clock() {
        let x = Xmu::benchmarked();
        let c8 = x.transfer_cost(1 << 20, 8.0);
        let c92 = x.transfer_cost(1 << 20, 9.2);
        // Same seconds => fewer cycles on the slower clock.
        assert!(c8.cycles > c92.cycles);
        assert!((c8.seconds(8.0) - c92.seconds(9.2)).abs() < 1e-12);
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let x = Xmu::benchmarked();
        let small = x.transfer_seconds(8);
        assert!(small >= x.latency_s);
        assert!(small < 2.0 * x.latency_s);
    }
}
