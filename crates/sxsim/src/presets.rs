//! Machine model presets for every system the paper measures.
//!
//! The SX-4 numbers come straight from the architecture section of the
//! paper (section 2): 8-pipe add/multiply sets, 256-element vector
//! registers (eight VPP chips times 32 elements), a 16 GB/s per-processor
//! memory port, up to 1024 SSRAM banks with a two-clock bank busy time,
//! 512 GB/s sustainable node bandwidth on a 32-processor node, and
//! communications registers for synchronization. The benchmarked system had
//! a 9.2 ns clock; production systems shipped at 8.0 ns.
//!
//! The comparator machines (CRI Y-MP, CRI J90, Sun SPARC20, IBM
//! RS6000/590) are the four systems of the paper's Table 1. Their
//! parameters are public-record architecture figures; intrinsic-library
//! rates are set so each machine's RADABS and HINT behaviour falls in the
//! band Table 1 reports (see EXPERIMENTS.md for the calibration audit).

use crate::model::{IntrinsicCosts, MachineModel, MemorySystem, ScalarUnit, VectorUnit};

/// NEC SX-4 single-node model with the given clock period in nanoseconds.
///
/// Use `sx4(9.2)` for the February-1996 benchmarked system and `sx4(8.0)`
/// for the production clock the paper's architecture section describes.
pub fn sx4(clock_ns: f64) -> MachineModel {
    MachineModel {
        name: format!("NEC SX-4/32 ({clock_ns:.1}ns)"),
        clock_ns,
        vector: Some(VectorUnit {
            reg_len: 256,
            pipes_add: 8,
            pipes_mul: 8,
            // Eight divide pipes, iterative algorithm: ~4 cycles/result/pipe.
            div_results_per_cycle: 2.0,
            // Effective per-instruction startup: the raw pipe fill is
            // several tens of cycles, but the SX issue unit overlaps the
            // fill of each vector instruction with the drain of the
            // previous *independent* one, leaving ~14 cycles exposed.
            startup_cycles: 14.0,
            chaining: true,
            // List-vector (gather/scatter) hardware sustains a fraction of
            // the unit-stride port; benefits from the 2-clock bank busy time
            // but cannot use the conflict-free stride paths.
            gather_elems_per_cycle: 2.5,
            scatter_elems_per_cycle: 2.5,
        }),
        scalar: ScalarUnit {
            issue_per_cycle: 2.0,
            flops_per_cycle: 1.0,
            dcache_bytes: 64 * 1024,
            line_bytes: 64,
            miss_penalty_cycles: 24.0,
            branch_penalty_cycles: 1.5,
        },
        memory: MemorySystem {
            // 16 GB/s per processor at the 8.0 ns design point = 128 B/clock.
            port_bytes_per_cycle: 128.0,
            banks: 1024,
            bank_busy_cycles: 2.0,
            word_bytes: 8,
            nonunit_stride_factor: 0.55,
        },
        intrinsics: IntrinsicCosts {
            // Vectorized libm built on the 16-result/cycle pipe ensemble;
            // order: EXP, LOG, PWR, SIN, SQRT. Calibrated so RADABS lands
            // near the paper's 865.9 Cray-equivalent Mflops at 9.2 ns.
            vector_cycles_per_elem: [2.4, 2.6, 5.0, 2.8, 1.6],
            scalar_cycles_per_call: [60.0, 68.0, 128.0, 72.0, 32.0],
        },
        procs: 32,
        // 512 GB/s sustainable node bandwidth at 8.0 ns = 4096 B/clock.
        node_bytes_per_cycle: 4096.0,
        barrier_cycles: 200.0,
    }
}

/// The exact system benchmarked in February 1996 (Table 2): 9.2 ns clock,
/// 32 processors, 8 GB main memory, 4 GB XMU.
pub fn sx4_benchmarked() -> MachineModel {
    sx4(9.2)
}

/// Production SX-4 with the 8.0 ns clock.
pub fn sx4_production() -> MachineModel {
    sx4(8.0)
}

/// CRI Y-MP single processor: 6 ns clock, 64-element vector registers, one
/// add and one multiply pipe, strong SRAM memory. This machine *defines*
/// the Cray-equivalent Mflops metric.
pub fn cray_ymp() -> MachineModel {
    MachineModel {
        name: "CRI Y-MP".to_string(),
        clock_ns: 6.0,
        vector: Some(VectorUnit {
            reg_len: 64,
            pipes_add: 1,
            pipes_mul: 1,
            div_results_per_cycle: 0.25,
            startup_cycles: 15.0,
            chaining: true,
            gather_elems_per_cycle: 0.5,
            scatter_elems_per_cycle: 0.5,
        }),
        scalar: ScalarUnit {
            // CRI scalar units issue well below one instruction per clock
            // on integer/pointer code and have *no* data cache — every
            // scalar load goes to (fast SRAM) memory. This is what HINT
            // punishes (Table 1).
            issue_per_cycle: 0.5,
            flops_per_cycle: 0.5,
            dcache_bytes: 0,
            line_bytes: 8,
            miss_penalty_cycles: 15.0,
            branch_penalty_cycles: 4.0,
        },
        memory: MemorySystem {
            // Two load ports + one store port, one word/clock each.
            port_bytes_per_cycle: 24.0,
            banks: 256,
            bank_busy_cycles: 5.0,
            word_bytes: 8,
            nonunit_stride_factor: 0.6,
        },
        intrinsics: IntrinsicCosts {
            // Vector libm at ~60% pipe utilization of the Cray-equivalent
            // operation counts (2 flops/cycle peak) — calibrated so RADABS
            // lands near the 178.1 Mflops Table 1 reports for the Y-MP.
            vector_cycles_per_elem: [19.0, 20.0, 38.0, 21.0, 11.0],
            scalar_cycles_per_call: [90.0, 100.0, 190.0, 105.0, 55.0],
        },
        procs: 8,
        node_bytes_per_cycle: 8.0 * 24.0,
        barrier_cycles: 400.0,
    }
}

/// CRI J90 single processor: 10 ns CMOS Y-MP derivative with DRAM memory.
pub fn cri_j90() -> MachineModel {
    MachineModel {
        name: "CRI J90".to_string(),
        clock_ns: 10.0,
        vector: Some(VectorUnit {
            reg_len: 64,
            pipes_add: 1,
            pipes_mul: 1,
            div_results_per_cycle: 0.2,
            startup_cycles: 12.0,
            chaining: true,
            gather_elems_per_cycle: 0.35,
            scatter_elems_per_cycle: 0.35,
        }),
        scalar: ScalarUnit {
            // Like the Y-MP's scalar unit but behind DRAM memory.
            issue_per_cycle: 0.5,
            flops_per_cycle: 0.3,
            dcache_bytes: 0,
            line_bytes: 8,
            miss_penalty_cycles: 25.0,
            branch_penalty_cycles: 5.0,
        },
        memory: MemorySystem {
            // One load + one store port into DRAM banks with a long busy time.
            port_bytes_per_cycle: 16.0,
            banks: 256,
            bank_busy_cycles: 12.0,
            word_bytes: 8,
            nonunit_stride_factor: 0.5,
        },
        intrinsics: IntrinsicCosts {
            // Calibrated against Table 1's 60.8 Mflops RADABS figure.
            vector_cycles_per_elem: [37.0, 40.0, 77.0, 43.0, 22.0],
            scalar_cycles_per_call: [130.0, 145.0, 270.0, 150.0, 80.0],
        },
        procs: 32,
        node_bytes_per_cycle: 16.0 * 16.0,
        barrier_cycles: 500.0,
    }
}

/// Sun SPARCstation 20 (SuperSPARC, 60 MHz): a cache workstation with a
/// respectable superscalar front end and a thin memory system.
pub fn sparc20() -> MachineModel {
    MachineModel {
        name: "SUN SPARC20".to_string(),
        clock_ns: 16.67,
        vector: None,
        scalar: ScalarUnit {
            issue_per_cycle: 3.0,
            flops_per_cycle: 1.0,
            dcache_bytes: 16 * 1024,
            line_bytes: 32,
            miss_penalty_cycles: 20.0,
            branch_penalty_cycles: 1.2,
        },
        memory: MemorySystem {
            // MBus-class memory: ~80 MB/s at 60 MHz.
            port_bytes_per_cycle: 1.4,
            banks: 1,
            bank_busy_cycles: 1.0,
            word_bytes: 8,
            nonunit_stride_factor: 1.0,
        },
        intrinsics: IntrinsicCosts {
            vector_cycles_per_elem: [0.0; 5], // no vector unit
            // Calibrated against Table 1's 12.8 Mflops RADABS figure.
            scalar_cycles_per_call: [75.0, 80.0, 155.0, 85.0, 40.0],
        },
        procs: 1,
        node_bytes_per_cycle: 1.4,
        barrier_cycles: 1000.0,
    }
}

/// IBM RS6000/590 (POWER2, 66.5 MHz): two FMA units (4 flops/clock peak),
/// a large data cache and a wide memory bus — the strongest scalar machine
/// of Table 1.
pub fn rs6000_590() -> MachineModel {
    MachineModel {
        name: "IBM RS6K 590".to_string(),
        clock_ns: 15.04,
        vector: None,
        scalar: ScalarUnit {
            issue_per_cycle: 4.0,
            flops_per_cycle: 4.0,
            dcache_bytes: 256 * 1024,
            line_bytes: 256,
            miss_penalty_cycles: 16.0,
            branch_penalty_cycles: 1.0,
        },
        memory: MemorySystem {
            // 256-bit memory bus.
            port_bytes_per_cycle: 16.0,
            banks: 4,
            bank_busy_cycles: 1.0,
            word_bytes: 8,
            nonunit_stride_factor: 1.0,
        },
        intrinsics: IntrinsicCosts {
            vector_cycles_per_elem: [0.0; 5],
            // Calibrated against Table 1's 16.5 Mflops RADABS figure.
            scalar_cycles_per_call: [95.0, 105.0, 205.0, 110.0, 58.0],
        },
        procs: 1,
        node_bytes_per_cycle: 16.0,
        barrier_cycles: 1000.0,
    }
}

/// The four comparison machines of the paper's Table 1, in table order.
pub fn table1_machines() -> Vec<MachineModel> {
    vec![sparc20(), rs6000_590(), cri_j90(), cray_ymp()]
}

/// Canonical preset names accepted by [`by_name`], for listings and
/// error messages.
pub const PRESET_NAMES: [&str; 6] =
    ["sx4-9.2", "sx4-8.0", "cray-ymp", "cri-j90", "sparc20", "rs6000-590"];

/// Resolve a machine preset from a textual name (CLI flags, wire
/// requests). Case-insensitive; common aliases accepted. Returns `None`
/// for unknown names — serving layers must reject, not panic.
pub fn by_name(name: &str) -> Option<MachineModel> {
    match name.to_ascii_lowercase().as_str() {
        "sx4" | "sx4-9.2" | "sx4-benchmarked" => Some(sx4_benchmarked()),
        "sx4-8.0" | "sx4-production" => Some(sx4_production()),
        "ymp" | "cray-ymp" | "cri-ymp" => Some(cray_ymp()),
        "j90" | "cri-j90" => Some(cri_j90()),
        "sparc20" | "sun-sparc20" => Some(sparc20()),
        "rs6000" | "rs6000-590" | "ibm-rs6k-590" => Some(rs6000_590()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sx4_peak_matches_paper() {
        let m = sx4(8.0);
        // "a peak performance of 2 Gflops per processor ... 64 Gflops per node"
        assert!((m.peak_gflops_per_proc() - 2.0).abs() < 1e-9);
        assert!((m.peak_gflops_node() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn sx4_port_is_16_gb_per_s_at_design_clock() {
        let m = sx4(8.0);
        let gb_per_s = m.memory.port_bytes_per_cycle * m.clock_mhz() * 1e6 / 1e9;
        assert!((gb_per_s - 16.0).abs() < 1e-9);
    }

    #[test]
    fn benchmarked_clock_is_9_2ns() {
        assert_eq!(sx4_benchmarked().clock_ns, 9.2);
        assert_eq!(sx4_production().clock_ns, 8.0);
    }

    #[test]
    fn ymp_peak_near_333_mflops() {
        let m = cray_ymp();
        assert!((m.peak_gflops_per_proc() - 0.333).abs() < 0.01);
    }

    #[test]
    fn cache_machines_have_no_vector_unit() {
        assert!(!sparc20().is_vector());
        assert!(!rs6000_590().is_vector());
        assert!(sx4(8.0).is_vector());
        assert!(cray_ymp().is_vector());
        assert!(cri_j90().is_vector());
    }

    #[test]
    fn table1_order_matches_paper_columns() {
        let names: Vec<String> = table1_machines().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI Y-MP"]);
    }

    #[test]
    fn sx4_faster_clock_is_faster_machine() {
        let a = sx4(8.0);
        let b = sx4(9.2);
        assert!(a.peak_gflops_per_proc() > b.peak_gflops_per_proc());
    }

    #[test]
    fn by_name_resolves_every_canonical_preset() {
        for name in PRESET_NAMES {
            assert!(by_name(name).is_some(), "unresolvable preset {name}");
        }
        assert_eq!(by_name("SX4").unwrap().clock_ns, 9.2);
        assert_eq!(by_name("sx4-8.0").unwrap().clock_ns, 8.0);
        assert!(by_name("cray-2").is_none());
    }

    #[test]
    fn canonical_bytes_identify_models() {
        // Same preset → same bytes; different clock or machine → different.
        assert_eq!(sx4(9.2).canonical_bytes(), sx4_benchmarked().canonical_bytes());
        assert_ne!(sx4(9.2).canonical_bytes(), sx4(8.0).canonical_bytes());
        assert_ne!(cray_ymp().canonical_bytes(), cri_j90().canonical_bytes());
        // Scalar machines (no vector unit) encode distinctly too.
        assert_ne!(sparc20().canonical_bytes(), rs6000_590().canonical_bytes());
        // A single parameter tweak must change the encoding.
        let mut m = sx4_benchmarked();
        m.memory.banks = 512;
        assert_ne!(m.canonical_bytes(), sx4_benchmarked().canonical_bytes());
    }
}
