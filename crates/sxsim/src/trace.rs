//! Operation tracing — the recording substrate for `sxcheck`.
//!
//! A [`Vm`] can carry an [`OpTrace`]: when enabled (see
//! [`Vm::start_trace`](crate::Vm::start_trace)), every charge the ledger
//! sees is also appended to the trace as a [`TraceEvent`], with the exact
//! cost the timing model assigned. FTRACE region boundaries are recorded
//! too, so an analyzer can attribute hazards to the region they occur in.
//!
//! Normal runs pay nothing: the trace is an `Option<Box<OpTrace>>` that is
//! `None` unless explicitly enabled, so the recording hook in each charge
//! path is a single branch on a null pointer.
//!
//! Consumers implement [`Recorder`] and feed it via [`OpTrace::replay`];
//! that is how the `sxcheck` crate's lints, race detector and ledger
//! auditor see the op stream without the simulator depending on them.

use crate::cost::Cost;
use crate::model::{Intrinsic, VopClass};
use crate::timing::Access;

/// One recorded charge against a [`Vm`](crate::Vm) ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An elementwise vector operation (or its cache-machine pricing).
    VecOp {
        class: VopClass,
        /// Elements processed.
        n: usize,
        /// Access pattern of each input stream.
        loads: Vec<Access>,
        /// Access pattern of each output stream.
        stores: Vec<Access>,
        /// Exact cost the timing model charged.
        cost: Cost,
    },
    /// A scalar loop (cache-machine path or scalar residue).
    ScalarLoop { iters: usize, cost: Cost },
    /// `n` vectorizable intrinsic calls.
    Intrinsic { f: Intrinsic, n: usize, cost: Cost },
    /// An arbitrary pre-computed charge (I/O waits, barriers, OS overhead).
    Charge { cost: Cost },
    /// An FTRACE region opened.
    EnterRegion { name: String },
    /// The open FTRACE region closed.
    ExitRegion { name: String },
}

impl TraceEvent {
    /// The cost this event charged (zero for region markers).
    pub fn cost(&self) -> Cost {
        match self {
            TraceEvent::VecOp { cost, .. }
            | TraceEvent::ScalarLoop { cost, .. }
            | TraceEvent::Intrinsic { cost, .. }
            | TraceEvent::Charge { cost } => *cost,
            TraceEvent::EnterRegion { .. } | TraceEvent::ExitRegion { .. } => Cost::ZERO,
        }
    }
}

/// A consumer of recorded op streams. Implementations are driven in event
/// order by [`OpTrace::replay`].
pub trait Recorder {
    fn record(&mut self, ev: &TraceEvent);
}

/// An in-memory op stream recorded by a tracing [`Vm`](crate::Vm).
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    events: Vec<TraceEvent>,
}

impl OpTrace {
    pub fn new() -> OpTrace {
        OpTrace::default()
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// The recorded events, in charge order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drive a [`Recorder`] through the whole stream.
    pub fn replay<R: Recorder + ?Sized>(&self, r: &mut R) {
        for ev in &self.events {
            r.record(ev);
        }
    }
}

impl Recorder for OpTrace {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::vm::Vm;

    #[test]
    fn untraced_vm_records_nothing() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let a = vec![1.0f64; 256];
        let mut b = vec![0.0f64; 256];
        vm.copy(&mut b, &a);
        assert!(vm.take_trace().is_none());
    }

    #[test]
    fn traced_vm_records_every_charge_with_exact_costs() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_trace();
        let a = vec![1.0f64; 256];
        let mut b = vec![0.0f64; 256];
        vm.copy(&mut b, &a);
        vm.sqrt(&mut b, &a);
        vm.charge(Cost::cycles(12.5));
        let trace = vm.take_trace().expect("trace was enabled");
        assert_eq!(trace.len(), 3);
        let total: f64 = trace.events().iter().map(|e| e.cost().cycles).sum();
        assert!((total - vm.lifetime_cost().cycles).abs() < 1e-9);
        assert!(matches!(trace.events()[0], TraceEvent::VecOp { n: 256, .. }));
        assert!(matches!(
            trace.events()[1],
            TraceEvent::Intrinsic { f: Intrinsic::Sqrt, n: 256, .. }
        ));
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_trace();
        let a = vec![1.0f64; 64];
        let mut b = vec![0.0f64; 64];
        vm.add(&mut b, &a, &a);
        let trace = vm.take_trace().unwrap();
        let mut copy = OpTrace::new();
        trace.replay(&mut copy);
        assert_eq!(trace.events(), copy.events());
    }
}
