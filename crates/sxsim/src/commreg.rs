//! Communications registers (paper §2.1): "each processor has access to a
//! set of communications registers optimized for synchronization of
//! parallel processing tasks. Examples of communications register
//! instructions included are test-set, store-and, store-or, and
//! store-add. There is a dedicated set of these for each processor, and
//! each chassis has an additional set for the operating system."
//!
//! This module implements that register file functionally (the four
//! instructions, per-processor sets plus the chassis set) and builds the
//! two synchronization idioms the node model prices: a spinlock from
//! test-set and a counting barrier from store-add. Each access costs a
//! fixed number of cycles, which is where the node's `barrier_cycles`
//! comes from.

use crate::cost::Cost;
use crate::error::SimError;

/// Cycles per communications-register access (crossbar round trip).
pub const ACCESS_CYCLES: f64 = 6.0;

/// The [`Cost`] of one communications-register access, for charging a
/// [`crate::Vm`] ledger when a kernel synchronizes through the registers.
pub fn access_cost() -> Cost {
    Cost::cycles(ACCESS_CYCLES)
}

/// One set of 64-bit communications registers.
#[derive(Debug, Clone)]
pub struct RegisterSet {
    regs: Vec<u64>,
}

impl RegisterSet {
    pub fn new(count: usize) -> RegisterSet {
        RegisterSet { regs: vec![0; count] }
    }

    pub fn read(&self, i: usize) -> u64 {
        self.regs[i]
    }

    pub fn write(&mut self, i: usize, v: u64) {
        self.regs[i] = v;
    }

    /// Atomic test-and-set: sets the register to all-ones, returns the
    /// previous value.
    pub fn test_set(&mut self, i: usize) -> u64 {
        std::mem::replace(&mut self.regs[i], u64::MAX)
    }

    /// store-and: `reg &= v`, returns the new value.
    pub fn store_and(&mut self, i: usize, v: u64) -> u64 {
        self.regs[i] &= v;
        self.regs[i]
    }

    /// store-or: `reg |= v`, returns the new value.
    pub fn store_or(&mut self, i: usize, v: u64) -> u64 {
        self.regs[i] |= v;
        self.regs[i]
    }

    /// store-add: `reg += v` (wrapping), returns the new value.
    pub fn store_add(&mut self, i: usize, v: u64) -> u64 {
        self.regs[i] = self.regs[i].wrapping_add(v);
        self.regs[i]
    }
}

/// The chassis: one register set per processor plus the OS set.
#[derive(Debug)]
pub struct CommRegisters {
    pub per_proc: Vec<RegisterSet>,
    pub os_set: RegisterSet,
}

impl CommRegisters {
    /// A chassis for `procs` processors (8 registers per set, as a
    /// representative size).
    pub fn new(procs: usize) -> CommRegisters {
        CommRegisters {
            per_proc: (0..procs).map(|_| RegisterSet::new(8)).collect(),
            os_set: RegisterSet::new(8),
        }
    }

    /// Cycles for a full-node counting barrier built from store-add on an
    /// OS register: every processor increments, then spins until the count
    /// reaches `procs` (one increment + an expected ~2 polls each), and the
    /// last one resets the register.
    pub fn barrier_cycles(&self, procs: usize) -> f64 {
        let accesses = procs as f64 * 3.0 + 1.0;
        accesses * ACCESS_CYCLES
    }

    /// Number of register sets on the chassis (one per processor plus the
    /// OS set, which is addressed as set `procs`).
    pub fn sets(&self) -> usize {
        self.per_proc.len() + 1
    }

    /// Registers per set.
    pub fn regs_per_set(&self) -> usize {
        self.os_set.regs.len()
    }

    fn checked_set(&mut self, set: usize, reg: usize) -> Result<&mut RegisterSet, SimError> {
        let sets = self.sets();
        let regs_per_set = self.regs_per_set();
        if set >= sets || reg >= regs_per_set {
            return Err(SimError::BadRegister { set, reg, sets, regs_per_set });
        }
        Ok(if set == self.per_proc.len() { &mut self.os_set } else { &mut self.per_proc[set] })
    }

    /// Checked read of register `reg` in set `set` (set `procs` is the OS
    /// set). Out-of-range indices are an error rather than a panic, so the
    /// bench CLI and checker can drive the chassis from untrusted input.
    pub fn try_read(&mut self, set: usize, reg: usize) -> Result<u64, SimError> {
        Ok(self.checked_set(set, reg)?.read(reg))
    }

    /// Checked write; see [`CommRegisters::try_read`] for the addressing.
    pub fn try_write(&mut self, set: usize, reg: usize, v: u64) -> Result<(), SimError> {
        self.checked_set(set, reg)?.write(reg, v);
        Ok(())
    }

    /// Functionally execute the counting barrier for `procs` processors on
    /// OS register `reg` (used by tests to show the idiom is correct).
    pub fn run_barrier(&mut self, procs: usize, reg: usize) -> bool {
        for _ in 0..procs {
            self.os_set.store_add(reg, 1);
        }
        let all_arrived = self.os_set.read(reg) == procs as u64;
        self.os_set.write(reg, 0);
        all_arrived
    }
}

/// A spinlock built from test-set, as parallel tasks used them.
#[derive(Debug)]
pub struct SpinLock<'a> {
    set: &'a mut RegisterSet,
    reg: usize,
}

impl<'a> SpinLock<'a> {
    pub fn new(set: &'a mut RegisterSet, reg: usize) -> SpinLock<'a> {
        SpinLock { set, reg }
    }

    /// Try to take the lock; true on success.
    pub fn try_lock(&mut self) -> bool {
        self.set.test_set(self.reg) == 0
    }

    pub fn unlock(&mut self) {
        self.set.write(self.reg, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_four_instructions() {
        let mut r = RegisterSet::new(4);
        assert_eq!(r.test_set(0), 0);
        assert_eq!(r.read(0), u64::MAX);
        r.write(1, 0b1100);
        assert_eq!(r.store_and(1, 0b1010), 0b1000);
        assert_eq!(r.store_or(1, 0b0001), 0b1001);
        r.write(2, 40);
        assert_eq!(r.store_add(2, 2), 42);
    }

    #[test]
    fn store_add_wraps() {
        let mut r = RegisterSet::new(1);
        r.write(0, u64::MAX);
        assert_eq!(r.store_add(0, 1), 0);
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        let mut set = RegisterSet::new(1);
        let mut lock = SpinLock::new(&mut set, 0);
        assert!(lock.try_lock());
        assert!(!lock.try_lock(), "second acquire must fail");
        lock.unlock();
        assert!(lock.try_lock());
    }

    #[test]
    fn counting_barrier_works_and_resets() {
        let mut c = CommRegisters::new(32);
        assert!(c.run_barrier(32, 0));
        assert_eq!(c.os_set.read(0), 0, "barrier must reset for reuse");
        assert!(c.run_barrier(32, 0));
    }

    #[test]
    fn barrier_cost_matches_node_preset_scale() {
        let c = CommRegisters::new(32);
        let cycles = c.barrier_cycles(32);
        // The SX-4 preset charges 200 cycles per node barrier; the idiom
        // costs the same order of magnitude.
        assert!(cycles > 100.0 && cycles < 1200.0, "{cycles}");
    }

    #[test]
    fn barrier_cost_is_three_accesses_per_proc_plus_reset() {
        let c = CommRegisters::new(32);
        for procs in [1usize, 4, 8, 32] {
            let expect = (3.0 * procs as f64 + 1.0) * ACCESS_CYCLES;
            assert_eq!(c.barrier_cycles(procs), expect, "procs={procs}");
        }
    }

    #[test]
    fn access_cycles_charge_a_vm_ledger() {
        use crate::presets;
        use crate::vm::Vm;
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let before = vm.lifetime_cost().cycles;
        // A spinlock acquire+release is two register accesses.
        let mut set = RegisterSet::new(1);
        let mut lock = SpinLock::new(&mut set, 0);
        assert!(lock.try_lock());
        vm.charge(access_cost());
        lock.unlock();
        vm.charge(access_cost());
        let after = vm.lifetime_cost().cycles;
        assert_eq!(after - before, 2.0 * ACCESS_CYCLES);
    }

    #[test]
    fn checked_access_rejects_out_of_range() {
        let mut c = CommRegisters::new(4);
        // Set 4 is the OS set; 5 is past the end.
        assert!(c.try_write(4, 0, 9).is_ok());
        assert_eq!(c.os_set.read(0), 9);
        assert_eq!(c.try_read(4, 0), Ok(9));
        let err = c.try_read(5, 0).unwrap_err();
        assert_eq!(err, SimError::BadRegister { set: 5, reg: 0, sets: 5, regs_per_set: 8 });
        assert!(c.try_write(0, 8, 1).is_err(), "register index past the set");
    }

    #[test]
    fn per_proc_sets_are_independent() {
        let mut c = CommRegisters::new(4);
        c.per_proc[0].write(0, 7);
        assert_eq!(c.per_proc[1].read(0), 0);
        assert_eq!(c.os_set.read(0), 0);
    }
}
