//! # sxsim — a functional + analytic-timing simulator of the NEC SX-4
//!
//! This crate is the hardware substrate for the NCAR Benchmark Suite
//! reproduction. The real SX-4 is long gone, so every benchmark in this
//! workspace runs against a *simulated* machine: kernels perform their real
//! computation on real data through the [`Vm`] facade, and every primitive
//! operation is charged cycles by an analytic model of the machine —
//! strip-mined vector chimes, pipe-set rates, memory-port bandwidth, bank
//! conflicts, gather/scatter hardware, scalar caches, node-level
//! contention, the XMU semiconductor disk and the IXS internode crossbar.
//!
//! ## Layout
//!
//! - [`model`] — [`MachineModel`] and its components;
//! - [`presets`] — the machines of the paper: SX-4 (8.0/9.2 ns), CRI Y-MP,
//!   CRI J90, Sun SPARC20, IBM RS6000/590;
//! - [`cost`] — the cycle/flop/byte ledger; all simulated time derives
//!   from it (no wall clocks — runs are bit-reproducible);
//! - [`timing`] — the analytic cost of vector ops, scalar loops and
//!   intrinsic calls;
//! - [`vm`] — the functional facade kernels program against;
//! - [`program`] — charge programs: record a `Vm`'s charge sequence once
//!   into a compact IR, replay it in one batched pass with bit-identical
//!   ledgers (the record-once/replay-many path the applications use);
//! - [`error`] — [`SimError`], the typed error for misuse of the facade
//!   (oversubscribed nodes, out-of-range communications registers,
//!   mismatched regions);
//! - [`node`] — multi-processor regions, barriers, contention,
//!   co-scheduling;
//! - [`commreg`] — the communications registers: register sets, the
//!   [`SpinLock`], and the 6-cycle access charge barriers are built from;
//! - [`trace`] — the [`Recorder`] hook and [`OpTrace`]: an optional,
//!   pay-only-if-used recording of every charged operation;
//! - [`proginf`], [`ftrace`] — the two SUPER-UX diagnostic reports,
//!   reproduced from the ledger (see below);
//! - [`xmu`], [`ixs`] — extended memory and internode crossbar.
//!
//! ## Diagnostics: PROGINF, FTRACE, and sxcheck
//!
//! The real SX-4 shipped three layers of performance introspection, and so
//! does the simulator:
//!
//! - **PROGINF** ([`Proginf`]) is the whole-run summary SUPER-UX printed at
//!   job exit: vector-operation ratio, average vector length, Mflops, and
//!   the cycle partition between vector, scalar and overhead time. Here it
//!   is derived entirely from the [`Vm`]'s cost ledger.
//! - **FTRACE** ([`Ftrace`]) is the per-region profile: wrap code in
//!   [`Ftrace::region`] and each named region accumulates its own ledger
//!   slice, exactly like compiling with `f77 -ftrace`.
//! - **sxcheck** (the `sxcheck` crate) is the analyzer this workspace adds
//!   on top: call [`Vm::start_trace`] before a run, hand the recorded
//!   [`OpTrace`] to `sxcheck::check_trace`, and it replays the op stream
//!   through vectorization lints (short vector lengths, low v-op ratio,
//!   gather/scatter domination, power-of-two bank-conflict strides, Amdahl
//!   scalar fractions), a simulated-race detector, and — behind its `audit`
//!   feature — a ledger auditor that cross-checks trace, PROGINF and FTRACE
//!   totals against the lifetime ledger.
//!
//! Tracing is strictly opt-in: a [`Vm`] without a trace attached carries an
//! `Option<Box<OpTrace>>` that stays `None`, and the recording hook is a
//! closure that is never called, so untraced runs pay nothing.
//!
//! ## Example
//!
//! ```
//! use sxsim::{presets, Vm};
//!
//! let mut vm = Vm::new(presets::sx4_benchmarked());
//! let a = vec![1.0f64; 1 << 16];
//! let b = vec![2.0f64; 1 << 16];
//! let mut c = vec![0.0f64; 1 << 16];
//! vm.add(&mut c, &a, &b);          // really computes c = a + b
//! assert_eq!(c[0], 3.0);
//! let t = vm.seconds();             // simulated SX-4 time, not host time
//! assert!(t > 0.0);
//! ```

pub mod commreg;
pub mod cost;
pub mod error;
pub mod ftrace;
pub mod inline_vec;
pub mod ixs;
pub mod model;
pub mod node;
pub mod presets;
pub mod proginf;
pub mod program;
pub mod timing;
pub mod trace;
pub mod vm;
pub mod xmu;

pub use commreg::{CommRegisters, RegisterSet, SpinLock};
pub use cost::Cost;
pub use error::SimError;
pub use ftrace::{render_analysis_list, Ftrace, FtraceRow};
pub use inline_vec::InlineVec;
pub use ixs::Ixs;
pub use model::{Intrinsic, MachineModel, VopClass};
pub use node::{JobDemand, Node, NodeTiming, Region};
pub use proginf::{OpStats, Proginf};
pub use program::{ChargeProgram, ProgramOp};
pub use timing::{Access, LocalityPattern, VecOp, MAX_STREAMS};
pub use trace::{OpTrace, Recorder, TraceEvent};
pub use vm::Vm;
pub use xmu::Xmu;
