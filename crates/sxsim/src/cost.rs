//! The cycle/flop/byte ledger accumulated by every simulated operation.
//!
//! All simulated "time" in this workspace is derived from [`Cost::cycles`]
//! multiplied by the machine clock period — no wall clocks are consulted
//! anywhere, so every experiment is bit-reproducible.

/// Resource consumption of a simulated operation or of a whole run.
///
/// `cycles` is a float because analytic timing models legitimately produce
/// fractional average costs per element (e.g. a gather sustaining 3.2
/// words/cycle); totals over a kernel are large enough that the fraction is
/// irrelevant but summing floats avoids systematic rounding bias.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Processor cycles consumed.
    pub cycles: f64,
    /// Floating point operations actually performed (adds, multiplies,
    /// divides, each intrinsic call counted as one "call", not its guts).
    pub flops: u64,
    /// Cray-hardware-counter-equivalent flops: intrinsic calls weighted by
    /// the number of operations the vectorized Cray library routine would
    /// have executed. This is the convention behind the paper's
    /// "Cray Y-MP equivalent Mflops".
    pub cray_flops: f64,
    /// Bytes moved between processor and memory (reads + writes).
    pub bytes: u64,
}

impl Cost {
    /// A zeroed ledger.
    pub const ZERO: Cost = Cost { cycles: 0.0, flops: 0, cray_flops: 0.0, bytes: 0 };

    /// Ledger entry consisting of cycles only.
    pub fn cycles(cycles: f64) -> Cost {
        Cost { cycles, ..Cost::ZERO }
    }

    /// Accumulate another ledger into this one.
    pub fn add(&mut self, other: Cost) {
        self.cycles += other.cycles;
        self.flops += other.flops;
        self.cray_flops += other.cray_flops;
        self.bytes += other.bytes;
    }

    /// Seconds of simulated machine time at a given clock period.
    pub fn seconds(&self, clock_ns: f64) -> f64 {
        self.cycles * clock_ns * 1e-9
    }

    /// Megaflops (actual operations) at a given clock period.
    pub fn mflops(&self, clock_ns: f64) -> f64 {
        let s = self.seconds(clock_ns);
        if s == 0.0 {
            0.0
        } else {
            self.flops as f64 / s / 1e6
        }
    }

    /// Cray-equivalent megaflops at a given clock period.
    pub fn cray_mflops(&self, clock_ns: f64) -> f64 {
        let s = self.seconds(clock_ns);
        if s == 0.0 {
            0.0
        } else {
            self.cray_flops / s / 1e6
        }
    }

    /// Memory bandwidth in MB/s (10^6 bytes per second, as the paper plots).
    pub fn mb_per_s(&self, clock_ns: f64) -> f64 {
        let s = self.seconds(clock_ns);
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / s / 1e6
        }
    }

    /// Average bytes per cycle demanded from the memory system — used by the
    /// node model to detect bandwidth oversubscription between co-scheduled
    /// jobs.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.cycles
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cycles: self.cycles + rhs.cycles,
            flops: self.flops + rhs.flops,
            cray_flops: self.cray_flops + rhs.cray_flops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.add(rhs);
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert_eq!(Cost::ZERO.cycles, 0.0);
        assert_eq!(Cost::ZERO.seconds(8.0), 0.0);
        assert_eq!(Cost::ZERO.mflops(8.0), 0.0);
        assert_eq!(Cost::ZERO.mb_per_s(8.0), 0.0);
        assert_eq!(Cost::ZERO.cray_mflops(8.0), 0.0);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let c = Cost::cycles(1e9);
        assert!((c.seconds(8.0) - 8.0).abs() < 1e-12);
        assert!((c.seconds(9.2) - 9.2).abs() < 1e-12);
    }

    #[test]
    fn mflops_counts_actual_ops() {
        // 1e6 flops in 1e6 cycles at 10ns => 10ms => 100 Mflops.
        let c = Cost { cycles: 1e6, flops: 1_000_000, cray_flops: 2e6, bytes: 0 };
        assert!((c.mflops(10.0) - 100.0).abs() < 1e-9);
        assert!((c.cray_mflops(10.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let a = Cost { cycles: 1.0, flops: 2, cray_flops: 3.0, bytes: 4 };
        let b = Cost { cycles: 10.0, flops: 20, cray_flops: 30.0, bytes: 40 };
        let c = a + b;
        assert_eq!(c.cycles, 11.0);
        assert_eq!(c.flops, 22);
        assert_eq!(c.cray_flops, 33.0);
        assert_eq!(c.bytes, 44);
    }

    #[test]
    fn sum_over_iterator() {
        let costs = vec![Cost::cycles(1.0), Cost::cycles(2.0), Cost::cycles(3.0)];
        let total: Cost = costs.into_iter().sum();
        assert_eq!(total.cycles, 6.0);
    }

    #[test]
    fn bandwidth_mb_per_s() {
        // 128 bytes/cycle at 8ns => 16 GB/s => 16000 MB/s.
        let c = Cost { cycles: 1e6, flops: 0, cray_flops: 0.0, bytes: 128_000_000 };
        assert!((c.mb_per_s(8.0) - 16_000.0).abs() < 1e-6);
        assert!((c.bytes_per_cycle() - 128.0).abs() < 1e-12);
    }
}
