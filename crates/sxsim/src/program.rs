//! Charge programs — record a [`Vm`](crate::Vm)'s charge sequence once,
//! replay it many times.
//!
//! The applications in this workspace (the CCM2 proxy, MOM, POP) issue the
//! *same* charge sequence every timestep: which vector ops a step charges
//! depends only on the configuration and grid shapes, never on the field
//! values. The op-by-op loop therefore re-executes the whole functional
//! model just to re-derive a charge stream it has already seen — the
//! interpreter-vs-compiled-dispatch gap. A [`ChargeProgram`] is the
//! compiled form: the recorded sequence of charge descriptors with
//! run-length-coalesced repetition structure, replayable against any `Vm`
//! of the same machine in one batched pass.
//!
//! ## The bit-identity contract
//!
//! Replay goes through the exact batched charge entry points the original
//! call sites used ([`Vm::charge_vector_op_repeated`],
//! [`Vm::charge_intrinsic_repeated`], …), so the `reps`-batching contract
//! those methods guarantee extends to whole programs: after
//! [`Vm::replay_program`] every f64 in the window and lifetime ledgers,
//! every [`OpStats`](crate::OpStats) counter (including timing-memo
//! hit/miss accounting) and every trace event is **bit-identical** to a
//! `Vm` that executed the original charge calls one by one. Run-length
//! coalescing preserves this: `repeated(op, a)` directly followed by
//! `repeated(op, b)` charges and accounts exactly like `repeated(op, a+b)`
//! (the second call's single memo lookup hits the slot the first call
//! filled, matching the `a+b-1` forced hits of the fused call).
//!
//! [`Vm::replay_program_scaled`] additionally multiplies every
//! instruction's repetition count by a scale factor: `replay_scaled(p, k)`
//! is bit-identical to the original call sequence with every call's `reps`
//! multiplied by `k` (NOT to `k` sequential replays — iterative f64
//! accumulation orders differently across program boundaries).

use crate::cost::Cost;
use crate::model::Intrinsic;
use crate::timing::{LocalityPattern, VecOp};

/// One instruction of a recorded charge program: a charge descriptor plus
/// how many times in a row it was issued.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramOp {
    /// `reps` identical vector operations
    /// ([`Vm::charge_vector_op_repeated`](crate::Vm::charge_vector_op_repeated)).
    Vector { op: VecOp, reps: usize },
    /// `reps` identical sweeps of `n` intrinsic calls
    /// ([`Vm::charge_intrinsic_repeated`](crate::Vm::charge_intrinsic_repeated)).
    Intrinsic { f: Intrinsic, n: usize, reps: usize },
    /// `reps` identical scalar loops; `branches` is `Some` for the branchy
    /// variant ([`Vm::charge_scalar_loop_branchy`](crate::Vm::charge_scalar_loop_branchy)).
    ScalarLoop {
        iters: usize,
        flops: f64,
        loads: f64,
        stores: f64,
        branches: Option<f64>,
        pattern: LocalityPattern,
        reps: usize,
    },
    /// `reps` identical raw charges ([`Vm::charge`](crate::Vm::charge)).
    Raw { cost: Cost, reps: usize },
}

impl ProgramOp {
    /// Charges this instruction stands for (its repetition count).
    pub fn reps(&self) -> usize {
        match self {
            ProgramOp::Vector { reps, .. }
            | ProgramOp::Intrinsic { reps, .. }
            | ProgramOp::ScalarLoop { reps, .. }
            | ProgramOp::Raw { reps, .. } => *reps,
        }
    }
}

/// A recorded charge sequence in compact IR form: consecutive identical
/// charges are run-length coalesced into one instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChargeProgram {
    ops: Vec<ProgramOp>,
}

impl ChargeProgram {
    pub fn new() -> ChargeProgram {
        ChargeProgram::default()
    }

    /// The program's instructions, in charge order.
    pub fn ops(&self) -> &[ProgramOp] {
        &self.ops
    }

    /// Instructions after coalescing.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total charge calls the program stands for (sum of repetitions) —
    /// `total_charges() / len()` is the compression the coalescing bought.
    pub fn total_charges(&self) -> usize {
        self.ops.iter().map(ProgramOp::reps).sum()
    }

    pub(crate) fn push_vector(&mut self, op: &VecOp, reps: usize) {
        if let Some(ProgramOp::Vector { op: last, reps: r }) = self.ops.last_mut() {
            if last == op {
                *r += reps;
                return;
            }
        }
        self.ops.push(ProgramOp::Vector { op: *op, reps });
    }

    pub(crate) fn push_intrinsic(&mut self, f: Intrinsic, n: usize, reps: usize) {
        if let Some(ProgramOp::Intrinsic { f: lf, n: ln, reps: r }) = self.ops.last_mut() {
            if *lf == f && *ln == n {
                *r += reps;
                return;
            }
        }
        self.ops.push(ProgramOp::Intrinsic { f, n, reps });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_scalar_loop(
        &mut self,
        iters: usize,
        flops: f64,
        loads: f64,
        stores: f64,
        branches: Option<f64>,
        pattern: LocalityPattern,
    ) {
        // f64 parameters compare by value; call sites pass literals, never
        // NaN, so equality is exactly "the same descriptor".
        if let Some(ProgramOp::ScalarLoop {
            iters: li,
            flops: lf,
            loads: ll,
            stores: ls,
            branches: lb,
            pattern: lp,
            reps,
        }) = self.ops.last_mut()
        {
            if *li == iters
                && *lf == flops
                && *ll == loads
                && *ls == stores
                && *lb == branches
                && *lp == pattern
            {
                *reps += 1;
                return;
            }
        }
        self.ops.push(ProgramOp::ScalarLoop {
            iters,
            flops,
            loads,
            stores,
            branches,
            pattern,
            reps: 1,
        });
    }

    pub(crate) fn push_raw(&mut self, cost: Cost) {
        if let Some(ProgramOp::Raw { cost: lc, reps }) = self.ops.last_mut() {
            if *lc == cost {
                *reps += 1;
                return;
            }
        }
        self.ops.push(ProgramOp::Raw { cost, reps: 1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::{Access, Vm, VopClass};

    fn op(n: usize) -> VecOp {
        VecOp::new(n, VopClass::Fma, &[Access::Stride(1), Access::Stride(1)], &[Access::Stride(1)])
    }

    #[test]
    fn recording_coalesces_consecutive_identical_charges() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_program_record();
        vm.charge_vector_op_repeated(&op(128), 3);
        vm.charge_vector_op_repeated(&op(128), 5);
        vm.charge_vector_op_repeated(&op(64), 2);
        vm.charge_intrinsic(Intrinsic::Sqrt, 100);
        vm.charge_intrinsic(Intrinsic::Sqrt, 100);
        let p = vm.take_program().expect("recording was on");
        assert_eq!(p.len(), 3, "{:?}", p.ops());
        assert_eq!(p.total_charges(), 3 + 5 + 2 + 2);
        assert!(matches!(p.ops()[0], ProgramOp::Vector { reps: 8, .. }));
        assert!(matches!(p.ops()[2], ProgramOp::Intrinsic { reps: 2, .. }));
    }

    #[test]
    fn replay_is_bit_identical_to_the_original_sequence() {
        let run = |vm: &mut Vm| {
            vm.charge_vector_op_repeated(&op(200), 4);
            vm.charge_intrinsic_repeated(Intrinsic::Exp, 64, 3);
            vm.charge_scalar_loop(1000, 2.0, 2.0, 1.0, LocalityPattern::Streaming);
            vm.charge(Cost::cycles(17.5));
            vm.charge_vector_op_repeated(&op(200), 2);
        };
        let mut rec = Vm::new(presets::sx4_benchmarked());
        rec.start_program_record();
        run(&mut rec);
        let p = rec.take_program().unwrap();

        let mut direct = Vm::new(presets::sx4_benchmarked());
        run(&mut direct);
        let mut replayed = Vm::new(presets::sx4_benchmarked());
        replayed.replay_program(&p);

        assert_eq!(direct.cost().cycles.to_bits(), replayed.cost().cycles.to_bits());
        assert_eq!(direct.cost(), replayed.cost());
        assert_eq!(direct.lifetime_cost(), replayed.lifetime_cost());
        let (mut a, mut b) = (*direct.stats(), *replayed.stats());
        a.program_replays = 0;
        b.program_replays = 0;
        assert_eq!(a, b);
        assert_eq!(replayed.stats().program_replays, 1);
    }

    #[test]
    fn scaled_replay_matches_scaled_call_sites() {
        let mut rec = Vm::new(presets::sx4_benchmarked());
        rec.start_program_record();
        rec.charge_vector_op_repeated(&op(96), 5);
        rec.charge_intrinsic_repeated(Intrinsic::Log, 32, 2);
        let p = rec.take_program().unwrap();

        let mut scaled = Vm::new(presets::sx4_benchmarked());
        scaled.replay_program_scaled(&p, 3);
        let mut direct = Vm::new(presets::sx4_benchmarked());
        direct.charge_vector_op_repeated(&op(96), 15);
        direct.charge_intrinsic_repeated(Intrinsic::Log, 32, 6);

        assert_eq!(direct.cost(), scaled.cost());
        assert_eq!(direct.cost().cycles.to_bits(), scaled.cost().cycles.to_bits());
        let (mut a, mut b) = (*direct.stats(), *scaled.stats());
        a.program_replays = 0;
        b.program_replays = 0;
        assert_eq!(a, b);
    }

    #[test]
    fn zero_scale_replay_charges_nothing() {
        let mut rec = Vm::new(presets::sx4_benchmarked());
        rec.start_program_record();
        rec.charge_vector_op_repeated(&op(64), 2);
        let p = rec.take_program().unwrap();
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.replay_program_scaled(&p, 0);
        assert_eq!(vm.cost(), Cost::ZERO);
        assert_eq!(vm.stats().vector_ops, 0);
    }

    #[test]
    fn untaken_program_is_replaced_by_a_new_recording() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_program_record();
        vm.charge_vector_op_repeated(&op(10), 1);
        vm.start_program_record();
        vm.charge_vector_op_repeated(&op(20), 1);
        let p = vm.take_program().unwrap();
        assert_eq!(p.len(), 1);
        assert!(matches!(p.ops()[0], ProgramOp::Vector { op: VecOp { n: 20, .. }, reps: 1 }));
        assert!(vm.take_program().is_none());
        assert_eq!(vm.stats().program_records, 2);
    }
}
