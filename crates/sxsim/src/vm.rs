//! The functional + timing execution facade.
//!
//! A [`Vm`] wraps a [`MachineModel`] and a cycle ledger. Benchmark kernels
//! call its array operations, which *really perform* the computation on the
//! supplied slices (so correctness is testable) while charging the ledger
//! the analytic cost of that operation on the modelled machine. Kernels
//! with loop structures the facade cannot express do their math natively
//! and charge via [`Vm::charge_vector_op`] / [`Vm::charge_scalar_loop`].

use crate::cost::Cost;
use crate::model::{Intrinsic, MachineModel, VopClass};
use crate::proginf::{OpStats, Proginf};
use crate::program::{ChargeProgram, ProgramOp};
use crate::timing::{self, Access, LocalityPattern, VecOp};
use crate::trace::{OpTrace, TraceEvent};

/// Slots in the per-`Vm` direct-mapped timing memo. The live descriptor
/// set of any one kernel is a handful of shapes, so a small table hits
/// nearly always; collisions just recompute.
const MEMO_SLOTS: usize = 64;

/// Direct-mapped memoization of [`timing::vector_op`] results. The machine
/// model is immutable for the lifetime of a `Vm`, so entries are never
/// invalidated; a slot holds the full descriptor and is only trusted on
/// exact equality (collisions overwrite).
#[derive(Debug, Clone)]
struct CostMemo {
    slots: Vec<Option<(VecOp, Cost)>>,
}

impl CostMemo {
    fn new() -> CostMemo {
        CostMemo { slots: vec![None; MEMO_SLOTS] }
    }

    /// FNV-1a over the access signature `(class, n, loads, stores)`.
    fn slot_of(op: &VecOp) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        eat(op.n as u64);
        eat(op.class as u64);
        for streams in [&op.loads, &op.stores] {
            eat(0x5f5f);
            for a in streams.iter() {
                match a {
                    Access::Stride(s) => {
                        eat(1);
                        eat(*s as u64);
                    }
                    Access::Indexed => eat(2),
                    Access::None => eat(3),
                }
            }
        }
        (h % MEMO_SLOTS as u64) as usize
    }
}

/// A simulated processor executing real array operations while accounting
/// machine cycles.
#[derive(Debug, Clone)]
pub struct Vm {
    model: MachineModel,
    /// Resettable ledger window (see [`Vm::take_cost`]).
    cost: Cost,
    /// Lifetime ledger — never reset; feeds [`Vm::proginf`].
    lifetime: Cost,
    /// Lifetime operation statistics for the PROGINF report.
    stats: OpStats,
    /// Optional op recording for `sxcheck`; `None` (free) unless enabled.
    trace: Option<Box<OpTrace>>,
    /// Timing memo for [`Vm::charge_vector_op`] (never invalidated — the
    /// model is immutable per `Vm`).
    memo: CostMemo,
    /// Optional charge-program recording; `None` (free) unless enabled via
    /// [`Vm::start_program_record`].
    program: Option<Box<ChargeProgram>>,
}

impl Vm {
    /// Create a processor of the given machine.
    pub fn new(model: MachineModel) -> Vm {
        Vm {
            model,
            cost: Cost::ZERO,
            lifetime: Cost::ZERO,
            stats: OpStats::default(),
            trace: None,
            memo: CostMemo::new(),
            program: None,
        }
    }

    /// The analytic cost of `op`, through the memo. Hit/miss counts land
    /// in [`OpStats`] and the PROGINF report.
    fn vector_op_cost(&mut self, op: &VecOp) -> Cost {
        let slot = CostMemo::slot_of(op);
        if let Some((key, cost)) = &self.memo.slots[slot] {
            if key == op {
                self.stats.memo_hits += 1;
                return *cost;
            }
        }
        let cost = timing::vector_op(&self.model, op);
        self.memo.slots[slot] = Some((*op, cost));
        self.stats.memo_misses += 1;
        cost
    }

    /// Begin recording every subsequent charge into an [`OpTrace`]
    /// (replacing any trace recorded so far).
    pub fn start_trace(&mut self) {
        self.trace = Some(Box::default());
    }

    /// Whether charges are currently being recorded.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Stop recording and take the trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<OpTrace> {
        self.trace.take().map(|b| *b)
    }

    /// Append an event if tracing; the closure runs only when enabled.
    pub(crate) fn trace_event(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(make());
        }
    }

    /// Begin recording every subsequent charge into a [`ChargeProgram`]
    /// (replacing any program recorded so far). Charges still execute
    /// normally — the recording pass is a fully functional run.
    pub fn start_program_record(&mut self) {
        self.program = Some(Box::default());
        self.stats.program_records += 1;
    }

    /// Whether charges are currently being recorded into a program.
    pub fn is_recording_program(&self) -> bool {
        self.program.is_some()
    }

    /// Stop recording and take the program, if recording was enabled.
    pub fn take_program(&mut self) -> Option<ChargeProgram> {
        self.program.take().map(|b| *b)
    }

    /// Re-charge a recorded program in one batched pass. Ledgers, op
    /// statistics (program counters aside), memo accounting and trace
    /// events end up bit-identical to executing the original charge calls
    /// op by op — see the [`crate::program`] module docs for the contract.
    pub fn replay_program(&mut self, p: &ChargeProgram) {
        self.replay_program_scaled(p, 1);
    }

    /// Replay with every instruction's repetition count multiplied by
    /// `scale`: bit-identical to the original call sequence with each
    /// call's `reps` multiplied by `scale`. `scale == 0` charges nothing
    /// (but still counts as a replay).
    pub fn replay_program_scaled(&mut self, p: &ChargeProgram, scale: usize) {
        self.stats.program_replays += 1;
        if scale == 0 {
            return;
        }
        for instr in p.ops() {
            match instr {
                ProgramOp::Vector { op, reps } => {
                    self.charge_vector_op_repeated(op, reps * scale);
                }
                ProgramOp::Intrinsic { f, n, reps } => {
                    self.charge_intrinsic_repeated(*f, *n, reps * scale);
                }
                ProgramOp::ScalarLoop { iters, flops, loads, stores, branches, pattern, reps } => {
                    for _ in 0..reps * scale {
                        match branches {
                            Some(b) => self.charge_scalar_loop_branchy(
                                *iters, *flops, *loads, *stores, *b, *pattern,
                            ),
                            None => {
                                self.charge_scalar_loop(*iters, *flops, *loads, *stores, *pattern)
                            }
                        }
                    }
                }
                ProgramOp::Raw { cost, reps } => {
                    for _ in 0..reps * scale {
                        self.charge(*cost);
                    }
                }
            }
        }
    }

    /// The machine this processor belongs to.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Ledger accumulated so far.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Reset the ledger window (e.g. between KTRIES repetitions). The
    /// lifetime PROGINF statistics keep accumulating.
    pub fn reset(&mut self) {
        self.cost = Cost::ZERO;
    }

    /// Lifetime operation statistics (never reset).
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Lifetime ledger (never reset; what PROGINF and FTRACE read).
    pub fn lifetime_cost(&self) -> Cost {
        self.lifetime
    }

    /// The SUPER-UX PROGINF report for everything this processor has run.
    pub fn proginf(&self) -> Proginf {
        Proginf::from_stats(&self.stats, &self.lifetime, self.model.clock_ns)
    }

    /// Simulated seconds elapsed on this processor.
    pub fn seconds(&self) -> f64 {
        self.cost.seconds(self.model.clock_ns)
    }

    /// Take the ledger, leaving it zeroed — convenient for timing a region.
    pub fn take_cost(&mut self) -> Cost {
        std::mem::take(&mut self.cost)
    }

    /// Charge an arbitrary pre-computed cost (used by substrate models:
    /// I/O waits, barriers, OS overhead).
    pub fn charge(&mut self, c: Cost) {
        self.cost.add(c);
        self.lifetime.add(c);
        self.stats.other_cycles += c.cycles;
        self.trace_event(|| TraceEvent::Charge { cost: c });
        if let Some(p) = self.program.as_mut() {
            p.push_raw(c);
        }
    }

    /// Charge an elementwise vector operation without executing data
    /// movement (for kernels that run their own inner loops natively).
    pub fn charge_vector_op(&mut self, op: &VecOp) {
        self.charge_vector_op_repeated(op, 1);
    }

    /// Charge `reps` identical vector operations: the analytic cost is
    /// resolved once (through the memo) and the ledger advanced `reps`
    /// times. The result — every float accumulator, every counter, the
    /// trace — is bit-identical to calling [`Vm::charge_vector_op`] in a
    /// loop; floats are accumulated iteratively because repeated addition
    /// is not multiplication, while the exact integer fields scale.
    pub fn charge_vector_op_repeated(&mut self, op: &VecOp, reps: usize) {
        if reps == 0 {
            return;
        }
        if let Some(p) = self.program.as_mut() {
            p.push_vector(op, reps);
        }
        let c = self.vector_op_cost(op);
        // The loop of single charges would hit the freshly filled slot on
        // every iteration after the first; mirror that accounting.
        self.stats.memo_hits += (reps - 1) as u64;
        for _ in 0..reps {
            self.cost.cycles += c.cycles;
            self.cost.cray_flops += c.cray_flops;
            self.lifetime.cycles += c.cycles;
            self.lifetime.cray_flops += c.cray_flops;
        }
        self.cost.flops += c.flops * reps as u64;
        self.cost.bytes += c.bytes * reps as u64;
        self.lifetime.flops += c.flops * reps as u64;
        self.lifetime.bytes += c.bytes * reps as u64;
        if self.model.is_vector() {
            self.stats.vector_ops += reps as u64;
            self.stats.vector_elements += (op.n * reps) as u64;
            for _ in 0..reps {
                self.stats.vector_cycles += c.cycles;
            }
        } else {
            self.stats.scalar_iters += (op.n * reps) as u64;
            for _ in 0..reps {
                self.stats.scalar_cycles += c.cycles;
            }
        }
        let indexed = op
            .loads
            .iter()
            .chain(op.stores.iter())
            .filter(|a| matches!(a, Access::Indexed))
            .count();
        self.stats.indexed_elements += (indexed * op.n * reps) as u64;
        if self.trace.is_some() {
            for _ in 0..reps {
                self.trace_event(|| TraceEvent::VecOp {
                    class: op.class,
                    n: op.n,
                    loads: op.loads.to_vec(),
                    stores: op.stores.to_vec(),
                    cost: c,
                });
            }
        }
    }

    /// Charge a scalar loop (cache-machine path or scalar residue).
    pub fn charge_scalar_loop(
        &mut self,
        iters: usize,
        flops: f64,
        loads: f64,
        stores: f64,
        pattern: LocalityPattern,
    ) {
        let c = timing::scalar_loop(&self.model, iters, flops, loads, stores, pattern);
        self.cost.add(c);
        self.lifetime.add(c);
        self.stats.scalar_cycles += c.cycles;
        self.stats.scalar_iters += iters as u64;
        self.trace_event(|| TraceEvent::ScalarLoop { iters, cost: c });
        if let Some(p) = self.program.as_mut() {
            p.push_scalar_loop(iters, flops, loads, stores, None, pattern);
        }
    }

    /// Charge a control-heavy scalar loop with explicit branches per
    /// iteration (HINT, schedulers, heap maintenance).
    #[allow(clippy::too_many_arguments)]
    pub fn charge_scalar_loop_branchy(
        &mut self,
        iters: usize,
        flops: f64,
        loads: f64,
        stores: f64,
        branches: f64,
        pattern: LocalityPattern,
    ) {
        let c = timing::scalar_loop_branchy(
            &self.model,
            iters,
            flops,
            loads,
            stores,
            branches,
            pattern,
        );
        self.cost.add(c);
        self.lifetime.add(c);
        self.stats.scalar_cycles += c.cycles;
        self.stats.scalar_iters += iters as u64;
        self.trace_event(|| TraceEvent::ScalarLoop { iters, cost: c });
        if let Some(p) = self.program.as_mut() {
            p.push_scalar_loop(iters, flops, loads, stores, Some(branches), pattern);
        }
    }

    /// Charge `n` vectorizable intrinsic calls without executing them.
    pub fn charge_intrinsic(&mut self, f: Intrinsic, n: usize) {
        self.charge_intrinsic_repeated(f, n, 1);
    }

    /// Charge `reps` identical intrinsic sweeps of `n` calls each: cost
    /// computed once, ledger advanced `reps` times, bit-identical to the
    /// equivalent loop of [`Vm::charge_intrinsic`] calls.
    pub fn charge_intrinsic_repeated(&mut self, f: Intrinsic, n: usize, reps: usize) {
        if reps == 0 {
            return;
        }
        if let Some(p) = self.program.as_mut() {
            p.push_intrinsic(f, n, reps);
        }
        let c = timing::intrinsic_op(&self.model, f, n);
        for _ in 0..reps {
            self.cost.cycles += c.cycles;
            self.cost.cray_flops += c.cray_flops;
            self.lifetime.cycles += c.cycles;
            self.lifetime.cray_flops += c.cray_flops;
        }
        self.cost.flops += c.flops * reps as u64;
        self.cost.bytes += c.bytes * reps as u64;
        self.lifetime.flops += c.flops * reps as u64;
        self.lifetime.bytes += c.bytes * reps as u64;
        self.stats.intrinsic_calls += (n * reps) as u64;
        if self.model.is_vector() {
            self.stats.vector_ops += reps as u64;
            self.stats.vector_elements += (n * reps) as u64;
            for _ in 0..reps {
                self.stats.vector_cycles += c.cycles;
            }
        } else {
            self.stats.scalar_iters += (n * reps) as u64;
            for _ in 0..reps {
                self.stats.scalar_cycles += c.cycles;
            }
        }
        if self.trace.is_some() {
            for _ in 0..reps {
                self.trace_event(|| TraceEvent::Intrinsic { f, n, cost: c });
            }
        }
    }

    // ---- data movement -----------------------------------------------

    /// Unit-stride copy `dst[i] = src[i]`.
    pub fn copy(&mut self, dst: &mut [f64], src: &[f64]) {
        assert_eq!(dst.len(), src.len());
        dst.copy_from_slice(src);
        self.charge_vector_op(&VecOp::new(
            src.len(),
            VopClass::Logical,
            &[Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// Strided copy of `n` elements: `dst[i*ds] = src[i*ss]`.
    ///
    /// Contract: when `n > 0`, the last touched elements — `src[(n-1)*ss]`
    /// and `dst[(n-1)*ds]` — must be in range; out-of-range stride/len
    /// combinations are a caller bug and panic up front rather than midway
    /// through the copy. `n == 0` charges a zero-length op and is free.
    pub fn copy_strided(&mut self, dst: &mut [f64], ds: usize, src: &[f64], ss: usize, n: usize) {
        if n > 0 {
            assert!(
                (n - 1) * ss < src.len(),
                "copy_strided reads past src: n={n} ss={ss} len={}",
                src.len()
            );
            assert!(
                (n - 1) * ds < dst.len(),
                "copy_strided writes past dst: n={n} ds={ds} len={}",
                dst.len()
            );
        }
        for i in 0..n {
            dst[i * ds] = src[i * ss];
        }
        self.charge_vector_op(&VecOp::new(
            n,
            VopClass::Logical,
            &[Access::Stride(ss)],
            &[Access::Stride(ds)],
        ));
    }

    /// Gather `dst[i] = src[idx[i]]`.
    pub fn gather(&mut self, dst: &mut [f64], src: &[f64], idx: &[usize]) {
        assert_eq!(dst.len(), idx.len());
        for (d, &j) in dst.iter_mut().zip(idx) {
            *d = src[j];
        }
        self.charge_vector_op(&VecOp::new(
            idx.len(),
            VopClass::Logical,
            &[Access::Indexed],
            &[Access::Stride(1)],
        ));
    }

    /// Scatter `dst[idx[i]] = src[i]`.
    pub fn scatter(&mut self, dst: &mut [f64], src: &[f64], idx: &[usize]) {
        assert_eq!(src.len(), idx.len());
        for (&v, &j) in src.iter().zip(idx) {
            dst[j] = v;
        }
        self.charge_vector_op(&VecOp::new(
            idx.len(),
            VopClass::Logical,
            &[Access::Stride(1)],
            &[Access::Indexed],
        ));
    }

    /// Transpose one `n x n` matrix: `b[i + j*n] = a[j + i*n]` — the store
    /// side runs at stride `n`, which is what makes XPOSE interesting.
    pub fn transpose(&mut self, b: &mut [f64], a: &[f64], n: usize) {
        assert!(a.len() >= n * n && b.len() >= n * n);
        for j in 0..n {
            for i in 0..n {
                b[i + j * n] = a[j + i * n];
            }
        }
        // Vectorized along columns of `a`: unit-stride load, stride-n store,
        // n vector operations of length n — charged as one batch.
        self.charge_vector_op_repeated(
            &VecOp::new(n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(n)]),
            n,
        );
    }

    // ---- elementwise arithmetic ----------------------------------------

    fn binary_op(
        &mut self,
        dst: &mut [f64],
        a: &[f64],
        b: &[f64],
        class: VopClass,
        f: impl Fn(f64, f64) -> f64,
    ) {
        assert_eq!(dst.len(), a.len());
        assert_eq!(dst.len(), b.len());
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            class,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: &mut [f64], a: &[f64], b: &[f64]) {
        self.binary_op(dst, a, b, VopClass::Add, |x, y| x + y);
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: &mut [f64], a: &[f64], b: &[f64]) {
        self.binary_op(dst, a, b, VopClass::Add, |x, y| x - y);
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: &mut [f64], a: &[f64], b: &[f64]) {
        self.binary_op(dst, a, b, VopClass::Mul, |x, y| x * y);
    }

    /// `dst = a / b`.
    pub fn div(&mut self, dst: &mut [f64], a: &[f64], b: &[f64]) {
        self.binary_op(dst, a, b, VopClass::Div, |x, y| x / y);
    }

    /// `dst = s * a` with a scalar multiplier held in a register.
    pub fn scale(&mut self, dst: &mut [f64], s: f64, a: &[f64]) {
        assert_eq!(dst.len(), a.len());
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = s * x;
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Mul,
            &[Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// `y = y + s * a` (AXPY; chained multiply-add).
    pub fn axpy(&mut self, y: &mut [f64], s: f64, a: &[f64]) {
        assert_eq!(y.len(), a.len());
        for (d, &x) in y.iter_mut().zip(a) {
            *d += s * x;
        }
        self.charge_vector_op(&VecOp::new(
            y.len(),
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// `dst = a * b + c` (three-operand FMA).
    pub fn fma(&mut self, dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
        assert_eq!(dst.len(), a.len());
        assert_eq!(dst.len(), b.len());
        assert_eq!(dst.len(), c.len());
        for i in 0..dst.len() {
            dst[i] = a[i] * b[i] + c[i];
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// In-place `dst += b`.
    pub fn add_in_place(&mut self, dst: &mut [f64], b: &[f64]) {
        assert_eq!(dst.len(), b.len());
        for (d, &y) in dst.iter_mut().zip(b) {
            *d += y;
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Add,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// In-place `dst *= b`.
    pub fn mul_in_place(&mut self, dst: &mut [f64], b: &[f64]) {
        assert_eq!(dst.len(), b.len());
        for (d, &y) in dst.iter_mut().zip(b) {
            *d *= y;
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Mul,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// In-place `dst = s * dst`.
    pub fn scale_in_place(&mut self, dst: &mut [f64], s: f64) {
        for d in dst.iter_mut() {
            *d *= s;
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Mul,
            &[Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    /// In-place `dst = dst + s` with a scalar addend.
    pub fn add_scalar_in_place(&mut self, dst: &mut [f64], s: f64) {
        for d in dst.iter_mut() {
            *d += s;
        }
        self.charge_vector_op(&VecOp::new(
            dst.len(),
            VopClass::Add,
            &[Access::Stride(1)],
            &[Access::Stride(1)],
        ));
    }

    // ---- intrinsics ------------------------------------------------------

    fn unary_intrinsic(
        &mut self,
        dst: &mut [f64],
        a: &[f64],
        f: Intrinsic,
        g: impl Fn(f64) -> f64,
    ) {
        assert_eq!(dst.len(), a.len());
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = g(x);
        }
        self.charge_intrinsic(f, dst.len());
    }

    /// `dst = exp(a)`.
    pub fn exp(&mut self, dst: &mut [f64], a: &[f64]) {
        self.unary_intrinsic(dst, a, Intrinsic::Exp, f64::exp);
    }

    /// `dst = ln(a)`.
    pub fn log(&mut self, dst: &mut [f64], a: &[f64]) {
        self.unary_intrinsic(dst, a, Intrinsic::Log, f64::ln);
    }

    /// `dst = sin(a)`.
    pub fn sin(&mut self, dst: &mut [f64], a: &[f64]) {
        self.unary_intrinsic(dst, a, Intrinsic::Sin, f64::sin);
    }

    /// `dst = sqrt(a)`.
    pub fn sqrt(&mut self, dst: &mut [f64], a: &[f64]) {
        self.unary_intrinsic(dst, a, Intrinsic::Sqrt, f64::sqrt);
    }

    /// `dst = a.powf(b)` elementwise.
    pub fn pow(&mut self, dst: &mut [f64], a: &[f64], b: &[f64]) {
        assert_eq!(dst.len(), a.len());
        assert_eq!(dst.len(), b.len());
        for i in 0..dst.len() {
            dst[i] = a[i].powf(b[i]);
        }
        self.charge_intrinsic(Intrinsic::Pow, dst.len());
    }

    // ---- reductions ------------------------------------------------------

    /// Sum of a vector (tree reduction on the add pipes).
    pub fn sum(&mut self, a: &[f64]) -> f64 {
        self.charge_vector_op(&VecOp::new(a.len(), VopClass::Add, &[Access::Stride(1)], &[]));
        a.iter().sum()
    }

    /// Dot product (chained multiply-add reduction).
    pub fn dot(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        self.charge_vector_op(&VecOp::new(
            a.len(),
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[],
        ));
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Maximum element and its index (vector max + scan).
    ///
    /// Contract: an empty slice is a valid (zero-cost) query and returns
    /// `(0, 0.0)` — the neutral element, matching a scan that never found
    /// anything larger than zero in magnitude.
    pub fn max_abs(&mut self, a: &[f64]) -> (usize, f64) {
        self.charge_vector_op(&VecOp::new(a.len(), VopClass::Logical, &[Access::Stride(1)], &[]));
        let mut best = (0usize, 0.0f64);
        for (i, &x) in a.iter().enumerate() {
            if x.abs() > best.1 {
                best = (i, x.abs());
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn vm() -> Vm {
        Vm::new(presets::sx4(9.2))
    }

    #[test]
    fn copy_moves_data_and_charges() {
        let mut m = vm();
        let src = vec![1.0, 2.0, 3.0];
        let mut dst = vec![0.0; 3];
        m.copy(&mut dst, &src);
        assert_eq!(dst, src);
        assert!(m.cost().cycles > 0.0);
        assert_eq!(m.cost().bytes, 6 * 8);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = vm();
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..16).rev().collect();
        let mut mid = vec![0.0; 16];
        let mut out = vec![0.0; 16];
        m.gather(&mut mid, &src, &idx);
        assert_eq!(mid[0], 15.0);
        m.scatter(&mut out, &mid, &idx);
        assert_eq!(out, src);
    }

    #[test]
    fn transpose_is_correct() {
        let mut m = vm();
        let n = 5;
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut b = vec![0.0; n * n];
        m.transpose(&mut b, &a, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(b[i + j * n], a[j + i * n]);
            }
        }
    }

    #[test]
    fn arithmetic_results_match_native() {
        let mut m = vm();
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![4.0, 3.0, 2.0, 1.0];
        let mut d = vec![0.0; 4];
        m.add(&mut d, &a, &b);
        assert_eq!(d, vec![5.0, 5.0, 5.0, 5.0]);
        m.mul(&mut d, &a, &b);
        assert_eq!(d, vec![4.0, 6.0, 6.0, 4.0]);
        m.div(&mut d, &a, &b);
        assert_eq!(d, vec![0.25, 2.0 / 3.0, 1.5, 4.0]);
        let mut y = vec![1.0; 4];
        m.axpy(&mut y, 2.0, &a);
        assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn intrinsics_compute_real_values() {
        let mut m = vm();
        let a = vec![0.0, 1.0, 2.0];
        let mut d = vec![0.0; 3];
        m.exp(&mut d, &a);
        assert!((d[1] - std::f64::consts::E).abs() < 1e-15);
        let before = m.cost().cray_flops;
        m.sqrt(&mut d, &a);
        assert!((d[2] - 2.0f64.sqrt()).abs() < 1e-15);
        assert!(m.cost().cray_flops > before);
    }

    #[test]
    fn reductions() {
        let mut m = vm();
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![2.0, 2.0, 2.0];
        assert_eq!(m.sum(&a), 6.0);
        assert_eq!(m.dot(&a, &b), 12.0);
        assert_eq!(m.max_abs(&[1.0, -7.0, 3.0]), (1, 7.0));
    }

    #[test]
    fn take_cost_resets() {
        let mut m = vm();
        let mut d = vec![0.0; 100];
        m.copy(&mut d, &vec![1.0; 100]);
        let c = m.take_cost();
        assert!(c.cycles > 0.0);
        assert_eq!(m.cost(), Cost::ZERO);
    }

    #[test]
    fn div_slower_than_mul() {
        let mut m1 = vm();
        let mut m2 = vm();
        let a = vec![1.0; 100_000];
        let b = vec![2.0; 100_000];
        let mut d = vec![0.0; 100_000];
        m1.mul(&mut d, &a, &b);
        m2.div(&mut d, &a, &b);
        assert!(m2.cost().cycles > m1.cost().cycles);
    }

    #[test]
    fn seconds_consistent_with_clock() {
        let mut m = vm();
        m.charge(Cost::cycles(1e9));
        assert!((m.seconds() - 9.2).abs() < 1e-9);
    }
}
