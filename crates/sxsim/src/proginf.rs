//! PROGINF — the SUPER-UX program-information report.
//!
//! Real SX-4 jobs ended with a PROGINF block: real time, vector time,
//! vector operation ratio, average vector length, MOPS/MFLOPS. The same
//! quantities fall out of the simulator's op statistics, and they are the
//! vocabulary the paper's analysis speaks (e.g. why VFFT beats RFFT:
//! average vector length; why T170 scales: longer vectors).

/// Raw operation statistics accumulated by a [`crate::Vm`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Vector instructions issued (one per charged vector op / chime set).
    pub vector_ops: u64,
    /// Elements processed by vector instructions.
    pub vector_elements: u64,
    /// Cycles spent in vector work (including vectorized intrinsics).
    pub vector_cycles: f64,
    /// Cycles spent in scalar work.
    pub scalar_cycles: f64,
    /// Scalar iterations executed.
    pub scalar_iters: u64,
    /// Intrinsic function calls (vectorized or scalar).
    pub intrinsic_calls: u64,
    /// Elements moved through gather/scatter (list-vector) hardware.
    pub indexed_elements: u64,
    /// Cycles charged directly (I/O waits, barriers, OS overhead).
    pub other_cycles: f64,
    /// Vector-op timings answered from the [`crate::Vm`] memo cache.
    pub memo_hits: u64,
    /// Vector-op timings computed analytically (memo misses + fills).
    pub memo_misses: u64,
    /// Charge programs recorded ([`crate::Vm::start_program_record`]).
    pub program_records: u64,
    /// Charge programs replayed in a batched pass
    /// ([`crate::Vm::replay_program`]) instead of re-deriving the charge
    /// stream op by op — the program-cache hit count.
    pub program_replays: u64,
}

impl OpStats {
    pub fn add(&mut self, other: &OpStats) {
        self.vector_ops += other.vector_ops;
        self.vector_elements += other.vector_elements;
        self.vector_cycles += other.vector_cycles;
        self.scalar_cycles += other.scalar_cycles;
        self.scalar_iters += other.scalar_iters;
        self.intrinsic_calls += other.intrinsic_calls;
        self.indexed_elements += other.indexed_elements;
        self.other_cycles += other.other_cycles;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.program_records += other.program_records;
        self.program_replays += other.program_replays;
    }
}

/// The rendered report.
#[derive(Debug, Clone)]
pub struct Proginf {
    pub real_time_s: f64,
    pub vector_time_s: f64,
    pub scalar_time_s: f64,
    /// Fraction of all "operations" executed by vector instructions, in
    /// percent — the famous vectorization ratio.
    pub vector_operation_ratio_pct: f64,
    pub average_vector_length: f64,
    pub mops: f64,
    pub mflops: f64,
    pub cray_equiv_mflops: f64,
    /// Simulator internals: fraction of vector-op timings answered from
    /// the per-`Vm` memo cache, in percent.
    pub timing_memo_hit_pct: f64,
    /// Simulator internals: charge programs recorded / replayed (the
    /// program-cache record and hit counts).
    pub program_records: u64,
    pub program_replays: u64,
}

impl Proginf {
    /// Build the report from a ledger and its op statistics at a clock.
    pub fn from_stats(stats: &OpStats, cost: &crate::Cost, clock_ns: f64) -> Proginf {
        let real = cost.seconds(clock_ns);
        let to_s = |c: f64| c * clock_ns * 1e-9;
        let vec_elems = stats.vector_elements as f64;
        let scalar_ops = stats.scalar_iters as f64;
        let total_ops = vec_elems + scalar_ops;
        Proginf {
            real_time_s: real,
            vector_time_s: to_s(stats.vector_cycles),
            scalar_time_s: to_s(stats.scalar_cycles),
            vector_operation_ratio_pct: if total_ops > 0.0 {
                100.0 * vec_elems / total_ops
            } else {
                0.0
            },
            average_vector_length: if stats.vector_ops > 0 {
                vec_elems / stats.vector_ops as f64
            } else {
                0.0
            },
            mops: if real > 0.0 { total_ops / real / 1e6 } else { 0.0 },
            mflops: if real > 0.0 { cost.flops as f64 / real / 1e6 } else { 0.0 },
            cray_equiv_mflops: if real > 0.0 { cost.cray_flops / real / 1e6 } else { 0.0 },
            timing_memo_hit_pct: {
                let lookups = stats.memo_hits + stats.memo_misses;
                if lookups > 0 {
                    100.0 * stats.memo_hits as f64 / lookups as f64
                } else {
                    0.0
                }
            },
            program_records: stats.program_records,
            program_replays: stats.program_replays,
        }
    }
}

impl std::fmt::Display for Proginf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "******  Program Information  ******")?;
        writeln!(f, "  Real Time (sec)            : {:>14.6}", self.real_time_s)?;
        writeln!(f, "  Vector Time (sec)          : {:>14.6}", self.vector_time_s)?;
        writeln!(f, "  Scalar Time (sec)          : {:>14.6}", self.scalar_time_s)?;
        writeln!(f, "  Vector Operation Ratio (%) : {:>14.2}", self.vector_operation_ratio_pct)?;
        writeln!(f, "  Average Vector Length      : {:>14.1}", self.average_vector_length)?;
        writeln!(f, "  MOPS                       : {:>14.1}", self.mops)?;
        writeln!(f, "  MFLOPS                     : {:>14.1}", self.mflops)?;
        writeln!(f, "  Cray-equivalent MFLOPS     : {:>14.1}", self.cray_equiv_mflops)?;
        writeln!(f, "  Timing Memo Hit Ratio (%)  : {:>14.2}", self.timing_memo_hit_pct)?;
        writeln!(
            f,
            "  Charge Programs (rec/replay): {:>6} / {:>6}",
            self.program_records, self.program_replays
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Vm;

    #[test]
    fn vector_kernel_reports_high_ratio_and_long_vectors() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let a = vec![1.0f64; 100_000];
        let b = vec![2.0f64; 100_000];
        let mut c = vec![0.0f64; 100_000];
        vm.add(&mut c, &a, &b);
        vm.mul(&mut c, &a, &b);
        let p = vm.proginf();
        assert!(p.vector_operation_ratio_pct > 99.0, "{p}");
        assert!((p.average_vector_length - 100_000.0).abs() < 1.0);
        assert!(p.mflops > 100.0);
    }

    #[test]
    fn scalar_loop_reports_low_ratio() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.charge_scalar_loop(50_000, 4.0, 2.0, 1.0, crate::LocalityPattern::Streaming);
        let p = vm.proginf();
        assert_eq!(p.vector_operation_ratio_pct, 0.0);
        assert!(p.scalar_time_s > 0.0);
        assert_eq!(p.vector_time_s, 0.0);
    }

    #[test]
    fn mixed_workload_splits_time() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let a = vec![1.0f64; 10_000];
        let mut b = vec![0.0f64; 10_000];
        vm.copy(&mut b, &a);
        vm.charge_scalar_loop(10_000, 2.0, 2.0, 1.0, crate::LocalityPattern::Streaming);
        let p = vm.proginf();
        assert!(p.vector_time_s > 0.0 && p.scalar_time_s > 0.0);
        assert!((p.real_time_s - (p.vector_time_s + p.scalar_time_s)).abs() < 1e-12);
        assert!(p.vector_operation_ratio_pct > 0.0 && p.vector_operation_ratio_pct < 100.0);
    }

    #[test]
    fn display_renders_the_block() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        vm.copy(&mut b, &a);
        let text = format!("{}", vm.proginf());
        assert!(text.contains("Program Information"));
        assert!(text.contains("Vector Operation Ratio"));
        assert!(text.contains("Average Vector Length"));
    }

    #[test]
    fn stats_accumulate() {
        let mut a = OpStats { vector_ops: 1, vector_elements: 10, ..Default::default() };
        let b = OpStats {
            vector_ops: 2,
            vector_elements: 30,
            intrinsic_calls: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.vector_ops, 3);
        assert_eq!(a.vector_elements, 40);
        assert_eq!(a.intrinsic_calls, 5);
    }
}
