//! Typed errors for the simulator's fallible public APIs.

use std::fmt;

/// What went wrong inside the simulator.
///
/// These conditions used to panic; they are surfaced as values so callers
/// driving the simulator from user input (the bench CLI, the checker) can
/// report them instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `Ftrace::enter` while another region is open (regions don't nest).
    RegionAlreadyOpen { open: String, attempted: String },
    /// `Ftrace::exit` without a matching `enter`.
    NoOpenRegion,
    /// A parallel region asked for more processors than the node has.
    TooManyProcs { requested: usize, available: usize },
    /// A communications-register index outside the hardware's range.
    BadRegister { set: usize, reg: usize, sets: usize, regs_per_set: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegionAlreadyOpen { open, attempted } => {
                write!(f, "FTRACE region {attempted:?} entered while {open:?} is open (regions do not nest)")
            }
            SimError::NoOpenRegion => write!(f, "FTRACE exit without a matching enter"),
            SimError::TooManyProcs { requested, available } => {
                write!(f, "parallel region wants {requested} processors; the node has {available}")
            }
            SimError::BadRegister { set, reg, sets, regs_per_set } => {
                write!(
                    f,
                    "communications register {set}:{reg} out of range ({sets} sets of {regs_per_set})"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
