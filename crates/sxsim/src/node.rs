//! Node-level timing: parallel regions across the processors of a shared
//! memory node, barrier costs through the communications registers, and
//! memory-system contention between processors and between co-scheduled
//! jobs.
//!
//! The SX-4 memory system guarantees conflict-free unit-stride and
//! stride-2 access from all 32 processors simultaneously (paper §2.2), so
//! contention only appears as queueing delay when the aggregate demand
//! approaches the bank subsystem's service capacity
//! (`banks / bank_busy_cycles` words per cycle). That is what makes the
//! paper's ensemble degradation (Table 6) small but not zero.

use crate::cost::Cost;
use crate::error::SimError;
use crate::model::MachineModel;

/// One phase of an application run on a node.
#[derive(Debug, Clone)]
pub enum Region {
    /// Work executed by a single processor while the others wait.
    Serial(Cost),
    /// Work partitioned across processors; one ledger per processor.
    /// The region ends with a barrier.
    Parallel(Vec<Cost>),
}

impl Region {
    /// Aggregate work in the region (sum over processors).
    pub fn total(&self) -> Cost {
        match self {
            Region::Serial(c) => *c,
            Region::Parallel(v) => v.iter().copied().sum(),
        }
    }
}

/// Result of timing a sequence of regions on a node.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeTiming {
    /// Wall-clock cycles for the whole sequence.
    pub wall_cycles: f64,
    /// Aggregate work performed (for Mflops-style metrics).
    pub work: Cost,
}

impl NodeTiming {
    /// Wall seconds at the node's clock.
    pub fn seconds(&self, clock_ns: f64) -> f64 {
        self.wall_cycles * clock_ns * 1e-9
    }

    /// Sustained Gflops over the wall time (actual operations).
    pub fn gflops(&self, clock_ns: f64) -> f64 {
        let s = self.seconds(clock_ns);
        if s == 0.0 {
            0.0
        } else {
            self.work.flops as f64 / s / 1e9
        }
    }

    /// Sustained Cray-equivalent Gflops over the wall time.
    pub fn cray_gflops(&self, clock_ns: f64) -> f64 {
        let s = self.seconds(clock_ns);
        if s == 0.0 {
            0.0
        } else {
            self.work.cray_flops / s / 1e9
        }
    }
}

/// Demand summary of a job for co-scheduling analysis.
#[derive(Debug, Clone, Copy)]
pub struct JobDemand {
    /// Critical-path cycles of the job when run alone.
    pub solo_cycles: f64,
    /// Processors the job occupies.
    pub procs: usize,
    /// Average memory demand per processor in bytes per cycle.
    pub bytes_per_cycle_per_proc: f64,
}

/// A shared-memory node of `model.procs` processors.
#[derive(Debug, Clone)]
pub struct Node {
    model: MachineModel,
}

impl Node {
    pub fn new(model: MachineModel) -> Node {
        Node { model }
    }

    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Words per cycle the bank subsystem can service node-wide.
    pub fn bank_capacity_words_per_cycle(&self) -> f64 {
        self.model.memory.banks as f64 / self.model.memory.bank_busy_cycles
    }

    /// Sustainable node bandwidth in words per cycle (crossbar limit).
    pub fn node_capacity_words_per_cycle(&self) -> f64 {
        self.model.node_bytes_per_cycle / self.model.memory.word_bytes as f64
    }

    /// Queueing stretch factor for a given aggregate memory demand.
    ///
    /// Quadratic-in-utilization delay: negligible at low load, ~a few
    /// percent as demand approaches the bank service capacity, hard wall at
    /// the crossbar limit. Calibrated so a full node of CCM2-like jobs
    /// degrades by the ~2% the paper's Table 6 reports.
    pub fn contention_stretch(&self, words_per_cycle_demand: f64) -> f64 {
        let cap = self.bank_capacity_words_per_cycle().min(self.node_capacity_words_per_cycle());
        if cap <= 0.0 {
            return 1.0;
        }
        let u = (words_per_cycle_demand / cap).max(0.0);
        if u <= 1.0 {
            1.0 + 0.02 * u * u
        } else {
            // Demand beyond capacity serializes.
            1.02 * u
        }
    }

    /// Wall-time a sequence of regions.
    ///
    /// A parallel region costs the maximum processor ledger, stretched by
    /// memory contention at the region's aggregate demand, plus one barrier
    /// through the communications registers.
    ///
    /// Errors if any parallel region wants more processors than the node
    /// has.
    pub fn time_regions(&self, regions: &[Region]) -> Result<NodeTiming, SimError> {
        let mut wall = 0.0f64;
        let mut work = Cost::ZERO;
        for r in regions {
            match r {
                Region::Serial(c) => {
                    wall += c.cycles;
                    work.add(*c);
                }
                Region::Parallel(per_proc) => {
                    if per_proc.len() > self.model.procs {
                        return Err(SimError::TooManyProcs {
                            requested: per_proc.len(),
                            available: self.model.procs,
                        });
                    }
                    let max_cycles = per_proc.iter().map(|c| c.cycles).fold(0.0f64, f64::max);
                    let total: Cost = per_proc.iter().copied().sum();
                    let demand = if max_cycles > 0.0 {
                        total.bytes as f64 / max_cycles / self.model.memory.word_bytes as f64
                    } else {
                        0.0
                    };
                    let stretch = self.contention_stretch(demand);
                    wall += max_cycles * stretch + self.model.barrier_cycles;
                    work.add(total);
                }
            }
        }
        Ok(NodeTiming { wall_cycles: wall, work })
    }

    /// Stretch factor experienced by each of a set of co-scheduled jobs.
    ///
    /// All jobs run concurrently; the node services their combined memory
    /// demand, and SUPER-UX pays a small per-job multiplexing overhead
    /// (scheduler slices, daemons, interrupt handling) that only shows up
    /// when several jobs share the node. Together these produce the ~2%
    /// ensemble degradation of Table 6. Used by the ensemble test and
    /// PRODLOAD.
    ///
    /// Errors if the jobs together need more processors than the node has.
    pub fn coschedule_stretch(&self, jobs: &[JobDemand]) -> Result<f64, SimError> {
        let procs: usize = jobs.iter().map(|j| j.procs).sum();
        if procs > self.model.procs {
            return Err(SimError::TooManyProcs { requested: procs, available: self.model.procs });
        }
        let demand: f64 = jobs
            .iter()
            .map(|j| {
                j.procs as f64 * j.bytes_per_cycle_per_proc / self.model.memory.word_bytes as f64
            })
            .sum();
        let os_overhead = 0.002 * jobs.len().saturating_sub(1) as f64;
        Ok(self.contention_stretch(demand) + os_overhead)
    }
}

/// Partition `n` items across `p` processors as contiguous chunks, the way
/// the benchmark codes partition latitude rows. Earlier processors get the
/// remainder, so chunk sizes differ by at most one.
pub fn partition(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    assert!(p > 0);
    let base = n / p;
    let rem = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn node() -> Node {
        Node::new(presets::sx4(9.2))
    }

    #[test]
    fn partition_covers_everything() {
        for n in [0usize, 1, 7, 64, 100] {
            for p in [1usize, 2, 3, 8, 32] {
                let parts = partition(n, p);
                assert_eq!(parts.len(), p);
                let total: usize = parts.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // contiguous and ordered
                let mut expect = 0;
                for r in &parts {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // balanced
                let lens: Vec<usize> = parts.iter().map(|r| r.len()).collect();
                let max = *lens.iter().max().unwrap();
                let min = *lens.iter().min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn serial_region_costs_its_cycles() {
        let t = node().time_regions(&[Region::Serial(Cost::cycles(1000.0))]).unwrap();
        assert_eq!(t.wall_cycles, 1000.0);
    }

    #[test]
    fn parallel_region_costs_max_plus_barrier() {
        let n = node();
        let t = n
            .time_regions(&[Region::Parallel(vec![Cost::cycles(500.0), Cost::cycles(1000.0)])])
            .unwrap();
        assert!(t.wall_cycles >= 1000.0 + n.model().barrier_cycles);
        assert!(t.wall_cycles < 1100.0 + n.model().barrier_cycles);
        assert_eq!(t.work.cycles, 1500.0);
    }

    #[test]
    fn contention_grows_with_demand_and_is_small_at_low_load() {
        let n = node();
        assert_eq!(n.contention_stretch(0.0), 1.0);
        let low = n.contention_stretch(50.0);
        let mid = n.contention_stretch(300.0);
        let cap = n.bank_capacity_words_per_cycle();
        let full = n.contention_stretch(cap);
        assert!(low < mid && mid < full);
        assert!(full <= 1.07, "at capacity the stretch stays at a few percent: {full}");
        assert!(n.contention_stretch(2.0 * cap) > full);
    }

    #[test]
    fn coschedule_more_jobs_more_stretch() {
        let n = node();
        let job = JobDemand { solo_cycles: 1e9, procs: 4, bytes_per_cycle_per_proc: 40.0 };
        let one = n.coschedule_stretch(&[job]).unwrap();
        let eight = n.coschedule_stretch(&[job; 8]).unwrap();
        assert!(eight > one);
        assert!(eight < 1.10, "paper reports only ~2% degradation, got stretch {eight}");
    }

    #[test]
    fn oversubscription_is_an_error() {
        let n = node();
        let job = JobDemand { solo_cycles: 1.0, procs: 20, bytes_per_cycle_per_proc: 1.0 };
        let err = n.coschedule_stretch(&[job, job]).unwrap_err();
        assert_eq!(
            err,
            crate::SimError::TooManyProcs { requested: 40, available: n.model().procs }
        );
        let err = n.time_regions(&[Region::Parallel(vec![Cost::cycles(1.0); 40])]).unwrap_err();
        assert!(matches!(err, crate::SimError::TooManyProcs { .. }));
    }

    #[test]
    fn gflops_metric() {
        let t = NodeTiming {
            wall_cycles: 1e9,
            work: Cost { cycles: 1e9, flops: 16_000_000_000, cray_flops: 2e10, bytes: 0 },
        };
        // 16e9 flops in 8 seconds (at 8ns) => 2 Gflops.
        assert!((t.gflops(8.0) - 2.0).abs() < 1e-9);
        assert!((t.cray_gflops(8.0) - 2.5).abs() < 1e-9);
    }
}
