//! FTRACE — the SUPER-UX per-routine execution analyzer.
//!
//! Real SX-4 development ran with `-ftrace`, which printed a per-routine
//! table of exclusive time, MFLOPS, vector operation ratio and average
//! vector length. The same report falls out of the simulator by
//! snapshotting a [`Vm`]'s lifetime ledger and op statistics at region
//! boundaries. The CCM2 proxy uses it to show where a timestep goes
//! (synthesis / grid tendencies / physics / SLT / analysis / solve).

use crate::cost::Cost;
use crate::error::SimError;
use crate::proginf::OpStats;
use crate::trace::TraceEvent;
use crate::vm::Vm;
use std::collections::BTreeMap;

/// Accumulated exclusive totals for one named region.
#[derive(Debug, Clone, Default)]
pub struct RegionTotals {
    pub calls: u64,
    pub cost: Cost,
    pub stats: OpStats,
}

impl RegionTotals {
    /// Exclusive seconds at a clock.
    pub fn seconds(&self, clock_ns: f64) -> f64 {
        self.cost.seconds(clock_ns)
    }

    /// MFLOPS over the region's own time.
    pub fn mflops(&self, clock_ns: f64) -> f64 {
        self.cost.mflops(clock_ns)
    }

    /// Average vector length inside the region.
    pub fn average_vector_length(&self) -> f64 {
        if self.stats.vector_ops == 0 {
            0.0
        } else {
            self.stats.vector_elements as f64 / self.stats.vector_ops as f64
        }
    }

    /// Vector operation ratio (%) inside the region.
    pub fn vector_ratio_pct(&self) -> f64 {
        let v = self.stats.vector_elements as f64;
        let s = self.stats.scalar_iters as f64;
        if v + s == 0.0 {
            0.0
        } else {
            100.0 * v / (v + s)
        }
    }
}

/// The analyzer: wraps region entry/exit around work done on a [`Vm`].
#[derive(Debug, Default)]
pub struct Ftrace {
    regions: BTreeMap<String, RegionTotals>,
    open: Option<(String, Cost, OpStats)>,
}

impl Ftrace {
    pub fn new() -> Ftrace {
        Ftrace::default()
    }

    /// Enter a region: snapshot the Vm and mark the boundary in its op
    /// trace (if tracing). Regions may not nest (FTRACE exclusive-time
    /// semantics): entering while another region is open is an error.
    pub fn enter(&mut self, name: &str, vm: &mut Vm) -> Result<(), SimError> {
        if let Some((open, _, _)) = &self.open {
            return Err(SimError::RegionAlreadyOpen {
                open: open.clone(),
                attempted: name.to_string(),
            });
        }
        self.open = Some((name.to_string(), vm.lifetime_cost(), *vm.stats()));
        vm.trace_event(|| TraceEvent::EnterRegion { name: name.to_string() });
        Ok(())
    }

    /// Exit the open region, attributing everything charged since `enter`.
    pub fn exit(&mut self, vm: &mut Vm) -> Result<(), SimError> {
        let (name, c0, s0) = self.open.take().ok_or(SimError::NoOpenRegion)?;
        vm.trace_event(|| TraceEvent::ExitRegion { name: name.clone() });
        let c1 = vm.lifetime_cost();
        let s1 = vm.stats();
        let entry = self.regions.entry(name).or_default();
        entry.calls += 1;
        entry.cost.add(Cost {
            cycles: c1.cycles - c0.cycles,
            flops: c1.flops - c0.flops,
            cray_flops: c1.cray_flops - c0.cray_flops,
            bytes: c1.bytes - c0.bytes,
        });
        entry.stats.add(&OpStats {
            vector_ops: s1.vector_ops - s0.vector_ops,
            vector_elements: s1.vector_elements - s0.vector_elements,
            vector_cycles: s1.vector_cycles - s0.vector_cycles,
            scalar_cycles: s1.scalar_cycles - s0.scalar_cycles,
            scalar_iters: s1.scalar_iters - s0.scalar_iters,
            intrinsic_calls: s1.intrinsic_calls - s0.intrinsic_calls,
            indexed_elements: s1.indexed_elements - s0.indexed_elements,
            other_cycles: s1.other_cycles - s0.other_cycles,
            memo_hits: s1.memo_hits - s0.memo_hits,
            memo_misses: s1.memo_misses - s0.memo_misses,
            program_records: s1.program_records - s0.program_records,
            program_replays: s1.program_replays - s0.program_replays,
        });
        Ok(())
    }

    /// Run `work` inside a region (the convenient form). Panics if a
    /// region is already open — use [`Ftrace::enter`]/[`Ftrace::exit`]
    /// directly to handle that as an error.
    pub fn region<R>(&mut self, name: &str, vm: &mut Vm, work: impl FnOnce(&mut Vm) -> R) -> R {
        self.enter(name, vm).expect("Ftrace::region entered while a region is open");
        let out = work(vm);
        self.exit(vm).expect("region was opened above");
        out
    }

    /// All regions, by name.
    pub fn regions(&self) -> &BTreeMap<String, RegionTotals> {
        &self.regions
    }

    /// The analysis list as data: one row per region with the classic
    /// extra columns (MFLOPS, vector operation ratio, average vector
    /// length), for programmatic consumers of the breakdown.
    pub fn rows(&self, clock_ns: f64) -> Vec<FtraceRow> {
        self.regions
            .iter()
            .map(|(name, r)| FtraceRow {
                name: name.clone(),
                calls: r.calls,
                seconds: r.seconds(clock_ns),
                extra: vec![r.mflops(clock_ns), r.vector_ratio_pct(), r.average_vector_length()],
            })
            .collect()
    }

    /// Render the classic FTRACE table, sorted by exclusive time.
    pub fn render(&self, clock_ns: f64) -> String {
        render_analysis_list(&["MFLOPS", "V.OP%", "AVG.VL"], self.rows(clock_ns))
    }
}

/// One row of an FTRACE-style analysis list: a named region, how often it
/// was entered, its exclusive seconds, and caller-defined extra columns.
///
/// [`Ftrace::rows`] produces these for simulator regions; other exclusive
/// breakdowns (the `sxd` daemon's per-suite simulated-seconds table) build
/// their own rows and share [`render_analysis_list`] so every breakdown in
/// the system reads the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct FtraceRow {
    pub name: String,
    pub calls: u64,
    pub seconds: f64,
    /// Values for the caller's extra columns, matching `extra_headers`.
    pub extra: Vec<f64>,
}

/// Render rows in the FTRACE format: banner, REGION/CALLS/EXCL.TIME/TIME%
/// plus the caller's extra column headers, sorted by exclusive time with
/// TIME% computed over the rendered set.
pub fn render_analysis_list(extra_headers: &[&str], mut rows: Vec<FtraceRow>) -> String {
    rows.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.name.cmp(&b.name)));
    let total: f64 = rows.iter().map(|r| r.seconds).sum();
    let mut out = String::from(
        "*----------------------*\n|  FTRACE ANALYSIS LIST |\n*----------------------*\n",
    );
    out.push_str(&format!("{:<20} {:>6} {:>12} {:>7}", "REGION", "CALLS", "EXCL.TIME(s)", "TIME%"));
    for h in extra_headers {
        out.push_str(&format!(" {h:>10}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>6} {:>12.6} {:>7.1}",
            r.name,
            r.calls,
            r.seconds,
            if total > 0.0 { 100.0 * r.seconds / total } else { 0.0 },
        ));
        for x in &r.extra {
            out.push_str(&format!(" {x:>10.1}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::timing::LocalityPattern;

    fn vm() -> Vm {
        Vm::new(presets::sx4_benchmarked())
    }

    #[test]
    fn regions_attribute_exclusive_work() {
        let mut vm = vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 10_000];
        let mut b = vec![0.0f64; 10_000];
        ft.region("vector-copy", &mut vm, |vm| vm.copy(&mut b, &a));
        ft.region("scalar-loop", &mut vm, |vm| {
            vm.charge_scalar_loop(5_000, 2.0, 2.0, 1.0, LocalityPattern::Streaming)
        });
        let regions = ft.regions();
        assert_eq!(regions.len(), 2);
        let copy = &regions["vector-copy"];
        let scalar = &regions["scalar-loop"];
        assert_eq!(copy.calls, 1);
        assert!(copy.vector_ratio_pct() > 99.9);
        assert!((copy.average_vector_length() - 10_000.0).abs() < 1.0);
        assert_eq!(scalar.vector_ratio_pct(), 0.0);
        // Exclusive split: the two regions account for everything.
        let total = copy.cost.cycles + scalar.cost.cycles;
        assert!((total - vm.lifetime_cost().cycles).abs() < 1e-9);
    }

    #[test]
    fn repeated_entries_accumulate_calls() {
        let mut vm = vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 64];
        let mut b = vec![0.0f64; 64];
        for _ in 0..5 {
            ft.region("copy", &mut vm, |vm| vm.copy(&mut b, &a));
        }
        assert_eq!(ft.regions()["copy"].calls, 5);
    }

    #[test]
    fn nesting_rejected() {
        let mut ft = Ftrace::new();
        let mut vm = vm();
        ft.enter("outer", &mut vm).unwrap();
        let err = ft.enter("inner", &mut vm).unwrap_err();
        assert!(matches!(err, crate::SimError::RegionAlreadyOpen { .. }), "{err}");
        assert!(ft.exit(&mut vm).is_ok());
        assert_eq!(ft.exit(&mut vm), Err(crate::SimError::NoOpenRegion));
    }

    #[test]
    fn region_markers_recorded_in_trace() {
        let mut vm = vm();
        vm.start_trace();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 64];
        let mut b = vec![0.0f64; 64];
        ft.region("copy", &mut vm, |vm| vm.copy(&mut b, &a));
        let trace = vm.take_trace().unwrap();
        let names: Vec<String> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::EnterRegion { name } => Some(format!("+{name}")),
                crate::trace::TraceEvent::ExitRegion { name } => Some(format!("-{name}")),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["+copy", "-copy"]);
    }

    #[test]
    fn rows_match_render_and_custom_lists_share_the_format() {
        let mut vm = vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        ft.region("copy", &mut vm, |vm| vm.copy(&mut b, &a));
        let rows = ft.rows(9.2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "copy");
        assert_eq!(rows[0].calls, 1);
        assert!(rows[0].seconds > 0.0);
        assert_eq!(rows[0].extra.len(), 3, "mflops, v.op%, avg.vl");
        // A foreign breakdown through the same renderer: banner + headers.
        let table = render_analysis_list(
            &["AVG.STRETCH"],
            vec![
                FtraceRow { name: "fig5".into(), calls: 3, seconds: 6.0, extra: vec![1.02] },
                FtraceRow { name: "radabs".into(), calls: 1, seconds: 1.5, extra: vec![1.0] },
            ],
        );
        assert!(table.contains("FTRACE ANALYSIS LIST"));
        assert!(table.contains("AVG.STRETCH"));
        assert!(table.find("fig5").unwrap() < table.find("radabs").unwrap());
        assert!(table.contains("80.0"), "fig5 holds 80% of the time:\n{table}");
    }

    #[test]
    fn render_sorts_by_time() {
        let mut vm = vm();
        let mut ft = Ftrace::new();
        let small = vec![1.0f64; 100];
        let big = vec![1.0f64; 100_000];
        let mut out_s = vec![0.0f64; 100];
        let mut out_b = vec![0.0f64; 100_000];
        ft.region("small", &mut vm, |vm| vm.copy(&mut out_s, &small));
        ft.region("big", &mut vm, |vm| vm.copy(&mut out_b, &big));
        let table = ft.render(9.2);
        let big_pos = table.find("big").unwrap();
        let small_pos = table.find("small").unwrap();
        assert!(big_pos < small_pos, "bigger region must print first:\n{table}");
        assert!(table.contains("FTRACE ANALYSIS LIST"));
    }
}
