//! Internode Crossbar (IXS) model.
//!
//! Up to 16 SX-4 nodes connect through a non-blocking fibre-channel
//! crossbar: 8 GB/s per node in each direction (independent input and
//! output channels), 128 GB/s bisection bandwidth for a full 16-node
//! system, plus global communications registers for internode
//! synchronization (paper §2.5). Every result in the paper is single-node,
//! but the model is here so multi-node experiments can be expressed; the
//! quickstart example exercises it.

/// An IXS connecting `nodes` SX-4 nodes.
#[derive(Debug, Clone)]
pub struct Ixs {
    /// Number of nodes attached (1..=16).
    pub nodes: usize,
    /// Per-node, per-direction channel bandwidth in bytes/second (8 GB/s).
    pub channel_bytes_per_s: f64,
    /// Aggregate bisection bandwidth in bytes/second (128 GB/s full system).
    pub bisection_bytes_per_s: f64,
    /// One-way message latency through the crossbar, seconds.
    pub latency_s: f64,
}

impl Ixs {
    /// An IXS with the architectural rates for the given node count.
    pub fn new(nodes: usize) -> Ixs {
        assert!((1..=16).contains(&nodes), "the IXS connects up to 16 nodes");
        Ixs {
            nodes,
            channel_bytes_per_s: 8e9,
            // The 128 GB/s figure is for the full 16-node system; smaller
            // systems are limited by their own channels.
            bisection_bytes_per_s: 128e9 * (nodes as f64 / 16.0).min(1.0),
            latency_s: 5e-6,
        }
    }

    /// Seconds for one point-to-point transfer of `bytes` between two nodes.
    pub fn p2p_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.channel_bytes_per_s
    }

    /// Seconds for an all-to-all exchange where every node sends `bytes`
    /// to every other node (the transpose step of a multi-node spectral
    /// model). Limited by the per-node channels and by bisection.
    pub fn all_to_all_seconds(&self, bytes_per_pair: u64) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let per_node_out = bytes_per_pair as f64 * (self.nodes - 1) as f64;
        let channel_time = per_node_out / self.channel_bytes_per_s;
        // Half the traffic crosses the bisection.
        let total = bytes_per_pair as f64 * (self.nodes * (self.nodes - 1)) as f64;
        let bisection_time = (total / 2.0) / self.bisection_bytes_per_s;
        self.latency_s + channel_time.max(bisection_time)
    }

    /// Seconds for a global barrier through the internode communications
    /// registers (log-depth over the crossbar).
    pub fn barrier_seconds(&self) -> f64 {
        let rounds = (self.nodes as f64).log2().ceil().max(1.0);
        rounds * self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_system_bisection_is_128_gb() {
        let ixs = Ixs::new(16);
        assert!((ixs.bisection_bytes_per_s - 128e9).abs() < 1.0);
    }

    #[test]
    fn p2p_rate_is_8gb_per_s() {
        let ixs = Ixs::new(2);
        let s = ixs.p2p_seconds(8_000_000_000);
        assert!((s - 1.0).abs() < 1e-3);
    }

    #[test]
    fn single_node_all_to_all_is_free() {
        let ixs = Ixs::new(1);
        assert_eq!(ixs.all_to_all_seconds(1 << 20), 0.0);
    }

    #[test]
    fn all_to_all_grows_with_nodes() {
        let t2 = Ixs::new(2).all_to_all_seconds(1 << 20);
        let t8 = Ixs::new(8).all_to_all_seconds(1 << 20);
        let t16 = Ixs::new(16).all_to_all_seconds(1 << 20);
        assert!(t2 < t8 && t8 < t16);
    }

    #[test]
    fn barrier_is_log_depth() {
        let b2 = Ixs::new(2).barrier_seconds();
        let b16 = Ixs::new(16).barrier_seconds();
        assert!(b16 > b2);
        assert!((b16 / b2 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "16 nodes")]
    fn too_many_nodes_panics() {
        Ixs::new(17);
    }
}
