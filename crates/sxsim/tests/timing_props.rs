//! Property tests on the timing model: the invariants every analytic cost
//! function must satisfy regardless of parameters.

use proptest::prelude::*;
use sxsim::{presets, Access, Intrinsic, LocalityPattern, MachineModel, VecOp, Vm, VopClass};

fn machines() -> Vec<MachineModel> {
    let mut v = vec![presets::sx4_benchmarked(), presets::sx4_production()];
    v.extend(presets::table1_machines());
    v
}

fn any_class() -> impl Strategy<Value = VopClass> {
    prop_oneof![
        Just(VopClass::Add),
        Just(VopClass::Mul),
        Just(VopClass::Fma),
        Just(VopClass::Div),
        Just(VopClass::Logical),
    ]
}

fn any_access() -> impl Strategy<Value = Access> {
    prop_oneof![
        (1usize..4096).prop_map(Access::Stride),
        Just(Access::Indexed),
        Just(Access::None),
    ]
}

proptest! {
    /// Cost is finite, non-negative, and monotone in n on every machine.
    #[test]
    fn vector_cost_sane_everywhere(
        n in 1usize..500_000,
        class in any_class(),
        load in any_access(),
        store in any_access(),
    ) {
        for m in machines() {
            let cost = |len: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_vector_op(&VecOp::new(len, class, &[load], &[store]));
                vm.cost()
            };
            let c = cost(n);
            prop_assert!(c.cycles.is_finite() && c.cycles > 0.0, "{}: {:?}", m.name, c);
            let c2 = cost(n + n / 2 + 1);
            prop_assert!(c2.cycles >= c.cycles, "{} not monotone", m.name);
        }
    }

    /// Throughput never exceeds the machine's physical ceilings.
    #[test]
    fn no_machine_beats_its_peak(n in 1024usize..1_000_000) {
        for m in machines() {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&VecOp::new(
                n,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[],
            ));
            let c = vm.cost();
            let flops_per_cycle = c.flops as f64 / c.cycles;
            let peak = m.peak_gflops_per_proc() * m.clock_ns; // flops per cycle
            prop_assert!(
                flops_per_cycle <= peak * 1.0001,
                "{}: {flops_per_cycle} > peak {peak}",
                m.name
            );
        }
    }

    /// Intrinsics: cost scales superlinearly never, sublinearly never —
    /// within a tolerance, doubling n doubles the streaming part.
    #[test]
    fn intrinsic_cost_roughly_linear(n in 4096usize..100_000) {
        for m in machines() {
            let cost = |len: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_intrinsic(Intrinsic::Exp, len);
                vm.cost().cycles
            };
            let c1 = cost(n);
            let c2 = cost(2 * n);
            let ratio = c2 / c1;
            prop_assert!((1.8..2.2).contains(&ratio), "{}: ratio {ratio}", m.name);
        }
    }

    /// The scalar model: more cache never hurts, bigger working sets never
    /// help.
    #[test]
    fn cache_monotonicity(ws1 in 1024usize..1_000_000, ws2 in 1024usize..1_000_000) {
        let (small, large) = if ws1 <= ws2 { (ws1, ws2) } else { (ws2, ws1) };
        for m in machines() {
            let cost = |ws: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_scalar_loop(
                    10_000,
                    2.0,
                    3.0,
                    1.0,
                    LocalityPattern::Random { working_set_bytes: ws },
                );
                vm.cost().cycles
            };
            prop_assert!(cost(small) <= cost(large) + 1e-6, "{}", m.name);
        }
    }

    /// Gather is never cheaper than the equivalent unit-stride load on a
    /// vector machine.
    #[test]
    fn gather_never_beats_unit_stride(n in 64usize..200_000) {
        for m in machines().into_iter().filter(|m| m.is_vector()) {
            let cost = |access: Access| {
                let mut vm = Vm::new(m.clone());
                vm.charge_vector_op(&VecOp::new(n, VopClass::Logical, &[access], &[Access::Stride(1)]));
                vm.cost().cycles
            };
            prop_assert!(cost(Access::Indexed) >= cost(Access::Stride(1)), "{}", m.name);
        }
    }

    /// PROGINF bookkeeping: vector + scalar + other time always equals
    /// real time.
    #[test]
    fn proginf_time_partition(
        nvec in 1usize..50_000,
        nscalar in 1usize..50_000,
        nintr in 1usize..50_000,
    ) {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.charge_vector_op(&VecOp::new(nvec, VopClass::Add, &[Access::Stride(1)], &[Access::Stride(1)]));
        vm.charge_scalar_loop(nscalar, 2.0, 2.0, 1.0, LocalityPattern::Streaming);
        vm.charge_intrinsic(Intrinsic::Sqrt, nintr);
        let p = vm.proginf();
        let parts = p.vector_time_s + p.scalar_time_s;
        prop_assert!((parts - p.real_time_s).abs() < 1e-12 * p.real_time_s.max(1e-30));
        prop_assert!(p.vector_operation_ratio_pct >= 0.0 && p.vector_operation_ratio_pct <= 100.0);
    }
}
