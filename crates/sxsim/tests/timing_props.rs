//! Property tests on the timing model: the invariants every analytic cost
//! function must satisfy regardless of parameters.
//!
//! Inputs are drawn by a seeded SplitMix64 sampler (hermetic replacement
//! for proptest), so every run exercises the same deterministic case set.

use sxsim::{presets, Access, Intrinsic, LocalityPattern, MachineModel, VecOp, Vm, VopClass};

/// Deterministic sampler (SplitMix64) standing in for proptest strategies.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [lo, hi).
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn class(&mut self) -> VopClass {
        [VopClass::Add, VopClass::Mul, VopClass::Fma, VopClass::Div, VopClass::Logical]
            [self.usize_in(0, 5)]
    }

    fn access(&mut self) -> Access {
        match self.usize_in(0, 4) {
            0 | 1 => Access::Stride(self.usize_in(1, 4096)),
            2 => Access::Indexed,
            _ => Access::None,
        }
    }
}

const CASES: usize = 128;

fn machines() -> Vec<MachineModel> {
    let mut v = vec![presets::sx4_benchmarked(), presets::sx4_production()];
    v.extend(presets::table1_machines());
    v
}

/// Cost is finite, non-negative, and monotone in n on every machine.
#[test]
fn vector_cost_sane_everywhere() {
    let mut g = Gen(1);
    for _ in 0..CASES {
        let n = g.usize_in(1, 500_000);
        let class = g.class();
        let load = g.access();
        let store = g.access();
        for m in machines() {
            let cost = |len: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_vector_op(&VecOp::new(len, class, &[load], &[store]));
                vm.cost()
            };
            let c = cost(n);
            assert!(c.cycles.is_finite() && c.cycles > 0.0, "{}: {:?}", m.name, c);
            let c2 = cost(n + n / 2 + 1);
            assert!(c2.cycles >= c.cycles, "{} not monotone at n={n}", m.name);
        }
    }
}

/// Throughput never exceeds the machine's physical ceilings.
#[test]
fn no_machine_beats_its_peak() {
    let mut g = Gen(2);
    for _ in 0..CASES {
        let n = g.usize_in(1024, 1_000_000);
        for m in machines() {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&VecOp::new(
                n,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[],
            ));
            let c = vm.cost();
            let flops_per_cycle = c.flops as f64 / c.cycles;
            let peak = m.peak_gflops_per_proc() * m.clock_ns; // flops per cycle
            assert!(
                flops_per_cycle <= peak * 1.0001,
                "{}: {flops_per_cycle} > peak {peak}",
                m.name
            );
        }
    }
}

/// Intrinsics: doubling n doubles the streaming part, within tolerance.
#[test]
fn intrinsic_cost_roughly_linear() {
    let mut g = Gen(3);
    for _ in 0..CASES {
        let n = g.usize_in(4096, 100_000);
        for m in machines() {
            let cost = |len: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_intrinsic(Intrinsic::Exp, len);
                vm.cost().cycles
            };
            let ratio = cost(2 * n) / cost(n);
            assert!((1.8..2.2).contains(&ratio), "{}: ratio {ratio} at n={n}", m.name);
        }
    }
}

/// The scalar model: more cache never hurts, bigger working sets never
/// help.
#[test]
fn cache_monotonicity() {
    let mut g = Gen(4);
    for _ in 0..CASES {
        let ws1 = g.usize_in(1024, 1_000_000);
        let ws2 = g.usize_in(1024, 1_000_000);
        let (small, large) = if ws1 <= ws2 { (ws1, ws2) } else { (ws2, ws1) };
        for m in machines() {
            let cost = |ws: usize| {
                let mut vm = Vm::new(m.clone());
                vm.charge_scalar_loop(
                    10_000,
                    2.0,
                    3.0,
                    1.0,
                    LocalityPattern::Random { working_set_bytes: ws },
                );
                vm.cost().cycles
            };
            assert!(cost(small) <= cost(large) + 1e-6, "{}", m.name);
        }
    }
}

/// Gather is never cheaper than the equivalent unit-stride load on a
/// vector machine.
#[test]
fn gather_never_beats_unit_stride() {
    let mut g = Gen(5);
    for _ in 0..CASES {
        let n = g.usize_in(64, 200_000);
        for m in machines().into_iter().filter(|m| m.is_vector()) {
            let cost = |access: Access| {
                let mut vm = Vm::new(m.clone());
                vm.charge_vector_op(&VecOp::new(
                    n,
                    VopClass::Logical,
                    &[access],
                    &[Access::Stride(1)],
                ));
                vm.cost().cycles
            };
            assert!(cost(Access::Indexed) >= cost(Access::Stride(1)), "{}", m.name);
        }
    }
}

/// PROGINF bookkeeping: vector + scalar + other time always equals real
/// time.
#[test]
fn proginf_time_partition() {
    let mut g = Gen(6);
    for _ in 0..CASES {
        let nvec = g.usize_in(1, 50_000);
        let nscalar = g.usize_in(1, 50_000);
        let nintr = g.usize_in(1, 50_000);
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.charge_vector_op(&VecOp::new(
            nvec,
            VopClass::Add,
            &[Access::Stride(1)],
            &[Access::Stride(1)],
        ));
        vm.charge_scalar_loop(nscalar, 2.0, 2.0, 1.0, LocalityPattern::Streaming);
        vm.charge_intrinsic(Intrinsic::Sqrt, nintr);
        let p = vm.proginf();
        let parts = p.vector_time_s + p.scalar_time_s;
        assert!((parts - p.real_time_s).abs() < 1e-12 * p.real_time_s.max(1e-30));
        assert!(p.vector_operation_ratio_pct >= 0.0 && p.vector_operation_ratio_pct <= 100.0);
    }
}
