//! Property tests for the batched charging and memoized timing paths.
//!
//! The contract under test is strict: `charge_vector_op_repeated(op, k)`
//! must leave the `Vm` in a state *bit-identical* to `k` single
//! `charge_vector_op` calls — every float accumulator compared by
//! `to_bits`, every counter exactly, the trace event-for-event — and a
//! memo hit must return the exact `Cost` of the miss that filled its slot.
//!
//! Inputs are drawn by a seeded SplitMix64 sampler (hermetic replacement
//! for proptest), so every run exercises the same deterministic case set.

use sxsim::{presets, Access, Intrinsic, MachineModel, VecOp, Vm, VopClass};

/// Deterministic sampler (SplitMix64) standing in for proptest strategies.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [lo, hi).
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn class(&mut self) -> VopClass {
        [VopClass::Add, VopClass::Mul, VopClass::Fma, VopClass::Div, VopClass::Logical]
            [self.usize_in(0, 5)]
    }

    fn access(&mut self) -> Access {
        match self.usize_in(0, 4) {
            0 | 1 => Access::Stride(self.usize_in(1, 4096)),
            2 => Access::Indexed,
            _ => Access::None,
        }
    }

    fn vec_op(&mut self) -> VecOp {
        let n = self.usize_in(0, 50_000);
        let class = self.class();
        let loads: Vec<Access> = (0..self.usize_in(1, 3)).map(|_| self.access()).collect();
        let stores: Vec<Access> = (0..self.usize_in(0, 2)).map(|_| self.access()).collect();
        VecOp::new(n, class, &loads, &stores)
    }

    fn intrinsic(&mut self) -> Intrinsic {
        [Intrinsic::Exp, Intrinsic::Log, Intrinsic::Sin, Intrinsic::Sqrt, Intrinsic::Pow]
            [self.usize_in(0, 5)]
    }
}

const CASES: usize = 128;

fn machines() -> Vec<MachineModel> {
    let mut v = vec![presets::sx4_benchmarked(), presets::sx4_production()];
    v.extend(presets::table1_machines());
    v
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

/// Every ledger surface the `Vm` exposes, compared bit-for-bit.
fn assert_vms_identical(batch: &mut Vm, single: &mut Vm, ctx: &str) {
    for (which, a, b) in [
        ("cost", batch.cost(), single.cost()),
        ("lifetime", batch.lifetime_cost(), single.lifetime_cost()),
    ] {
        assert_bits(a.cycles, b.cycles, &format!("{ctx}: {which}.cycles"));
        assert_bits(a.cray_flops, b.cray_flops, &format!("{ctx}: {which}.cray_flops"));
        assert_eq!(a.flops, b.flops, "{ctx}: {which}.flops");
        assert_eq!(a.bytes, b.bytes, "{ctx}: {which}.bytes");
    }
    {
        let (sa, sb) = (batch.stats(), single.stats());
        assert_eq!(sa.vector_ops, sb.vector_ops, "{ctx}: vector_ops");
        assert_eq!(sa.vector_elements, sb.vector_elements, "{ctx}: vector_elements");
        assert_eq!(sa.scalar_iters, sb.scalar_iters, "{ctx}: scalar_iters");
        assert_eq!(sa.intrinsic_calls, sb.intrinsic_calls, "{ctx}: intrinsic_calls");
        assert_eq!(sa.indexed_elements, sb.indexed_elements, "{ctx}: indexed_elements");
        assert_eq!(sa.memo_hits, sb.memo_hits, "{ctx}: memo_hits");
        assert_eq!(sa.memo_misses, sb.memo_misses, "{ctx}: memo_misses");
        assert_bits(sa.vector_cycles, sb.vector_cycles, &format!("{ctx}: vector_cycles"));
        assert_bits(sa.scalar_cycles, sb.scalar_cycles, &format!("{ctx}: scalar_cycles"));
        assert_bits(sa.other_cycles, sb.other_cycles, &format!("{ctx}: other_cycles"));
    }
    let (pa, pb) = (batch.proginf(), single.proginf());
    assert_bits(pa.real_time_s, pb.real_time_s, &format!("{ctx}: proginf.real_time_s"));
    assert_bits(pa.mflops, pb.mflops, &format!("{ctx}: proginf.mflops"));
    assert_bits(
        pa.timing_memo_hit_pct,
        pb.timing_memo_hit_pct,
        &format!("{ctx}: proginf.timing_memo_hit_pct"),
    );
    let (ta, tb) = (batch.take_trace().unwrap(), single.take_trace().unwrap());
    assert_eq!(ta.len(), tb.len(), "{ctx}: trace length");
    assert_eq!(ta.events(), tb.events(), "{ctx}: trace events");
}

/// One batched charge is bit-identical to the loop of single charges, on
/// every machine, for arbitrary descriptors and repeat counts (including
/// 0 and 1).
#[test]
fn batched_vector_charge_equals_loop() {
    let mut g = Gen(11);
    for case in 0..CASES {
        let op = g.vec_op();
        let reps = g.usize_in(0, 40);
        for m in machines() {
            let ctx = format!("case {case} ({} reps={reps})", m.name);
            let mut batch = Vm::new(m.clone());
            let mut single = Vm::new(m.clone());
            batch.start_trace();
            single.start_trace();
            batch.charge_vector_op_repeated(&op, reps);
            for _ in 0..reps {
                single.charge_vector_op(&op);
            }
            assert_vms_identical(&mut batch, &mut single, &ctx);
        }
    }
}

/// Same invariant for the intrinsic path.
#[test]
fn batched_intrinsic_charge_equals_loop() {
    let mut g = Gen(12);
    for case in 0..CASES {
        let f = g.intrinsic();
        let n = g.usize_in(1, 100_000);
        let reps = g.usize_in(0, 40);
        for m in machines() {
            let ctx = format!("case {case} ({} reps={reps})", m.name);
            let mut batch = Vm::new(m.clone());
            let mut single = Vm::new(m.clone());
            batch.start_trace();
            single.start_trace();
            batch.charge_intrinsic_repeated(f, n, reps);
            for _ in 0..reps {
                single.charge_intrinsic(f, n);
            }
            assert_vms_identical(&mut batch, &mut single, &ctx);
        }
    }
}

/// A memo hit returns the exact cost the miss computed: charging the same
/// op twice advances the window ledger by bit-identical increments.
#[test]
fn memo_hit_returns_identical_cost() {
    let mut g = Gen(13);
    for case in 0..CASES {
        let op = g.vec_op();
        for m in machines() {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&op);
            let miss = vm.take_cost();
            vm.charge_vector_op(&op);
            let hit = vm.take_cost();
            let ctx = format!("case {case} ({})", m.name);
            assert_bits(miss.cycles, hit.cycles, &format!("{ctx}: cycles"));
            assert_bits(miss.cray_flops, hit.cray_flops, &format!("{ctx}: cray_flops"));
            assert_eq!(miss.flops, hit.flops, "{ctx}: flops");
            assert_eq!(miss.bytes, hit.bytes, "{ctx}: bytes");
            assert_eq!(vm.stats().memo_misses, 1, "{ctx}: one miss fills the slot");
            assert_eq!(vm.stats().memo_hits, 1, "{ctx}: second charge hits");
        }
    }
}

/// Batched charging accounts memo traffic like the loop would: one
/// resolve, then `reps - 1` hits on the freshly filled slot.
#[test]
fn batched_memo_accounting_mirrors_loop() {
    let mut g = Gen(14);
    for _ in 0..CASES {
        let op = g.vec_op();
        let reps = g.usize_in(1, 200);
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.charge_vector_op_repeated(&op, reps);
        assert_eq!(vm.stats().memo_misses, 1);
        assert_eq!(vm.stats().memo_hits, (reps - 1) as u64);
    }
}

/// `Vm::transpose` (internally a batch of `n` column ops) stays
/// bit-identical to the explicit loop of column charges it replaced.
#[test]
fn transpose_batch_matches_column_loop() {
    for n in [1usize, 7, 64, 255] {
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut b = vec![0.0f64; n * n];
        let mut batch = Vm::new(presets::sx4_benchmarked());
        batch.transpose(&mut b, &a, n);

        let mut single = Vm::new(presets::sx4_benchmarked());
        let column = VecOp::new(n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(n)]);
        for _ in 0..n {
            single.charge_vector_op(&column);
        }
        let (ca, cb) = (batch.cost(), single.cost());
        assert_bits(ca.cycles, cb.cycles, &format!("transpose n={n}: cycles"));
        assert_eq!(ca.flops, cb.flops);
        assert_eq!(ca.bytes, cb.bytes);
        assert_eq!(batch.stats().vector_ops, single.stats().vector_ops);
        // And the data really moved.
        for j in 0..n {
            for i in 0..n {
                assert_eq!(b[i + j * n], a[j + i * n]);
            }
        }
    }
}
