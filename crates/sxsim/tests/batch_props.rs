//! Property tests for the batched charging and memoized timing paths.
//!
//! The contract under test is strict: `charge_vector_op_repeated(op, k)`
//! must leave the `Vm` in a state *bit-identical* to `k` single
//! `charge_vector_op` calls — every float accumulator compared by
//! `to_bits`, every counter exactly, the trace event-for-event — and a
//! memo hit must return the exact `Cost` of the miss that filled its slot.
//!
//! Inputs are drawn by a seeded SplitMix64 sampler (hermetic replacement
//! for proptest), so every run exercises the same deterministic case set.

use sxsim::{presets, Access, Cost, Intrinsic, LocalityPattern, MachineModel, VecOp, Vm, VopClass};

/// Deterministic sampler (SplitMix64) standing in for proptest strategies.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [lo, hi).
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn class(&mut self) -> VopClass {
        [VopClass::Add, VopClass::Mul, VopClass::Fma, VopClass::Div, VopClass::Logical]
            [self.usize_in(0, 5)]
    }

    fn access(&mut self) -> Access {
        match self.usize_in(0, 4) {
            0 | 1 => Access::Stride(self.usize_in(1, 4096)),
            2 => Access::Indexed,
            _ => Access::None,
        }
    }

    fn vec_op(&mut self) -> VecOp {
        let n = self.usize_in(0, 50_000);
        let class = self.class();
        let loads: Vec<Access> = (0..self.usize_in(1, 3)).map(|_| self.access()).collect();
        let stores: Vec<Access> = (0..self.usize_in(0, 2)).map(|_| self.access()).collect();
        VecOp::new(n, class, &loads, &stores)
    }

    fn intrinsic(&mut self) -> Intrinsic {
        [Intrinsic::Exp, Intrinsic::Log, Intrinsic::Sin, Intrinsic::Sqrt, Intrinsic::Pow]
            [self.usize_in(0, 5)]
    }

    fn pattern(&mut self) -> LocalityPattern {
        match self.usize_in(0, 3) {
            0 => LocalityPattern::Streaming,
            1 => LocalityPattern::Resident { working_set_bytes: self.usize_in(64, 1 << 22) },
            _ => LocalityPattern::Random { working_set_bytes: self.usize_in(64, 1 << 22) },
        }
    }

    /// Small fractional per-iteration amount (flops/loads/stores/branches).
    fn amount(&mut self) -> f64 {
        self.usize_in(0, 16) as f64 * 0.5
    }

    fn charge_desc(&mut self) -> Charge {
        match self.usize_in(0, 6) {
            0 | 1 => Charge::Vector { op: self.vec_op(), reps: self.usize_in(1, 20) },
            2 => Charge::Intrinsic {
                f: self.intrinsic(),
                n: self.usize_in(1, 50_000),
                reps: self.usize_in(1, 20),
            },
            3 | 4 => Charge::Scalar {
                iters: self.usize_in(1, 10_000),
                flops: self.amount(),
                loads: self.amount(),
                stores: self.amount(),
                branches: if self.usize_in(0, 2) == 0 { None } else { Some(self.amount()) },
                pattern: self.pattern(),
            },
            _ => Charge::Raw {
                cost: Cost {
                    cycles: self.usize_in(0, 1_000_000) as f64,
                    flops: self.next() % 1_000_000,
                    cray_flops: self.usize_in(0, 1_000_000) as f64,
                    bytes: self.next() % (1 << 20),
                },
            },
        }
    }

    /// A random charge sequence, as a hot caller would issue it.
    fn sequence(&mut self) -> Vec<Charge> {
        (0..self.usize_in(1, 12)).map(|_| self.charge_desc()).collect()
    }
}

/// One charge-site invocation, replayable against any `Vm`.
#[derive(Clone)]
enum Charge {
    Vector {
        op: VecOp,
        reps: usize,
    },
    Intrinsic {
        f: Intrinsic,
        n: usize,
        reps: usize,
    },
    Scalar {
        iters: usize,
        flops: f64,
        loads: f64,
        stores: f64,
        branches: Option<f64>,
        pattern: LocalityPattern,
    },
    Raw {
        cost: Cost,
    },
}

impl Charge {
    /// Issue through the batched entry points, exactly as the converted
    /// call sites do (this is what gets recorded into a program).
    fn issue(&self, vm: &mut Vm) {
        match self {
            Charge::Vector { op, reps } => vm.charge_vector_op_repeated(op, *reps),
            Charge::Intrinsic { f, n, reps } => vm.charge_intrinsic_repeated(*f, *n, *reps),
            Charge::Scalar { iters, flops, loads, stores, branches, pattern } => match branches {
                Some(b) => {
                    vm.charge_scalar_loop_branchy(*iters, *flops, *loads, *stores, *b, *pattern)
                }
                None => vm.charge_scalar_loop(*iters, *flops, *loads, *stores, *pattern),
            },
            Charge::Raw { cost } => vm.charge(*cost),
        }
    }

    /// Issue as the fully unrolled op-by-op loop, with this call's
    /// repetition count multiplied by `scale` — the reference semantics
    /// for `Vm::replay_program_scaled`.
    fn issue_singles(&self, vm: &mut Vm, scale: usize) {
        match self {
            Charge::Vector { op, reps } => {
                for _ in 0..reps * scale {
                    vm.charge_vector_op(op);
                }
            }
            Charge::Intrinsic { f, n, reps } => {
                for _ in 0..reps * scale {
                    vm.charge_intrinsic(*f, *n);
                }
            }
            Charge::Scalar { iters, flops, loads, stores, branches, pattern } => {
                for _ in 0..scale {
                    match branches {
                        Some(b) => vm.charge_scalar_loop_branchy(
                            *iters, *flops, *loads, *stores, *b, *pattern,
                        ),
                        None => vm.charge_scalar_loop(*iters, *flops, *loads, *stores, *pattern),
                    }
                }
            }
            Charge::Raw { cost } => {
                for _ in 0..scale {
                    vm.charge(*cost);
                }
            }
        }
    }
}

const CASES: usize = 128;

fn machines() -> Vec<MachineModel> {
    let mut v = vec![presets::sx4_benchmarked(), presets::sx4_production()];
    v.extend(presets::table1_machines());
    v
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

/// Every ledger surface the `Vm` exposes, compared bit-for-bit.
fn assert_vms_identical(batch: &mut Vm, single: &mut Vm, ctx: &str) {
    for (which, a, b) in [
        ("cost", batch.cost(), single.cost()),
        ("lifetime", batch.lifetime_cost(), single.lifetime_cost()),
    ] {
        assert_bits(a.cycles, b.cycles, &format!("{ctx}: {which}.cycles"));
        assert_bits(a.cray_flops, b.cray_flops, &format!("{ctx}: {which}.cray_flops"));
        assert_eq!(a.flops, b.flops, "{ctx}: {which}.flops");
        assert_eq!(a.bytes, b.bytes, "{ctx}: {which}.bytes");
    }
    {
        let (sa, sb) = (batch.stats(), single.stats());
        assert_eq!(sa.vector_ops, sb.vector_ops, "{ctx}: vector_ops");
        assert_eq!(sa.vector_elements, sb.vector_elements, "{ctx}: vector_elements");
        assert_eq!(sa.scalar_iters, sb.scalar_iters, "{ctx}: scalar_iters");
        assert_eq!(sa.intrinsic_calls, sb.intrinsic_calls, "{ctx}: intrinsic_calls");
        assert_eq!(sa.indexed_elements, sb.indexed_elements, "{ctx}: indexed_elements");
        assert_eq!(sa.memo_hits, sb.memo_hits, "{ctx}: memo_hits");
        assert_eq!(sa.memo_misses, sb.memo_misses, "{ctx}: memo_misses");
        assert_bits(sa.vector_cycles, sb.vector_cycles, &format!("{ctx}: vector_cycles"));
        assert_bits(sa.scalar_cycles, sb.scalar_cycles, &format!("{ctx}: scalar_cycles"));
        assert_bits(sa.other_cycles, sb.other_cycles, &format!("{ctx}: other_cycles"));
    }
    let (pa, pb) = (batch.proginf(), single.proginf());
    assert_bits(pa.real_time_s, pb.real_time_s, &format!("{ctx}: proginf.real_time_s"));
    assert_bits(pa.mflops, pb.mflops, &format!("{ctx}: proginf.mflops"));
    assert_bits(
        pa.timing_memo_hit_pct,
        pb.timing_memo_hit_pct,
        &format!("{ctx}: proginf.timing_memo_hit_pct"),
    );
    let (ta, tb) = (batch.take_trace().unwrap(), single.take_trace().unwrap());
    assert_eq!(ta.len(), tb.len(), "{ctx}: trace length");
    assert_eq!(ta.events(), tb.events(), "{ctx}: trace events");
}

/// One batched charge is bit-identical to the loop of single charges, on
/// every machine, for arbitrary descriptors and repeat counts (including
/// 0 and 1).
#[test]
fn batched_vector_charge_equals_loop() {
    let mut g = Gen(11);
    for case in 0..CASES {
        let op = g.vec_op();
        let reps = g.usize_in(0, 40);
        for m in machines() {
            let ctx = format!("case {case} ({} reps={reps})", m.name);
            let mut batch = Vm::new(m.clone());
            let mut single = Vm::new(m.clone());
            batch.start_trace();
            single.start_trace();
            batch.charge_vector_op_repeated(&op, reps);
            for _ in 0..reps {
                single.charge_vector_op(&op);
            }
            assert_vms_identical(&mut batch, &mut single, &ctx);
        }
    }
}

/// Same invariant for the intrinsic path.
#[test]
fn batched_intrinsic_charge_equals_loop() {
    let mut g = Gen(12);
    for case in 0..CASES {
        let f = g.intrinsic();
        let n = g.usize_in(1, 100_000);
        let reps = g.usize_in(0, 40);
        for m in machines() {
            let ctx = format!("case {case} ({} reps={reps})", m.name);
            let mut batch = Vm::new(m.clone());
            let mut single = Vm::new(m.clone());
            batch.start_trace();
            single.start_trace();
            batch.charge_intrinsic_repeated(f, n, reps);
            for _ in 0..reps {
                single.charge_intrinsic(f, n);
            }
            assert_vms_identical(&mut batch, &mut single, &ctx);
        }
    }
}

/// A memo hit returns the exact cost the miss computed: charging the same
/// op twice advances the window ledger by bit-identical increments.
#[test]
fn memo_hit_returns_identical_cost() {
    let mut g = Gen(13);
    for case in 0..CASES {
        let op = g.vec_op();
        for m in machines() {
            let mut vm = Vm::new(m.clone());
            vm.charge_vector_op(&op);
            let miss = vm.take_cost();
            vm.charge_vector_op(&op);
            let hit = vm.take_cost();
            let ctx = format!("case {case} ({})", m.name);
            assert_bits(miss.cycles, hit.cycles, &format!("{ctx}: cycles"));
            assert_bits(miss.cray_flops, hit.cray_flops, &format!("{ctx}: cray_flops"));
            assert_eq!(miss.flops, hit.flops, "{ctx}: flops");
            assert_eq!(miss.bytes, hit.bytes, "{ctx}: bytes");
            assert_eq!(vm.stats().memo_misses, 1, "{ctx}: one miss fills the slot");
            assert_eq!(vm.stats().memo_hits, 1, "{ctx}: second charge hits");
        }
    }
}

/// Batched charging accounts memo traffic like the loop would: one
/// resolve, then `reps - 1` hits on the freshly filled slot.
#[test]
fn batched_memo_accounting_mirrors_loop() {
    let mut g = Gen(14);
    for _ in 0..CASES {
        let op = g.vec_op();
        let reps = g.usize_in(1, 200);
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.charge_vector_op_repeated(&op, reps);
        assert_eq!(vm.stats().memo_misses, 1);
        assert_eq!(vm.stats().memo_hits, (reps - 1) as u64);
    }
}

/// `Vm::transpose` (internally a batch of `n` column ops) stays
/// bit-identical to the explicit loop of column charges it replaced.
#[test]
fn transpose_batch_matches_column_loop() {
    for n in [1usize, 7, 64, 255] {
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut b = vec![0.0f64; n * n];
        let mut batch = Vm::new(presets::sx4_benchmarked());
        batch.transpose(&mut b, &a, n);

        let mut single = Vm::new(presets::sx4_benchmarked());
        let column = VecOp::new(n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(n)]);
        for _ in 0..n {
            single.charge_vector_op(&column);
        }
        let (ca, cb) = (batch.cost(), single.cost());
        assert_bits(ca.cycles, cb.cycles, &format!("transpose n={n}: cycles"));
        assert_eq!(ca.flops, cb.flops);
        assert_eq!(ca.bytes, cb.bytes);
        assert_eq!(batch.stats().vector_ops, single.stats().vector_ops);
        // And the data really moved.
        for j in 0..n {
            for i in 0..n {
                assert_eq!(b[i + j * n], a[j + i * n]);
            }
        }
    }
}

/// Recording a charge program and replaying it on a fresh `Vm` is
/// bit-identical to the fully unrolled op-by-op loop: ledgers, memo
/// accounting (the rounded byte count included) and the trace, on every
/// preset machine. This is the end-to-end form of the batching contract —
/// replay routes through the same `*_repeated` entry points the
/// per-charge tests above pin down.
#[test]
fn recorded_replay_is_bit_identical_to_op_by_op() {
    let mut g = Gen(15);
    for case in 0..64 {
        let seq = g.sequence();
        for m in machines() {
            let ctx = format!("case {case} ({}, {} charges)", m.name, seq.len());
            let mut single = Vm::new(m.clone());
            single.start_trace();
            for c in &seq {
                c.issue_singles(&mut single, 1);
            }

            let mut recorder = Vm::new(m.clone());
            recorder.start_program_record();
            for c in &seq {
                c.issue(&mut recorder);
            }
            let program = recorder.take_program().expect("recording was active");

            let mut replay = Vm::new(m.clone());
            replay.start_trace();
            replay.replay_program(&program);
            assert_vms_identical(&mut replay, &mut single, &format!("{ctx}: replay vs loop"));
        }
    }
}

/// Recording is invisible to the recording `Vm`: with the recorder
/// attached, every ledger surface stays bit-identical to issuing the same
/// batched charges without one.
#[test]
fn recording_does_not_perturb_the_recording_vm() {
    let mut g = Gen(16);
    for case in 0..64 {
        let seq = g.sequence();
        for m in machines() {
            let ctx = format!("case {case} ({})", m.name);
            let mut plain = Vm::new(m.clone());
            plain.start_trace();
            for c in &seq {
                c.issue(&mut plain);
            }

            let mut recorder = Vm::new(m.clone());
            recorder.start_trace();
            recorder.start_program_record();
            for c in &seq {
                c.issue(&mut recorder);
            }
            assert!(recorder.take_program().is_some(), "{ctx}: program captured");
            assert_vms_identical(&mut recorder, &mut plain, &ctx);
        }
    }
}

/// `Vm::replay_program_scaled(p, k)` equals the original call sequence
/// with every call's repetition count multiplied by `k` — including
/// `k == 0`, which must charge nothing.
#[test]
fn scaled_replay_matches_the_scaled_call_sequence() {
    let mut g = Gen(17);
    for case in 0..48 {
        let seq = g.sequence();
        let scale = [0usize, 1, 2, 5][g.usize_in(0, 4)];
        for m in machines() {
            let ctx = format!("case {case} ({} scale={scale})", m.name);
            let mut single = Vm::new(m.clone());
            single.start_trace();
            for c in &seq {
                c.issue_singles(&mut single, scale);
            }

            let mut recorder = Vm::new(m.clone());
            recorder.start_program_record();
            for c in &seq {
                c.issue(&mut recorder);
            }
            let program = recorder.take_program().expect("recording was active");

            let mut replay = Vm::new(m.clone());
            replay.start_trace();
            replay.replay_program_scaled(&program, scale);
            assert_vms_identical(&mut replay, &mut single, &ctx);
        }
    }
}
