//! Contract tests for `Vm` edge cases the call sites rely on: the empty
//! `max_abs` query and `copy_strided`'s up-front bounds checking.

use sxsim::{presets, Vm};

fn vm() -> Vm {
    Vm::new(presets::sx4_benchmarked())
}

#[test]
fn max_abs_on_empty_slice_is_a_free_query() {
    let mut m = vm();
    let (idx, val) = m.max_abs(&[]);
    assert_eq!((idx, val), (0, 0.0), "neutral element for the empty scan");
    let c = m.cost();
    assert_eq!(c.cycles, 0.0, "a zero-length op must not charge cycles");
    assert_eq!(c.bytes, 0);
    assert_eq!(c.flops, 0);
}

#[test]
fn max_abs_finds_largest_magnitude_with_index() {
    let mut m = vm();
    let (idx, val) = m.max_abs(&[1.0, -9.5, 3.0, 9.5]);
    // Strictly-greater scan: the first occurrence of the max magnitude wins.
    assert_eq!(idx, 1);
    assert_eq!(val, 9.5);
    assert!(m.cost().cycles > 0.0);
}

#[test]
fn copy_strided_within_bounds_copies_and_charges() {
    let mut m = vm();
    let src: Vec<f64> = (0..12).map(|i| i as f64).collect();
    let mut dst = vec![0.0f64; 9];
    // 4 elements: reads 0, 3, 6, 9; writes 0, 2, 4, 6 — both exactly the
    // last in-range index.
    m.copy_strided(&mut dst, 2, &src, 3, 4);
    assert_eq!(dst, vec![0.0, 0.0, 3.0, 0.0, 6.0, 0.0, 9.0, 0.0, 0.0]);
    assert!(m.cost().cycles > 0.0);
}

#[test]
fn copy_strided_zero_elements_is_free_even_with_wild_strides() {
    let mut m = vm();
    let src = [1.0f64];
    let mut dst = [0.0f64];
    m.copy_strided(&mut dst, usize::MAX, &src, usize::MAX, 0);
    assert_eq!(dst, [0.0]);
    assert_eq!(m.cost().cycles, 0.0);
}

#[test]
#[should_panic(expected = "copy_strided reads past src")]
fn copy_strided_panics_up_front_when_stride_overruns_src() {
    let mut m = vm();
    let src = [1.0f64; 8];
    let mut dst = [0.0f64; 64];
    // (n-1)*ss = 3*3 = 9 >= src.len() = 8: must panic before touching dst.
    m.copy_strided(&mut dst, 1, &src, 3, 4);
}

#[test]
#[should_panic(expected = "copy_strided writes past dst")]
fn copy_strided_panics_up_front_when_stride_overruns_dst() {
    let mut m = vm();
    let src = [1.0f64; 64];
    let mut dst = [0.0f64; 8];
    // (n-1)*ds = 3*4 = 12 >= dst.len() = 8.
    m.copy_strided(&mut dst, 4, &src, 1, 4);
}
