//! Equation of state for seawater: density as a function of potential
//! temperature, salinity and depth. Both ocean models evaluate it every
//! step at every point; like the real UNESCO polynomial it is
//! multiply/add-heavy with a few intrinsics, so it is priced through the
//! vector facade.

use sxsim::Vm;

/// Reference density (kg/m^3).
pub const RHO0: f64 = 1027.0;

/// Density anomaly (kg/m^3 minus RHO0) of one point: a simplified
/// UNESCO-style fit — linear terms, thermal-expansion curvature, a
/// pressure (depth) correction with a square root in the compressibility.
pub fn density_point(temp: f64, salt: f64, depth_m: f64) -> f64 {
    let t = temp;
    let s = salt - 35.0;
    let p = depth_m * 0.1; // ~bar
    let alpha = 0.068 + 0.011 * t - 4.0e-5 * t * t; // thermal expansion grows with T
    let beta = 0.78;
    let compress = 0.046 * p / (1.0 + 0.004 * (1.0 + p).sqrt());
    -alpha * (t - 10.0) + beta * s + compress
}

/// Vectorized density over a batch of points; real values, machine-priced.
pub fn density(vm: &mut Vm, out: &mut [f64], temp: &[f64], salt: &[f64], depth_m: f64) {
    assert_eq!(out.len(), temp.len());
    assert_eq!(out.len(), salt.len());
    for ((o, &t), &s) in out.iter_mut().zip(temp).zip(salt) {
        *o = density_point(t, s, depth_m);
    }
    use sxsim::{Access, VecOp, VopClass};
    // ~8 fused ops + one sqrt-class op per point.
    vm.charge_vector_op_repeated(
        &VecOp::new(
            out.len(),
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ),
        8,
    );
    vm.charge_intrinsic(sxsim::Intrinsic::Sqrt, out.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn colder_water_is_denser() {
        for depth in [0.0, 1000.0, 4000.0] {
            let warm = density_point(20.0, 35.0, depth);
            let cold = density_point(2.0, 35.0, depth);
            assert!(cold > warm, "depth {depth}");
        }
    }

    #[test]
    fn saltier_water_is_denser() {
        let fresh = density_point(10.0, 33.0, 500.0);
        let salty = density_point(10.0, 37.0, 500.0);
        assert!(salty > fresh);
    }

    #[test]
    fn deeper_water_is_denser() {
        let shallow = density_point(4.0, 35.0, 0.0);
        let deep = density_point(4.0, 35.0, 4000.0);
        assert!(deep > shallow);
    }

    #[test]
    fn anomalies_are_physically_small() {
        for t in [-2.0, 5.0, 15.0, 28.0] {
            for s in [32.0, 35.0, 37.5] {
                for d in [0.0, 500.0, 5000.0] {
                    let r = density_point(t, s, d);
                    assert!(r.abs() < 50.0, "rho'({t},{s},{d}) = {r}");
                }
            }
        }
    }

    #[test]
    fn vector_form_matches_pointwise() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let t = vec![1.0, 10.0, 25.0];
        let s = vec![34.0, 35.0, 36.0];
        let mut out = vec![0.0; 3];
        density(&mut vm, &mut out, &t, &s, 750.0);
        for i in 0..3 {
            assert_eq!(out[i], density_point(t[i], s[i], 750.0));
        }
        assert!(vm.cost().cycles > 0.0);
    }
}
