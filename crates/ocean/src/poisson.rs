//! Elliptic solvers for the ocean models' barotropic modes.
//!
//! MOM's rigid lid requires a Poisson solve for the barotropic
//! streamfunction every step (here: Jacobi relaxation with a fixed sweep
//! budget, the vectorizable classic); POP's implicit free surface solves
//! an SPD Helmholtz system by conjugate gradients. Both operate on a
//! periodic-in-longitude, wall-bounded-in-latitude grid and charge the
//! machine for their stencil sweeps and reductions.

use sxsim::{Access, VecOp, Vm, VopClass};

/// A 2-D field on an nlat x nlon grid, periodic in longitude.
#[derive(Debug, Clone)]
pub struct Grid2 {
    pub nlat: usize,
    pub nlon: usize,
    pub data: Vec<f64>,
}

impl Grid2 {
    pub fn zeros(nlat: usize, nlon: usize) -> Grid2 {
        Grid2 { nlat, nlon, data: vec![0.0; nlat * nlon] }
    }

    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.nlon + j]
    }

    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.nlon + j] = v;
    }

    /// 5-point Laplacian with periodic longitude and Dirichlet (zero)
    /// walls in latitude — the rigid-lid streamfunction boundary.
    pub fn laplacian(&self, i: usize, j: usize) -> f64 {
        let n = self.nlon;
        let jm = (j + n - 1) % n;
        let jp = (j + 1) % n;
        let up = if i == 0 { 0.0 } else { self.at(i - 1, j) };
        let dn = if i + 1 == self.nlat { 0.0 } else { self.at(i + 1, j) };
        up + dn + self.at(i, jm) + self.at(i, jp) - 4.0 * self.at(i, j)
    }

    /// 5-point Laplacian with periodic longitude and Neumann (no-flux)
    /// walls in latitude — the free-surface boundary: the wall ghost
    /// mirrors the interior value, so the operator conserves the domain
    /// integral exactly.
    pub fn laplacian_neumann(&self, i: usize, j: usize) -> f64 {
        let n = self.nlon;
        let jm = (j + n - 1) % n;
        let jp = (j + 1) % n;
        let c = self.at(i, j);
        let up = if i == 0 { c } else { self.at(i - 1, j) };
        let dn = if i + 1 == self.nlat { c } else { self.at(i + 1, j) };
        up + dn + self.at(i, jm) + self.at(i, jp) - 4.0 * c
    }
}

/// Charge one full-stencil sweep over the interior.
fn charge_sweep(vm: &mut Vm, nlat: usize, nlon: usize) {
    // Per latitude row: the 5-point update is ~6 fused ops over nlon.
    vm.charge_vector_op_repeated(
        &VecOp::new(
            nlon,
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ),
        nlat * 6,
    );
}

/// Jacobi relaxation for `lap(x) = rhs`: runs exactly `sweeps` sweeps (the
/// fixed-budget style of the rigid-lid solvers) and returns the final
/// residual norm.
pub fn jacobi(vm: &mut Vm, x: &mut Grid2, rhs: &Grid2, sweeps: usize) -> f64 {
    assert_eq!(x.nlat, rhs.nlat);
    assert_eq!(x.nlon, rhs.nlon);
    let (nlat, nlon) = (x.nlat, x.nlon);
    let mut next = x.clone();
    for _ in 0..sweeps {
        for i in 0..nlat {
            for j in 0..nlon {
                let n = nlon;
                let jm = (j + n - 1) % n;
                let jp = (j + 1) % n;
                let up = if i == 0 { 0.0 } else { x.at(i - 1, j) };
                let dn = if i + 1 == nlat { 0.0 } else { x.at(i + 1, j) };
                let sum = up + dn + x.at(i, jm) + x.at(i, jp);
                next.set(i, j, 0.25 * (sum - rhs.at(i, j)));
            }
        }
        std::mem::swap(&mut x.data, &mut next.data);
        charge_sweep(vm, nlat, nlon);
    }
    residual_norm(vm, x, rhs)
}

/// ||lap(x) - rhs||_2, charged as a reduction.
pub fn residual_norm(vm: &mut Vm, x: &Grid2, rhs: &Grid2) -> f64 {
    let mut s = 0.0;
    for i in 0..x.nlat {
        for j in 0..x.nlon {
            let r = x.laplacian(i, j) - rhs.at(i, j);
            s += r * r;
        }
    }
    charge_sweep(vm, x.nlat, x.nlon);
    s.sqrt()
}

/// Conjugate gradients for the free-surface Helmholtz operator
/// `(alpha - lap) x = rhs`, alpha > 0 (SPD). Returns (iterations, final
/// residual norm). Stencil applications optionally go through the
/// "unvectorized CSHIFT" path the POP benchmark hit (paper §4.7.3).
pub struct CgOptions {
    pub alpha: f64,
    pub tol: f64,
    pub max_iter: usize,
    /// Price stencil shifts through the scalar unit, as the pre-release
    /// NEC F90 compiler did with CSHIFT.
    pub scalar_cshift: bool,
    /// Use no-flux (Neumann) latitude walls instead of Dirichlet — the
    /// free-surface boundary condition (conserves the domain integral).
    pub neumann: bool,
}

/// Apply the Helmholtz operator, charging either the vector or the
/// scalar-CSHIFT path.
fn apply_helmholtz(vm: &mut Vm, out: &mut Grid2, x: &Grid2, opt: &CgOptions) {
    let (alpha, scalar_cshift) = (opt.alpha, opt.scalar_cshift);
    for i in 0..x.nlat {
        for j in 0..x.nlon {
            let lap = if opt.neumann { x.laplacian_neumann(i, j) } else { x.laplacian(i, j) };
            out.set(i, j, alpha * x.at(i, j) - lap);
        }
    }
    if scalar_cshift {
        // Four CSHIFTs through the scalar unit + vector combine; the first
        // streams the field, the rest re-read it from cache.
        vm.charge_scalar_loop(x.nlat * x.nlon, 0.0, 1.0, 1.0, sxsim::LocalityPattern::Streaming);
        for _ in 1..4 {
            vm.charge_scalar_loop(
                x.nlat * x.nlon,
                0.0,
                1.0,
                1.0,
                sxsim::LocalityPattern::Resident { working_set_bytes: 16 * 1024 },
            );
        }
        vm.charge_vector_op_repeated(
            &VecOp::new(
                x.nlon,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ),
            x.nlat * 2,
        );
    } else {
        charge_sweep(vm, x.nlat, x.nlon);
    }
}

/// Dot product of two grids, charged as a vector reduction.
fn grid_dot(vm: &mut Vm, a: &Grid2, b: &Grid2) -> f64 {
    vm.charge_vector_op(&VecOp::new(
        a.data.len(),
        VopClass::Fma,
        &[Access::Stride(1), Access::Stride(1)],
        &[],
    ));
    a.data.iter().zip(&b.data).map(|(&x, &y)| x * y).sum()
}

/// y += s * x over grids.
fn grid_axpy(vm: &mut Vm, y: &mut Grid2, s: f64, x: &Grid2) {
    vm.axpy(&mut y.data, s, &x.data);
}

/// Solve `(alpha - lap) x = rhs` by CG.
pub fn conjugate_gradient(
    vm: &mut Vm,
    x: &mut Grid2,
    rhs: &Grid2,
    opt: &CgOptions,
) -> (usize, f64) {
    let (nlat, nlon) = (x.nlat, x.nlon);
    let mut ax = Grid2::zeros(nlat, nlon);
    apply_helmholtz(vm, &mut ax, x, opt);
    let mut r = Grid2::zeros(nlat, nlon);
    for i in 0..r.data.len() {
        r.data[i] = rhs.data[i] - ax.data[i];
    }
    let mut p = r.clone();
    let mut rr = grid_dot(vm, &r, &r);
    let rhs_norm = grid_dot(vm, rhs, rhs).sqrt().max(1e-300);

    for it in 0..opt.max_iter {
        if rr.sqrt() / rhs_norm < opt.tol {
            return (it, rr.sqrt());
        }
        apply_helmholtz(vm, &mut ax, &p, opt);
        let pap = grid_dot(vm, &p, &ax);
        if pap <= 0.0 {
            return (it, rr.sqrt()); // operator should be SPD; stop safely
        }
        let alpha = rr / pap;
        grid_axpy(vm, x, alpha, &p);
        grid_axpy(vm, &mut r, -alpha, &ax);
        let rr_new = grid_dot(vm, &r, &r);
        let beta = rr_new / rr;
        for i in 0..p.data.len() {
            p.data[i] = r.data[i] + beta * p.data[i];
        }
        vm.charge_vector_op(&VecOp::new(
            p.data.len(),
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ));
        rr = rr_new;
    }
    (opt.max_iter, rr.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn vm() -> Vm {
        Vm::new(presets::sx4_benchmarked())
    }

    /// Manufactured solution: pick x*, compute rhs = op(x*), solve, compare.
    fn manufactured(nlat: usize, nlon: usize) -> Grid2 {
        let mut x = Grid2::zeros(nlat, nlon);
        for i in 0..nlat {
            for j in 0..nlon {
                let a = (i as f64 + 1.0) / (nlat as f64 + 1.0);
                let b = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
                x.set(i, j, (std::f64::consts::PI * a).sin() * b.cos());
            }
        }
        x
    }

    #[test]
    fn cg_solves_manufactured_problem() {
        let mut vm = vm();
        let star = manufactured(24, 48);
        let alpha = 0.8;
        let mut rhs = Grid2::zeros(24, 48);
        for i in 0..24 {
            for j in 0..48 {
                rhs.set(i, j, alpha * star.at(i, j) - star.laplacian(i, j));
            }
        }
        let mut x = Grid2::zeros(24, 48);
        let (iters, res) = conjugate_gradient(
            &mut vm,
            &mut x,
            &rhs,
            &CgOptions { alpha, tol: 1e-10, max_iter: 2000, scalar_cshift: false, neumann: false },
        );
        assert!(iters < 2000, "CG did not converge");
        assert!(res < 1e-6);
        let err = x.data.iter().zip(&star.data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(err < 1e-6, "max error {err}");
    }

    #[test]
    fn jacobi_reduces_residual() {
        let mut vm = vm();
        let mut rhs = Grid2::zeros(16, 32);
        rhs.set(8, 16, 1.0);
        rhs.set(4, 7, -0.5);
        let mut x = Grid2::zeros(16, 32);
        let r0 = residual_norm(&mut vm, &x, &rhs);
        let r1 = jacobi(&mut vm, &mut x, &rhs, 50);
        let r2 = jacobi(&mut vm, &mut x, &rhs, 200);
        assert!(r1 < 0.6 * r0, "{r0} -> {r1}");
        assert!(r2 < r1);
    }

    #[test]
    fn scalar_cshift_is_much_more_expensive() {
        let star = manufactured(32, 64);
        let mut rhs = Grid2::zeros(32, 64);
        for i in 0..32 {
            for j in 0..64 {
                rhs.set(i, j, star.at(i, j) - star.laplacian(i, j));
            }
        }
        let run = |scalar: bool| {
            let mut vm = vm();
            let mut x = Grid2::zeros(32, 64);
            conjugate_gradient(
                &mut vm,
                &mut x,
                &rhs,
                &CgOptions {
                    alpha: 1.0,
                    tol: 1e-8,
                    max_iter: 500,
                    scalar_cshift: scalar,
                    neumann: false,
                },
            );
            vm.cost().cycles
        };
        let vec_cycles = run(false);
        let scalar_cycles = run(true);
        assert!(
            scalar_cycles > 3.0 * vec_cycles,
            "scalar CSHIFT {scalar_cycles} vs vector {vec_cycles}"
        );
    }

    #[test]
    fn laplacian_of_constant_interior_is_zero_modulo_walls() {
        let mut g = Grid2::zeros(8, 16);
        for v in &mut g.data {
            *v = 3.0;
        }
        // Interior rows see 0; wall rows feel the zero boundary.
        assert_eq!(g.laplacian(4, 5), 0.0);
        assert!(g.laplacian(0, 5) < 0.0);
    }
}
