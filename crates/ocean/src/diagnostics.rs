//! Model diagnostics — the quantities the MOM benchmark "prints out every
//! 10 timesteps" (paper §4.7.2): global tracer means, kinetic energy, and
//! the meridional overturning streamfunction. Real reductions over the
//! model state, with conservation-law tests.

use crate::mom::Mom;

/// One diagnostics snapshot.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Volume-mean temperature (deg C).
    pub mean_temp: f64,
    /// Volume-mean salinity (psu).
    pub mean_salt: f64,
    /// Total kinetic energy per unit mass (m^2/s^2, grid sum).
    pub kinetic_energy: f64,
    /// Meridional overturning streamfunction psi(lat, lev): the cumulative
    /// vertical integral of the zonally-summed meridional velocity.
    pub overturning: Vec<Vec<f64>>,
    /// Peak |overturning| — the scalar modelers watch.
    pub max_overturning: f64,
}

/// Compute the snapshot from the current state.
pub fn compute(m: &Mom) -> Diagnostics {
    let (nlat, nlon, nlev) = (m.config.nlat, m.config.nlon, m.config.nlev);
    let npts = (nlat * nlon * nlev) as f64;

    let mean_temp = m.temp.iter().flat_map(|l| l.iter()).sum::<f64>() / npts;
    let mean_salt = m.salt.iter().flat_map(|l| l.iter()).sum::<f64>() / npts;

    let mut ke = 0.0;
    for k in 0..nlev {
        for i in 0..nlat * nlon {
            ke += 0.5 * (m.u[k][i] * m.u[k][i] + m.v[k][i] * m.v[k][i]);
        }
    }

    // Overturning: zonal sum of v per (lat, lev), cumulated downward.
    let mut overturning = vec![vec![0.0f64; nlev]; nlat];
    let mut max_abs = 0.0f64;
    for (i, row) in overturning.iter_mut().enumerate() {
        let mut cum = 0.0;
        for (k, cell) in row.iter_mut().enumerate() {
            let vbar: f64 = (0..nlon).map(|j| m.v[k][i * nlon + j]).sum();
            cum += vbar;
            *cell = cum;
            max_abs = max_abs.max(cum.abs());
        }
    }

    Diagnostics { mean_temp, mean_salt, kinetic_energy: ke, overturning, max_overturning: max_abs }
}

/// Render the snapshot the way a Fortran ocean model prints it.
pub fn format_report(step: usize, d: &Diagnostics) -> String {
    format!(
        " step {step:>6}  Tbar = {:>9.5} C  Sbar = {:>8.5}  KE = {:>12.5e}  max|psi_m| = {:>10.4}",
        d.mean_temp, d.mean_salt, d.kinetic_energy, d.max_overturning
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mom::MomConfig;
    use sxsim::presets;

    fn model() -> Mom {
        Mom::new(
            MomConfig { nlat: 16, nlon: 32, nlev: 5, dt: 3600.0, diag_every: 10, jacobi_sweeps: 5 },
            presets::sx4_benchmarked(),
        )
    }

    #[test]
    fn initial_state_is_motionless() {
        let d = compute(&model());
        assert_eq!(d.kinetic_energy, 0.0);
        assert_eq!(d.max_overturning, 0.0);
        assert!(d.mean_temp > 2.0 && d.mean_temp < 25.0);
        assert!((d.mean_salt - 34.7).abs() < 0.5);
    }

    #[test]
    fn spinup_builds_energy_and_overturning() {
        let mut m = model();
        for _ in 0..20 {
            m.step(2);
        }
        let d = compute(&m);
        assert!(d.kinetic_energy > 0.0);
        assert!(d.max_overturning > 0.0);
        assert!(d.kinetic_energy.is_finite());
    }

    #[test]
    fn mean_temperature_drifts_slowly() {
        // Advection conserves the inventory; mixing/adjustment move heat
        // around but only the (weak) surface terms change the mean.
        let mut m = model();
        let before = compute(&m).mean_temp;
        for _ in 0..20 {
            m.step(4);
        }
        let after = compute(&m).mean_temp;
        assert!((after - before).abs() < 0.2, "{before} -> {after}");
    }

    #[test]
    fn report_renders() {
        let mut m = model();
        m.step(1);
        let text = format_report(1, &compute(&m));
        assert!(text.contains("Tbar"));
        assert!(text.contains("max|psi_m|"));
    }
}
