//! # ocean-models — the two ocean applications of the NCAR suite
//!
//! - [`mom`] — the MOM benchmark proxy (paper §4.7.2): rigid-lid
//!   finite-difference primitive-equation structure with the serial
//!   barotropic solve and every-10-steps diagnostics that shape Table 7's
//!   speedup curve;
//! - [`pop`] — the POP benchmark proxy (§4.7.3): implicit free-surface
//!   solve by conjugate gradients, with the pre-release-compiler
//!   "CSHIFT does not vectorize" behaviour as a switch;
//! - [`eos`] — the shared equation of state;
//! - [`poisson`] — the elliptic solvers (Jacobi for the rigid lid, CG for
//!   the free surface);
//! - [`diagnostics`] — the global means / kinetic energy / overturning
//!   report MOM prints every 10 steps.

// Index-based loops over grids read as the stencil math they implement.
#![allow(clippy::needless_range_loop)]

pub mod diagnostics;
pub mod eos;
pub mod mom;
pub mod poisson;
pub mod pop;

pub use mom::{Mom, MomConfig, MomStepTiming};
pub use pop::{Pop, PopConfig, PopStepTiming};
