//! The POP benchmark proxy: the Parallel Ocean Program's free-surface
//! formulation (paper §4.7.3) — "a stand-alone code with a free surface
//! formulation and flat bottom topography", written in Fortran 90 whose
//! array syntax leans on CSHIFT for stencils.
//!
//! The paper's headline: with a pre-release NEC F90 compiler "the CSHIFT
//! intrinsic did not vectorize. Even so, we observed 537 Mflops on the
//! 2-degree POP benchmark on one processor of the SX-4." The
//! [`PopConfig::cshift_vectorized`] switch prices the stencil shifts
//! through the scalar unit (the benchmarked situation) or the vector unit
//! (what a mature compiler does), making the compiler effect an ablation
//! you can run.
//!
//! Numerics: barotropic free-surface dynamics solved with the implicit
//! method (a CG Helmholtz solve per step, as POP does), plus a baroclinic
//! tracer leg with EOS evaluations.

use crate::eos::density;
use crate::poisson::{conjugate_gradient, CgOptions, Grid2};
use sxsim::node::partition;
use sxsim::{
    Access, ChargeProgram, Cost, LocalityPattern, MachineModel, Node, NodeTiming, Region, VecOp,
    Vm, VopClass,
};

/// POP configuration.
#[derive(Debug, Clone)]
pub struct PopConfig {
    pub nlat: usize,
    pub nlon: usize,
    pub nlev: usize,
    /// Timestep (s).
    pub dt: f64,
    /// Whether the compiler vectorizes CSHIFT (false = the paper's
    /// pre-release F90 situation).
    pub cshift_vectorized: bool,
    /// CG tolerance for the implicit free surface.
    pub cg_tol: f64,
}

impl PopConfig {
    /// "the 2-degree POP benchmark": ~2° grid, 20 levels.
    pub fn two_degree() -> PopConfig {
        PopConfig {
            nlat: 90,
            nlon: 180,
            nlev: 20,
            dt: 1800.0,
            cshift_vectorized: false,
            cg_tol: 1e-6,
        }
    }

    /// A small configuration for tests.
    pub fn tiny() -> PopConfig {
        PopConfig {
            nlat: 16,
            nlon: 32,
            nlev: 4,
            dt: 1800.0,
            cshift_vectorized: false,
            cg_tol: 1e-9,
        }
    }
}

/// The model: barotropic free surface + barotropic transport + a stack of
/// tracer levels.
pub struct Pop {
    pub config: PopConfig,
    machine: MachineModel,
    /// Free-surface height.
    pub eta: Grid2,
    /// Barotropic transports.
    pub ubar: Grid2,
    pub vbar: Grid2,
    /// Tracer (temperature) levels: `[lev][lat*nlon+lon]`.
    pub temp: Vec<Vec<f64>>,
    pub steps: usize,
}

/// Gravity x mean depth (wave speed squared, grid units).
const GH: f64 = 0.5;

/// Timing of one step.
#[derive(Debug, Clone, Copy)]
pub struct PopStepTiming {
    pub timing: NodeTiming,
    pub seconds: f64,
    /// CG iterations the free-surface solve needed.
    pub cg_iters: usize,
}

/// The recorded charge structure of one POP step. Unlike MOM's, a POP
/// step is not repetition-invariant — the CG iteration count is
/// data-dependent — so a program stands for *the step that recorded it*:
/// [`Pop::replay_step`] reproduces that step's [`PopStepTiming`]
/// bit-identically (including the per-processor cost split of the
/// barotropic solve and the per-iteration barrier charge).
#[derive(Debug, Clone)]
pub struct PopStepProgram {
    procs: usize,
    /// One program per latitude-slab processor (empty for an empty chunk).
    baroclinic: Vec<ChargeProgram>,
    /// The free-surface RHS assembly + CG solve + transport update.
    solve: ChargeProgram,
    /// CG iterations the recorded solve took (sets the barrier charge).
    cg_iters: usize,
}

impl PopStepProgram {
    /// CG iterations of the recorded solve.
    pub fn cg_iters(&self) -> usize {
        self.cg_iters
    }
}

impl Pop {
    pub fn new(config: PopConfig, machine: MachineModel) -> Pop {
        let (nlat, nlon, nlev) = (config.nlat, config.nlon, config.nlev);
        let mut eta = Grid2::zeros(nlat, nlon);
        // An initial surface bump sets the free surface in motion.
        for i in 0..nlat {
            for j in 0..nlon {
                let y = (i as f64 / nlat as f64 - 0.5) * 4.0;
                let x = (j as f64 / nlon as f64 - 0.5) * 4.0;
                eta.set(i, j, 0.3 * (-(x * x + y * y)).exp());
            }
        }
        let mut temp = vec![vec![0.0; nlat * nlon]; nlev];
        for (k, lev) in temp.iter_mut().enumerate() {
            for i in 0..nlat {
                for j in 0..nlon {
                    let lat_frac = i as f64 / (nlat - 1).max(1) as f64;
                    lev[i * nlon + j] =
                        4.0 + 20.0 * (1.0 - (2.0 * lat_frac - 1.0).powi(2)) / (1.0 + k as f64);
                }
            }
        }
        Pop {
            eta,
            ubar: Grid2::zeros(nlat, nlon),
            vbar: Grid2::zeros(nlat, nlon),
            temp,
            config,
            machine,
            steps: 0,
        }
    }

    /// Charge a group of `count` CSHIFTs over the same `n`-element field
    /// through the configured path. F90 `CSHIFT(a, 1, dim)` touches every
    /// element once; in a stencil group the first shift streams the field
    /// through the scalar unit's cache and the remaining shifts re-read it
    /// hot, which is how the benchmarked code behaved.
    fn charge_cshift_group(&self, vm: &mut Vm, n: usize, count: usize) {
        if self.config.cshift_vectorized {
            vm.charge_vector_op_repeated(
                &VecOp::new(n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(1)]),
                count,
            );
        } else {
            // The pre-release compiler's scalar loops.
            vm.charge_scalar_loop(n, 0.0, 1.0, 1.0, LocalityPattern::Streaming);
            for _ in 1..count {
                vm.charge_scalar_loop(
                    n,
                    0.0,
                    1.0,
                    1.0,
                    LocalityPattern::Resident { working_set_bytes: 16 * 1024 },
                );
            }
        }
    }

    /// Total mass (mean surface height) — conserved by the flux-form
    /// free-surface update.
    pub fn mass(&self) -> f64 {
        self.eta.data.iter().sum::<f64>() / self.eta.data.len() as f64
    }

    /// Advance one step on `procs` processors.
    pub fn step(&mut self, procs: usize) -> PopStepTiming {
        assert!(procs >= 1 && procs <= self.machine.procs);
        self.step_inner(procs, None)
    }

    /// Advance one step while recording its charge structure; the recorded
    /// step's timing is bit-identical to [`Pop::step`]'s.
    pub fn record_step_program(&mut self, procs: usize) -> (PopStepTiming, PopStepProgram) {
        assert!(procs >= 1 && procs <= self.machine.procs);
        let mut program = PopStepProgram {
            procs,
            baroclinic: Vec::new(),
            solve: ChargeProgram::new(),
            cg_iters: 0,
        };
        let timing = self.step_inner(procs, Some(&mut program));
        program.cg_iters = timing.cg_iters;
        (timing, program)
    }

    /// Re-charge a recorded step in one batched pass: bit-identical
    /// [`PopStepTiming`] to the step that recorded `program`. The model
    /// state and step counter are untouched.
    pub fn replay_step(&self, program: &PopStepProgram) -> PopStepTiming {
        let procs = program.procs;
        let mut regions = Vec::new();
        let mut phase = Vec::with_capacity(procs);
        for prog in &program.baroclinic {
            if prog.is_empty() {
                phase.push(Cost::ZERO);
                continue;
            }
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(prog);
            phase.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase));

        let mut vm = Vm::new(self.machine.clone());
        vm.replay_program(&program.solve);
        let solve_cost = vm.take_cost();
        let per_proc = Cost {
            cycles: solve_cost.cycles / procs as f64,
            flops: solve_cost.flops / procs as u64,
            cray_flops: solve_cost.cray_flops / procs as f64,
            bytes: solve_cost.bytes / procs as u64,
        };
        regions.push(Region::Parallel(vec![per_proc; procs]));
        {
            let mut sync = Vm::new(self.machine.clone());
            sync.charge(Cost::cycles(program.cg_iters as f64 * 2.0 * 400.0));
            regions.push(Region::Serial(sync.take_cost()));
        }

        let node = Node::new(self.machine.clone());
        let timing =
            node.time_regions(&regions).expect("partitioned within the node's processor count");
        PopStepTiming {
            timing,
            seconds: timing.seconds(self.machine.clock_ns),
            cg_iters: program.cg_iters,
        }
    }

    fn step_inner(
        &mut self,
        procs: usize,
        mut record: Option<&mut PopStepProgram>,
    ) -> PopStepTiming {
        let PopConfig { nlat, nlon, nlev, dt, .. } = self.config;
        let ncol = nlat * nlon;
        let chunks = partition(nlat, procs);
        let mut regions = Vec::new();

        // ---- Baroclinic/tracer phase (parallel over latitude). -----------
        let mut phase = Vec::with_capacity(procs);
        let mut new_temp = self.temp.clone();
        for chunk in &chunks {
            let mut vm = Vm::new(self.machine.clone());
            if chunk.is_empty() {
                if let Some(rec) = record.as_deref_mut() {
                    rec.baroclinic.push(ChargeProgram::new());
                }
                phase.push(Cost::ZERO);
                continue;
            }
            if record.is_some() {
                vm.start_program_record();
            }
            let mut rho = vec![0.0f64; ncol];
            for k in 0..nlev {
                let lo = chunk.start * nlon;
                let hi = (chunk.end * nlon).min(ncol);
                density(
                    &mut vm,
                    &mut rho[lo..hi],
                    &self.temp[k][lo..hi],
                    &self.temp[k][lo..hi], // reuse T as a salinity proxy field width
                    (k as f64 + 0.5) * 150.0,
                );
                // F90-style stencil group: 4 CSHIFTs over this processor's
                // rows.
                self.charge_cshift_group(&mut vm, chunk.len() * nlon, 4);
                for i in chunk.clone() {
                    for j in 0..nlon {
                        let idx = i * nlon + j;
                        let jp = i * nlon + (j + 1) % nlon;
                        let jm = i * nlon + (j + nlon - 1) % nlon;
                        let up = if i + 1 < nlat {
                            self.temp[k][(i + 1) * nlon + j]
                        } else {
                            self.temp[k][idx]
                        };
                        let dn = if i > 0 {
                            self.temp[k][(i - 1) * nlon + j]
                        } else {
                            self.temp[k][idx]
                        };
                        let lap =
                            up + dn + self.temp[k][jp] + self.temp[k][jm] - 4.0 * self.temp[k][idx];
                        new_temp[k][idx] = self.temp[k][idx] + 0.05 * lap - 1e-6 * rho[idx];
                    }
                }
                // Tracer + full 3-D momentum arithmetic of a POP level
                // (~200 vectorized flops per point). F90 whole-array
                // expressions vectorize over the entire 2-D slab, so the
                // vector length is the slab, not one row.
                vm.charge_vector_op_repeated(
                    &VecOp::new(
                        chunk.len() * nlon,
                        VopClass::Fma,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ),
                    100,
                );
            }
            if let Some(rec) = record.as_deref_mut() {
                rec.baroclinic.push(vm.take_program().expect("recording was started above"));
            }
            phase.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase));
        self.temp = new_temp;

        // ---- Implicit free surface (the POP signature move). -------------
        // Semi-implicit: (1 - GH dt'^2 lap) eta^{n+1} = eta^n - dt' div(U).
        // We solve (alpha - lap) x = rhs with alpha = 1/(GH dt'^2).
        let dtn = (dt / 3600.0).min(1.0); // grid-unit step
        let alpha = 1.0 / (GH * dtn * dtn);
        // Flux-form divergence: face transports average the cell values,
        // wall faces carry zero normal flow — so the divergence telescopes
        // to exactly zero over the domain and the free surface conserves
        // volume to solver tolerance.
        let mut rhs = Grid2::zeros(nlat, nlon);
        for i in 0..nlat {
            for j in 0..nlon {
                let jp = (j + 1) % nlon;
                let jm = (j + nlon - 1) % nlon;
                let ue = 0.5 * (self.ubar.at(i, j) + self.ubar.at(i, jp));
                let uw = 0.5 * (self.ubar.at(i, jm) + self.ubar.at(i, j));
                let vn = if i + 1 < nlat {
                    0.5 * (self.vbar.at(i, j) + self.vbar.at(i + 1, j))
                } else {
                    0.0
                };
                let vs =
                    if i > 0 { 0.5 * (self.vbar.at(i - 1, j) + self.vbar.at(i, j)) } else { 0.0 };
                let div = (ue - uw) + (vn - vs);
                rhs.set(i, j, alpha * (self.eta.at(i, j) - dtn * div));
            }
        }
        let mut vm = Vm::new(self.machine.clone());
        if record.is_some() {
            vm.start_program_record();
        }
        // RHS assembly uses 4 CSHIFTs + arithmetic.
        self.charge_cshift_group(&mut vm, ncol, 4);
        vm.charge_vector_op_repeated(
            &VecOp::new(
                ncol,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ),
            6,
        );
        let mut eta_new = self.eta.clone();
        let (iters, _res) = conjugate_gradient(
            &mut vm,
            &mut eta_new,
            &rhs,
            &CgOptions {
                alpha,
                tol: self.config.cg_tol,
                max_iter: 500,
                scalar_cshift: !self.config.cshift_vectorized,
                neumann: true,
            },
        );

        // Transport update from the new surface gradient + drag.
        for i in 0..nlat {
            for j in 0..nlon {
                let jp = (j + 1) % nlon;
                let jm = (j + nlon - 1) % nlon;
                let detadx = 0.5 * (eta_new.at(i, jp) - eta_new.at(i, jm));
                let detady = if i > 0 && i + 1 < nlat {
                    0.5 * (eta_new.at(i + 1, j) - eta_new.at(i - 1, j))
                } else {
                    0.0
                };
                let drag = 0.995;
                self.ubar.set(i, j, drag * (self.ubar.at(i, j) - GH * dtn * detadx));
                self.vbar.set(i, j, drag * (self.vbar.at(i, j) - GH * dtn * detady));
            }
        }
        self.charge_cshift_group(&mut vm, ncol, 4);
        vm.charge_vector_op_repeated(
            &VecOp::new(
                ncol,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ),
            8,
        );
        self.eta = eta_new;
        // The barotropic solve parallelizes over grid chunks in POP; on the
        // single node we model it as parallel with a barrier per CG
        // iteration (two reductions each).
        if let Some(rec) = record {
            rec.solve = vm.take_program().expect("recording was started above");
        }
        let solve_cost = vm.take_cost();
        let per_proc = Cost {
            cycles: solve_cost.cycles / procs as f64,
            flops: solve_cost.flops / procs as u64,
            cray_flops: solve_cost.cray_flops / procs as f64,
            bytes: solve_cost.bytes / procs as u64,
        };
        regions.push(Region::Parallel(vec![per_proc; procs]));
        {
            let mut sync = Vm::new(self.machine.clone());
            sync.charge(Cost::cycles(iters as f64 * 2.0 * 400.0));
            regions.push(Region::Serial(sync.take_cost()));
        }

        self.steps += 1;
        let node = Node::new(self.machine.clone());
        let timing =
            node.time_regions(&regions).expect("partitioned within the node's processor count");
        PopStepTiming { timing, seconds: timing.seconds(self.machine.clock_ns), cg_iters: iters }
    }

    /// Sustained Mflops over `steps` steps on one processor — the paper's
    /// §4.7.3 metric.
    pub fn mflops(&mut self, steps: usize) -> f64 {
        let mut work = Cost::ZERO;
        let mut wall = 0.0;
        for _ in 0..steps {
            let t = self.step(1);
            work.add(t.timing.work);
            wall += t.seconds;
        }
        work.flops as f64 / wall / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn model(cfg: PopConfig) -> Pop {
        Pop::new(cfg, presets::sx4_benchmarked())
    }

    #[test]
    fn free_surface_stays_bounded_and_moves() {
        let mut m = model(PopConfig::tiny());
        let peak0 = m.eta.data.iter().cloned().fold(f64::MIN, f64::max);
        for _ in 0..50 {
            m.step(2);
        }
        let peak = m.eta.data.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak.is_finite() && peak < 2.0 * peak0 + 1.0);
        // The bump should have radiated away.
        assert!(peak < peak0, "gravity waves should disperse the bump: {peak0} -> {peak}");
        let max_u = m.ubar.data.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(max_u > 1e-9, "surface gradient must drive transport");
    }

    #[test]
    fn cg_converges_quickly() {
        let mut m = model(PopConfig::tiny());
        let t = m.step(1);
        assert!(t.cg_iters > 0 && t.cg_iters < 200, "{} iters", t.cg_iters);
    }

    #[test]
    fn unvectorized_cshift_is_slower() {
        let mut slow = model(PopConfig::tiny());
        let mut fast = model(PopConfig { cshift_vectorized: true, ..PopConfig::tiny() });
        let ts: f64 = (0..5).map(|_| slow.step(1).seconds).sum();
        let tf: f64 = (0..5).map(|_| fast.step(1).seconds).sum();
        assert!(ts > 1.3 * tf, "scalar CSHIFT {ts} vs vectorized {tf}");
    }

    #[test]
    fn two_degree_single_proc_lands_near_537_mflops() {
        let mut m = model(PopConfig::two_degree());
        let rate = m.mflops(3);
        assert!((300.0..900.0).contains(&rate), "2-degree POP {rate} Mflops vs the paper's 537");
    }

    #[test]
    fn temperature_field_remains_finite() {
        let mut m = model(PopConfig::tiny());
        for _ in 0..30 {
            m.step(1);
        }
        assert!(m.temp.iter().flat_map(|l| l.iter()).all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn replay_is_bit_identical_to_the_recorded_step() {
        let mut m = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        m.step(4);
        let (recorded, program) = m.record_step_program(4);
        assert_eq!(program.cg_iters(), recorded.cg_iters);
        let replayed = m.replay_step(&program);
        assert_eq!(recorded.timing.wall_cycles.to_bits(), replayed.timing.wall_cycles.to_bits());
        assert_eq!(recorded.seconds.to_bits(), replayed.seconds.to_bits());
        assert_eq!(recorded.timing.work, replayed.timing.work);
        assert_eq!(recorded.cg_iters, replayed.cg_iters);
    }

    #[test]
    fn recording_does_not_perturb_step_or_state() {
        let mut a = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        let mut b = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        let ta = a.step(2);
        let (tb, _) = b.record_step_program(2);
        assert_eq!(ta.seconds.to_bits(), tb.seconds.to_bits());
        assert_eq!(ta.cg_iters, tb.cg_iters);
        assert_eq!(a.mass(), b.mass());
    }

    #[test]
    fn scalar_cshift_structure_survives_replay() {
        // The unvectorized-CSHIFT configuration charges scalar loops with
        // two locality patterns; the program must preserve that structure,
        // not collapse it (replay seconds would drift otherwise).
        let mut m = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        assert!(!m.config.cshift_vectorized);
        let (recorded, program) = m.record_step_program(1);
        let replayed = m.replay_step(&program);
        assert_eq!(recorded.seconds.to_bits(), replayed.seconds.to_bits());
    }
}

#[cfg(test)]
mod conservation_tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn free_surface_mass_approximately_conserved() {
        let mut m = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        let m0 = m.mass();
        for _ in 0..30 {
            m.step(1);
        }
        let m1 = m.mass();
        // Flux-form divergence + Neumann walls: drift only from the CG
        // tolerance.
        assert!(
            (m1 - m0).abs() < 1e-3 * m0.abs().max(1e-3),
            "free-surface mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn gravity_waves_disperse_not_amplify() {
        // Waves reflecting off the walls may focus transiently, but the
        // implicit scheme + drag forbid growth beyond a modest bound and
        // force net decay of the initial bump.
        let mut m = Pop::new(PopConfig::tiny(), presets::sx4_benchmarked());
        let peak0 = m.eta.data.iter().cloned().fold(f64::MIN, f64::max);
        let mut final_peak = peak0;
        for _ in 0..40 {
            m.step(1);
            final_peak = m.eta.data.iter().cloned().fold(f64::MIN, f64::max);
            assert!(final_peak < 1.5 * peak0, "amplified: {peak0} -> {final_peak}");
        }
        assert!(final_peak < peak0, "no net decay: {peak0} -> {final_peak}");
    }
}
