//! The MOM benchmark proxy: a rigid-lid, Boussinesq, finite-difference
//! ocean model in latitude-longitude-depth coordinates (paper §4.7.2).
//!
//! Matches the benchmark's structure: prognostic temperature, salinity and
//! two momentum components on a 3-D grid; density from an equation of
//! state; flux-form tracer advection with horizontal and (implicit)
//! vertical diffusion; semi-implicit Coriolis; a rigid-lid barotropic
//! streamfunction Poisson solve each step (serial, as in the F77 code);
//! convective adjustment; and the model diagnostics the benchmark prints
//! every 10 timesteps — the paper names that print as one reason Table 7's
//! scalability is modest.
//!
//! Two configurations mirror the paper: a 3° x 25-level low-resolution
//! version "for familiarization and porting verification" (used by the
//! tests) and the 1° x 45-level high-resolution benchmark (used for
//! Table 7).

use crate::eos::density;
use crate::poisson::{jacobi, Grid2};
use sxsim::node::partition;
use sxsim::{
    Access, ChargeProgram, Cost, LocalityPattern, MachineModel, Node, NodeTiming, Region, VecOp,
    Vm, VopClass,
};

/// Model geometry and numerics.
#[derive(Debug, Clone)]
pub struct MomConfig {
    pub nlat: usize,
    pub nlon: usize,
    pub nlev: usize,
    /// Timestep (s).
    pub dt: f64,
    /// Diagnostics cadence in steps (the benchmark prints every 10).
    pub diag_every: usize,
    /// Jacobi sweeps per barotropic solve.
    pub jacobi_sweeps: usize,
}

impl MomConfig {
    /// "nominal horizontal resolution of 3 degrees ... 25 levels" — the
    /// porting-verification configuration.
    pub fn low_resolution() -> MomConfig {
        MomConfig { nlat: 60, nlon: 120, nlev: 25, dt: 3600.0, diag_every: 10, jacobi_sweeps: 30 }
    }

    /// "nominal horizontal resolution of 1 degree ... 45 levels" — the
    /// benchmark configuration of Table 7.
    pub fn high_resolution() -> MomConfig {
        MomConfig { nlat: 180, nlon: 360, nlev: 45, dt: 2700.0, diag_every: 10, jacobi_sweeps: 70 }
    }

    pub fn points(&self) -> usize {
        self.nlat * self.nlon * self.nlev
    }
}

/// The model state. 3-D fields are `[lev][lat * nlon + lon]`.
pub struct Mom {
    pub config: MomConfig,
    machine: MachineModel,
    pub temp: Vec<Vec<f64>>,
    pub salt: Vec<Vec<f64>>,
    pub u: Vec<Vec<f64>>,
    pub v: Vec<Vec<f64>>,
    /// Barotropic streamfunction.
    pub psi: Grid2,
    pub steps: usize,
    /// Most recent every-10-steps diagnostics snapshot.
    pub last_diagnostics: Option<crate::diagnostics::Diagnostics>,
}

/// Timing of one step.
#[derive(Debug, Clone, Copy)]
pub struct MomStepTiming {
    pub timing: NodeTiming,
    pub seconds: f64,
}

/// The recorded charge structure of one MOM step. A step's charges depend
/// only on the configuration and partitioning, so one recorded normal step
/// and one recorded diagnostics step together price every step of a run
/// ([`Mom::run_replayed`]); a replay's [`MomStepTiming`] is bit-identical
/// to the recording step's.
#[derive(Debug, Clone)]
pub struct MomStepProgram {
    procs: usize,
    /// One program per latitude-slab processor (empty for an empty chunk).
    baroclinic: Vec<ChargeProgram>,
    /// The serial barotropic vorticity RHS + Poisson solve.
    barotropic: ChargeProgram,
    /// The serial diagnostics print, on every-`diag_every` steps only.
    diagnostics: Option<ChargeProgram>,
}

impl MomStepProgram {
    /// Whether this program recorded a diagnostics (every-10-steps) step.
    pub fn is_diagnostic(&self) -> bool {
        self.diagnostics.is_some()
    }
}

/// Horizontal eddy diffusivity/viscosity (grid units per step, kept well
/// inside the explicit stability limit).
const AH: f64 = 0.05;
/// Vertical diffusivity (implicit, unconditionally stable).
const KV: f64 = 0.3;
/// Surface wind-stress amplitude (m/s per step on the top level).
const TAU0: f64 = 1.0e-3;
/// Pressure-gradient coupling (m/s^2 per density-anomaly difference).
const PGRAD: f64 = 2.0e-6;
/// Rayleigh drag retained per step (momentum damping toward balance).
const DRAG: f64 = 0.98;

impl Mom {
    /// Initialize a stratified, motionless ocean with a meridional
    /// temperature gradient (warm equator, cold poles).
    pub fn new(config: MomConfig, machine: MachineModel) -> Mom {
        let (nlat, nlon, nlev) = (config.nlat, config.nlon, config.nlev);
        let mut temp = vec![vec![0.0; nlat * nlon]; nlev];
        let mut salt = vec![vec![35.0; nlat * nlon]; nlev];
        for (k, lev) in temp.iter_mut().enumerate() {
            let depth_frac = k as f64 / nlev as f64;
            for i in 0..nlat {
                let lat_frac = i as f64 / (nlat - 1).max(1) as f64; // 0..1 S->N
                let equatorial = 1.0 - (2.0 * lat_frac - 1.0).powi(2);
                for j in 0..nlon {
                    lev[i * nlon + j] = 2.0 + 22.0 * equatorial * (1.0 - depth_frac).powi(2);
                }
            }
        }
        for (k, lev) in salt.iter_mut().enumerate() {
            for s in lev.iter_mut() {
                *s = 34.5 + 0.5 * (k as f64 / nlev as f64);
            }
        }
        Mom {
            psi: Grid2::zeros(nlat, nlon),
            u: vec![vec![0.0; nlat * nlon]; nlev],
            v: vec![vec![0.0; nlat * nlon]; nlev],
            temp,
            salt,
            config,
            machine,
            steps: 0,
            last_diagnostics: None,
        }
    }

    /// Flux-form advection + horizontal diffusion tendency for one tracer
    /// level; exactly conservative (periodic in lon, no-flux walls in lat).
    #[allow(clippy::too_many_arguments)]
    fn tracer_tendency(
        &self,
        field: &[f64],
        u: &[f64],
        v: &[f64],
        out: &mut [f64],
        rows: std::ops::Range<usize>,
        nlat: usize,
        nlon: usize,
    ) {
        for i in rows {
            for j in 0..nlon {
                let idx = i * nlon + j;
                let jp = i * nlon + (j + 1) % nlon;
                let jm = i * nlon + (j + nlon - 1) % nlon;
                // Zonal fluxes at the east/west faces.
                let ue = 0.5 * (u[idx] + u[jp]);
                let uw = 0.5 * (u[jm] + u[idx]);
                let fe = ue * 0.5 * (field[idx] + field[jp]);
                let fw = uw * 0.5 * (field[jm] + field[idx]);
                // Meridional fluxes, zero at the walls.
                let (fn_, fs) = {
                    let fn_ = if i + 1 < nlat {
                        let ip = (i + 1) * nlon + j;
                        let vn = 0.5 * (v[idx] + v[ip]);
                        vn * 0.5 * (field[idx] + field[ip])
                    } else {
                        0.0
                    };
                    let fs = if i > 0 {
                        let im = (i - 1) * nlon + j;
                        let vs = 0.5 * (v[im] + v[idx]);
                        vs * 0.5 * (field[im] + field[idx])
                    } else {
                        0.0
                    };
                    (fn_, fs)
                };
                // Diffusion (5-point).
                let up = if i + 1 < nlat { field[(i + 1) * nlon + j] } else { field[idx] };
                let dn = if i > 0 { field[(i - 1) * nlon + j] } else { field[idx] };
                let lap = up + dn + field[jp] + field[jm] - 4.0 * field[idx];
                out[idx] = -(fe - fw) - (fn_ - fs) + AH * lap;
            }
        }
    }

    /// Implicit vertical diffusion of a column-major set of levels: solves
    /// the tridiagonal system (I - KV * D2) x = b per column in place.
    fn vertical_implicit(fields: &mut [Vec<f64>], ncol: usize, cols: std::ops::Range<usize>) {
        let nlev = fields.len();
        if nlev < 2 {
            return;
        }
        let a = -KV; // sub/super diagonal
        let b = 1.0 + 2.0 * KV;
        let mut cp = vec![0.0f64; nlev];
        let mut dp = vec![0.0f64; nlev];
        for col in cols {
            debug_assert!(col < ncol);
            // Thomas algorithm with no-flux ends.
            let b0 = 1.0 + KV;
            cp[0] = a / b0;
            dp[0] = fields[0][col] / b0;
            for k in 1..nlev {
                let bk = if k + 1 == nlev { 1.0 + KV } else { b };
                let m = bk - a * cp[k - 1];
                cp[k] = a / m;
                dp[k] = (fields[k][col] - a * dp[k - 1]) / m;
            }
            let mut x = dp[nlev - 1];
            fields[nlev - 1][col] = x;
            for k in (0..nlev - 1).rev() {
                x = dp[k] - cp[k] * x;
                fields[k][col] = x;
            }
        }
    }

    /// Advance one step on `procs` processors.
    pub fn step(&mut self, procs: usize) -> MomStepTiming {
        assert!(procs >= 1 && procs <= self.machine.procs);
        self.step_inner(procs, None)
    }

    /// Advance one step while recording its charge structure; the recorded
    /// step's timing is bit-identical to [`Mom::step`]'s.
    pub fn record_step_program(&mut self, procs: usize) -> (MomStepTiming, MomStepProgram) {
        assert!(procs >= 1 && procs <= self.machine.procs);
        let mut program = MomStepProgram {
            procs,
            baroclinic: Vec::new(),
            barotropic: ChargeProgram::new(),
            diagnostics: None,
        };
        let timing = self.step_inner(procs, Some(&mut program));
        (timing, program)
    }

    fn step_inner(
        &mut self,
        procs: usize,
        mut record: Option<&mut MomStepProgram>,
    ) -> MomStepTiming {
        let MomConfig { nlat, nlon, nlev, dt, .. } = self.config;
        let ncol = nlat * nlon;
        let chunks = partition(nlat, procs);
        let mut regions = Vec::new();

        // ---- Baroclinic phase (parallel over latitude slabs). ------------
        let mut phase = Vec::with_capacity(procs);
        let mut new_temp = self.temp.clone();
        let mut new_salt = self.salt.clone();
        let mut new_u = self.u.clone();
        let mut new_v = self.v.clone();

        for chunk in &chunks {
            let mut vm = Vm::new(self.machine.clone());
            if chunk.is_empty() {
                if let Some(rec) = record.as_deref_mut() {
                    rec.baroclinic.push(ChargeProgram::new());
                }
                phase.push(Cost::ZERO);
                continue;
            }
            if record.is_some() {
                vm.start_program_record();
            }
            let rows = chunk.len();
            let mut rho = vec![0.0f64; ncol];
            let mut tend = vec![0.0f64; ncol];
            for k in 0..nlev {
                // Density for the pressure gradient (real EOS), including a
                // one-row halo so the meridional gradient at the slab edge
                // is partition-independent.
                let lo = chunk.start * nlon;
                let hi = chunk.end.min(nlat - 1).max(chunk.start) * nlon + nlon;
                let hi = hi.min(ncol);
                density(
                    &mut vm,
                    &mut rho[lo..hi],
                    &self.temp[k][lo..hi],
                    &self.salt[k][lo..hi],
                    (k as f64 + 0.5) * 100.0,
                );

                // Momentum: pressure gradient + semi-implicit Coriolis +
                // friction + surface wind stress.
                for i in chunk.clone() {
                    let f_cor = 1.0e-4 * (2.0 * i as f64 / nlat as f64 - 1.0);
                    let alpha = f_cor * dt;
                    let denom = 1.0 + alpha * alpha;
                    for j in 0..nlon {
                        let idx = i * nlon + j;
                        let jp = i * nlon + (j + 1) % nlon;
                        let dpdx = -(rho[jp] - rho[idx]) * PGRAD;
                        let dpdy = if i + 1 < nlat {
                            -(rho[(i + 1) * nlon + j] - rho[idx]) * PGRAD
                        } else {
                            0.0
                        };
                        let taux = if k == 0 {
                            TAU0 * (i as f64 / nlat as f64 * std::f64::consts::PI).sin()
                        } else {
                            0.0
                        };
                        let fu = self.u[k][idx] + dt * dpdx + taux;
                        let fv = self.v[k][idx] + dt * dpdy;
                        // (I - dt f J)^{-1} rotation (J = [[0,-1],[1,0]]).
                        new_u[k][idx] = DRAG * (fu + alpha * fv) / denom;
                        new_v[k][idx] = DRAG * (fv - alpha * fu) / denom;
                    }
                }
                // Charge momentum arithmetic: pressure/Coriolis/friction/
                // metric terms — ~48 fused ops per row (full MOM momentum).
                vm.charge_vector_op_repeated(
                    &VecOp::new(
                        nlon,
                        VopClass::Fma,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ),
                    rows * 72,
                );

                // Tracer advection-diffusion (flux form) for T and S.
                for (field, out) in
                    [(&self.temp[k], &mut new_temp[k]), (&self.salt[k], &mut new_salt[k])]
                {
                    self.tracer_tendency(
                        field,
                        &self.u[k],
                        &self.v[k],
                        &mut tend,
                        chunk.clone(),
                        nlat,
                        nlon,
                    );
                    for i in chunk.clone() {
                        for j in 0..nlon {
                            let idx = i * nlon + j;
                            out[idx] = field[idx] + dt / 3600.0 * tend[idx];
                        }
                    }
                    // Fluxes + laplacian + isopycnal-style mixing terms +
                    // update: ~60 fused ops per row per tracer.
                    vm.charge_vector_op_repeated(
                        &VecOp::new(
                            nlon,
                            VopClass::Fma,
                            &[Access::Stride(1), Access::Stride(1)],
                            &[Access::Stride(1)],
                        ),
                        rows * 80,
                    );
                }
            }

            // Implicit vertical mixing (tridiagonal solve per column) for
            // all four prognostics on this slab's columns.
            let col_range = chunk.start * nlon..chunk.end * nlon;
            Self::vertical_implicit(&mut new_temp, ncol, col_range.clone());
            Self::vertical_implicit(&mut new_salt, ncol, col_range.clone());
            Self::vertical_implicit(&mut new_u, ncol, col_range.clone());
            Self::vertical_implicit(&mut new_v, ncol, col_range.clone());
            // The vertical solve vectorizes across columns: ~14 ops per
            // level per prognostic over the slab's columns (Thomas forward
            // + backward sweeps with coefficient setup).
            vm.charge_vector_op_repeated(
                &VecOp::new(
                    rows * nlon,
                    VopClass::Fma,
                    &[Access::Stride(1), Access::Stride(1)],
                    &[Access::Stride(1)],
                ),
                4 * nlev * 14,
            );

            // Convective adjustment: mix statically unstable adjacent
            // levels (EOS comparison per interface).
            for k in 0..nlev - 1 {
                for idx in chunk.start * nlon..chunk.end * nlon {
                    let r_up = crate::eos::density_point(
                        new_temp[k][idx],
                        new_salt[k][idx],
                        k as f64 * 100.0,
                    );
                    let r_dn = crate::eos::density_point(
                        new_temp[k + 1][idx],
                        new_salt[k + 1][idx],
                        k as f64 * 100.0,
                    );
                    if r_up > r_dn {
                        let tm = 0.5 * (new_temp[k][idx] + new_temp[k + 1][idx]);
                        let sm = 0.5 * (new_salt[k][idx] + new_salt[k + 1][idx]);
                        new_temp[k][idx] = tm;
                        new_temp[k + 1][idx] = tm;
                        new_salt[k][idx] = sm;
                        new_salt[k + 1][idx] = sm;
                    }
                }
                vm.charge_vector_op_repeated(
                    &VecOp::new(
                        rows * nlon,
                        VopClass::Fma,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ),
                    12,
                );
            }
            if let Some(rec) = record.as_deref_mut() {
                rec.baroclinic.push(vm.take_program().expect("recording was started above"));
            }
            phase.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase));
        self.temp = new_temp;
        self.salt = new_salt;
        self.u = new_u;
        self.v = new_v;

        // ---- Barotropic phase (serial, as in the F77 benchmark code):
        // vorticity RHS from the vertically averaged flow, then the
        // rigid-lid Poisson solve. ------------------------------------------
        {
            let mut vm = Vm::new(self.machine.clone());
            if record.is_some() {
                vm.start_program_record();
            }
            let mut rhs = Grid2::zeros(nlat, nlon);
            for i in 1..nlat - 1 {
                for j in 0..nlon {
                    let jp = (j + 1) % nlon;
                    let jm = (j + nlon - 1) % nlon;
                    let mut vbar_e = 0.0;
                    let mut vbar_w = 0.0;
                    let mut ubar_n = 0.0;
                    let mut ubar_s = 0.0;
                    for k in 0..nlev {
                        vbar_e += self.v[k][i * nlon + jp];
                        vbar_w += self.v[k][i * nlon + jm];
                        ubar_n += self.u[k][(i + 1) * nlon + j];
                        ubar_s += self.u[k][(i - 1) * nlon + j];
                    }
                    let inv = 1.0 / nlev as f64;
                    rhs.set(i, j, 0.5 * ((vbar_e - vbar_w) - (ubar_n - ubar_s)) * inv);
                }
            }
            // RHS accumulation sweeps the 3-D grid (chained sum).
            vm.charge_vector_op_repeated(
                &VecOp::new(
                    ncol,
                    VopClass::Add,
                    &[Access::Stride(1), Access::Stride(1)],
                    &[Access::Stride(1)],
                ),
                nlev * 2,
            );
            let _res = jacobi(&mut vm, &mut self.psi, &rhs, self.config.jacobi_sweeps);
            if let Some(rec) = record.as_deref_mut() {
                rec.barotropic = vm.take_program().expect("recording was started above");
            }
            regions.push(Region::Serial(vm.take_cost()));
        }

        // ---- Diagnostics every `diag_every` steps (serial print). ---------
        self.steps += 1;
        if self.steps.is_multiple_of(self.config.diag_every) {
            let mut vm = Vm::new(self.machine.clone());
            if record.is_some() {
                vm.start_program_record();
            }
            // Global means/energies accumulated in unvectorized loops plus
            // formatted output — the benchmark's scaling sore spot.
            let diag = crate::diagnostics::compute(self);
            assert!(diag.mean_temp.is_finite() && diag.kinetic_energy.is_finite());
            self.last_diagnostics = Some(diag);
            vm.charge_scalar_loop(self.config.points(), 8.0, 8.0, 0.0, LocalityPattern::Streaming);
            if let Some(rec) = record {
                rec.diagnostics = Some(vm.take_program().expect("recording was started above"));
            }
            regions.push(Region::Serial(vm.take_cost()));
        }

        let node = Node::new(self.machine.clone());
        let timing =
            node.time_regions(&regions).expect("partitioned within the node's processor count");
        MomStepTiming { timing, seconds: timing.seconds(self.machine.clock_ns) }
    }

    /// Global tracer inventory (sum of temperature over the grid) — exactly
    /// conserved by flux-form advection when mixing/adjustment preserve it.
    pub fn temp_inventory(&self) -> f64 {
        self.temp.iter().flat_map(|l| l.iter()).sum()
    }

    /// Run `steps` steps and report total simulated seconds.
    pub fn run(&mut self, steps: usize, procs: usize) -> f64 {
        (0..steps).map(|_| self.step(procs).seconds).sum()
    }

    /// Re-charge a recorded step in one batched pass: bit-identical
    /// [`MomStepTiming`] to the step that recorded `program`, with none of
    /// the functional model re-executed. The ocean state, the step counter
    /// and [`Mom::last_diagnostics`] are untouched.
    pub fn replay_step(&self, program: &MomStepProgram) -> MomStepTiming {
        let mut regions = Vec::new();
        let mut phase = Vec::with_capacity(program.procs);
        for prog in &program.baroclinic {
            if prog.is_empty() {
                phase.push(Cost::ZERO);
                continue;
            }
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(prog);
            phase.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase));
        {
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(&program.barotropic);
            regions.push(Region::Serial(vm.take_cost()));
        }
        if let Some(diag) = &program.diagnostics {
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(diag);
            regions.push(Region::Serial(vm.take_cost()));
        }
        let node = Node::new(self.machine.clone());
        let timing =
            node.time_regions(&regions).expect("partitioned within the node's processor count");
        MomStepTiming { timing, seconds: timing.seconds(self.machine.clock_ns) }
    }

    /// Price a `steps`-step run through the program cache: the first
    /// normal step and the first diagnostics step run (and record) for
    /// real, every later step of the same kind replays its program.
    /// Returns total simulated seconds, bit-identical to [`Mom::run`]'s
    /// (charges depend on the configuration, not the evolving fields); the
    /// step counter advances as usual, while the ocean state only evolves
    /// through the two recorded steps.
    pub fn run_replayed(&mut self, steps: usize, procs: usize) -> f64 {
        let mut normal: Option<MomStepProgram> = None;
        let mut diag: Option<MomStepProgram> = None;
        let mut total = 0.0;
        for _ in 0..steps {
            let is_diag = (self.steps + 1).is_multiple_of(self.config.diag_every);
            let cache = if is_diag { &mut diag } else { &mut normal };
            total += match cache {
                Some(p) => {
                    let t = self.replay_step(p).seconds;
                    self.steps += 1; // keep the diagnostics cadence honest
                    t
                }
                None => {
                    let (t, p) = self.record_step_program(procs);
                    *cache = Some(p);
                    t.seconds
                }
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn tiny() -> MomConfig {
        MomConfig { nlat: 16, nlon: 32, nlev: 5, dt: 3600.0, diag_every: 10, jacobi_sweeps: 10 }
    }

    fn model(cfg: MomConfig) -> Mom {
        Mom::new(cfg, presets::sx4_benchmarked())
    }

    #[test]
    fn initial_state_is_stratified_and_warm_at_equator() {
        let m = model(tiny());
        let nlon = m.config.nlon;
        let equator = m.temp[0][(m.config.nlat / 2) * nlon];
        let pole = m.temp[0][0];
        assert!(equator > pole + 10.0);
        assert!(m.temp[0][0] >= m.temp[4][0], "surface at least as warm as depth");
    }

    #[test]
    fn stable_spinup() {
        let mut m = model(tiny());
        for _ in 0..40 {
            m.step(2);
        }
        let max_u = m.u.iter().flat_map(|l| l.iter()).map(|v| v.abs()).fold(0.0f64, f64::max);
        let max_t = m.temp.iter().flat_map(|l| l.iter()).map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(max_u.is_finite() && max_u < 5.0, "velocity blew up: {max_u}");
        assert!(max_t < 40.0, "temperature blew up: {max_t}");
        // The wind actually spun up a circulation.
        assert!(max_u > 1e-6, "ocean never moved");
    }

    #[test]
    fn temperature_stays_physical() {
        let mut m = model(tiny());
        let t_max0 = m.temp.iter().flat_map(|l| l.iter()).cloned().fold(f64::MIN, f64::max);
        let t_min0 = m.temp.iter().flat_map(|l| l.iter()).cloned().fold(f64::MAX, f64::min);
        for _ in 0..30 {
            m.step(4);
        }
        let t_max = m.temp.iter().flat_map(|l| l.iter()).cloned().fold(f64::MIN, f64::max);
        let t_min = m.temp.iter().flat_map(|l| l.iter()).cloned().fold(f64::MAX, f64::min);
        // Advection+diffusion+mixing should not create new extremes beyond
        // a small tolerance.
        assert!(t_max <= t_max0 + 0.5, "{t_max0} -> {t_max}");
        assert!(t_min >= t_min0 - 0.5, "{t_min0} -> {t_min}");
    }

    #[test]
    fn step_timing_decreases_with_processors() {
        let times: Vec<f64> = [1usize, 4, 8]
            .iter()
            .map(|&p| {
                let mut m = model(tiny());
                m.step(p).seconds
            })
            .collect();
        assert!(times[1] < times[0]);
        assert!(times[2] < times[1]);
    }

    #[test]
    fn speedup_is_sublinear_due_to_serial_sections() {
        let mut m1 = model(tiny());
        let mut m8 = model(tiny());
        // Amortize over a diagnostics period.
        let t1: f64 = (0..10).map(|_| m1.step(1).seconds).sum();
        let t8: f64 = (0..10).map(|_| m8.step(8).seconds).sum();
        let speedup = t1 / t8;
        assert!(speedup > 1.5, "some speedup expected: {speedup}");
        assert!(speedup < 7.0, "serial barotropic+diagnostics must bite: {speedup}");
    }

    #[test]
    fn diagnostics_step_is_more_expensive() {
        let mut m = model(tiny());
        let mut times = Vec::new();
        for _ in 0..10 {
            times.push(m.step(4).seconds);
        }
        // Step 10 includes the serial diagnostics.
        let normal = times[..9].iter().sum::<f64>() / 9.0;
        assert!(times[9] > 1.1 * normal, "diag step {} vs normal {normal}", times[9]);
    }
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use sxsim::presets;

    fn tiny() -> MomConfig {
        MomConfig { nlat: 16, nlon: 32, nlev: 5, dt: 3600.0, diag_every: 10, jacobi_sweeps: 10 }
    }

    #[test]
    fn replay_is_bit_identical_to_the_recorded_step() {
        let mut m = Mom::new(tiny(), presets::sx4_benchmarked());
        m.step(4);
        let (recorded, program) = m.record_step_program(4);
        assert!(!program.is_diagnostic());
        let replayed = m.replay_step(&program);
        assert_eq!(recorded.timing.wall_cycles.to_bits(), replayed.timing.wall_cycles.to_bits());
        assert_eq!(recorded.seconds.to_bits(), replayed.seconds.to_bits());
        assert_eq!(recorded.timing.work, replayed.timing.work);
    }

    #[test]
    fn diagnostic_step_records_its_extra_region() {
        let mut m = Mom::new(tiny(), presets::sx4_benchmarked());
        for _ in 0..9 {
            m.step(4);
        }
        let (recorded, program) = m.record_step_program(4); // step 10
        assert!(program.is_diagnostic());
        let replayed = m.replay_step(&program);
        assert_eq!(recorded.seconds.to_bits(), replayed.seconds.to_bits());
        assert_eq!(recorded.timing.wall_cycles.to_bits(), replayed.timing.wall_cycles.to_bits());
    }

    #[test]
    fn run_replayed_matches_run_bitwise_across_diag_steps() {
        let mut real = Mom::new(tiny(), presets::sx4_benchmarked());
        let mut cached = Mom::new(tiny(), presets::sx4_benchmarked());
        // 25 steps span two diagnostics prints (steps 10 and 20).
        let t_real = real.run(25, 4);
        let t_cached = cached.run_replayed(25, 4);
        assert_eq!(t_real.to_bits(), t_cached.to_bits(), "{t_real} vs {t_cached}");
        assert_eq!(real.steps, cached.steps);
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use sxsim::presets;

    /// Not a test: prints the Table 7 reproduction. Run with
    /// `cargo test -p ocean-models --release -- --ignored --nocapture table7`.
    #[test]
    #[ignore = "calibration printout, not an assertion"]
    fn print_table7_calibration() {
        for procs in [1usize, 4, 8, 16, 32] {
            let mut m = Mom::new(MomConfig::high_resolution(), presets::sx4_benchmarked());
            let block: f64 = (0..10).map(|_| m.step(procs).seconds).sum();
            let total = 35.0 * block;
            println!("{procs:>3} CPUs: {total:>9.2} s for 350 steps ({:.3} s/step)", block / 10.0);
        }
    }
}
