//! System experiments: PRODLOAD (§4.6), the I/O / HIPPI / NETWORK
//! benchmarks (§4.5), and the §3 comparison suites.

use ncar_suite::{Artifact, Figure, Table};
use othersuites::stream::stream_table;
use othersuites::{hint_mquips, linpack, linpack_tpp, run_hint};
use superux::accounting::qacct_table;
use superux::iobench::{hippi_benchmark, io_table, network_table};
use superux::nqs::Nqs;
use superux::prodload::{prodload, CcmRates};
use superux::queues::QueueManager;
use sxsim::{presets, Node};

/// PRODLOAD: the production-mix benchmark. `measured` selects real model
/// measurement (slow) vs representative rates (fast).
pub fn prodload_experiment(measured: bool) -> Vec<Artifact> {
    let machine = presets::sx4_benchmarked();
    let rates = if measured { CcmRates::measure(&machine) } else { CcmRates::synthetic() };
    let node = Node::new(machine);
    let r = prodload(&node, &rates);
    let mut t = Table::new(
        "PRODLOAD: production job mix on the SX-4/32 (paper: 93 minutes 28 seconds total)",
        &["Test", "Composition", "Wall seconds"],
    );
    let desc = [
        "1 sequence of 4 jobs",
        "2 concurrent sequences of 4 jobs",
        "4 concurrent sequences of 4 jobs",
        "2 concurrent CCM2 T170 2-day runs",
    ];
    for (i, d) in desc.iter().enumerate() {
        t.row(&[format!("{}", i + 1), d.to_string(), format!("{:.0}", r.test_seconds[i])]);
    }
    t.row(&["total".into(), r.formatted(), format!("{:.0}", r.total_seconds)]);

    // Accounting view of a representative production shift: the same job
    // classes routed through the site's queue complex.
    let nqs = Nqs::whole_node(&node);
    let mut qm = QueueManager::site_default();
    let job = |name: &str, procs: usize, secs: f64| superux::nqs::JobSpec {
        name: name.into(),
        procs,
        memory_bytes: 512 << 20,
        solo_seconds: secs,
        bytes_per_cycle_per_proc: rates.bpc,
        block: 0,
        after: vec![],
    };
    qm.submit("express", job("interactive-check", 2, 30.0)).expect("fits");
    qm.submit("premium", job("ccm2-T106", 4, 600.0)).expect("fits");
    qm.submit("regular", job("ccm2-T42-a", 4, 900.0)).expect("fits");
    qm.submit("regular", job("ccm2-T42-b", 4, 900.0)).expect("fits");
    qm.submit("standby", job("mom-spinup", 16, 400.0)).expect("fits");
    let (jobs, schedule) = qm.run(&nqs).expect("site mix is schedulable");
    vec![Artifact::Table(t), Artifact::Table(qacct_table(&jobs, &schedule))]
}

/// The I/O benchmark (§4.5.1).
pub fn io() -> Vec<Artifact> {
    vec![Artifact::Table(io_table())]
}

/// The HIPPI benchmark (§4.5.2).
pub fn hippi() -> Vec<Artifact> {
    let mut fig = Figure::new("HIPPI benchmark: aggregate throughput vs packet size");
    for s in hippi_benchmark() {
        fig.push(s);
    }
    vec![Artifact::Figure(fig)]
}

/// The NETWORK benchmark (§4.5.3).
pub fn network() -> Vec<Artifact> {
    vec![Artifact::Table(network_table())]
}

/// The §3 comparison suites: LINPACK, STREAM and the HINT curve.
pub fn other_suites() -> Vec<Artifact> {
    let sx4 = presets::sx4_benchmarked();
    let ymp = presets::cray_ymp();

    let mut lp = Table::new(
        "LINPACK (\"tends to measure peak performance\"), Mflops",
        &["Order", "NEC SX-4/1", "CRI Y-MP", "RS6K 590"],
    );
    let rs6k = presets::rs6000_590();
    for n in [100usize, 1000] {
        lp.row(&[
            format!("{n}"),
            format!("{:.0}", linpack(&sx4, n).mflops),
            format!("{:.0}", linpack(&ymp, n).mflops),
            format!("{:.0}", linpack(&rs6k, n).mflops),
        ]);
    }
    // The TPP row: blocked (BLAS-3) LU, where cache machines close the gap.
    lp.row(&[
        "1000 TPP (blocked)".into(),
        format!("{:.0}", linpack_tpp(&sx4, 1000, 32)),
        format!("{:.0}", linpack_tpp(&ymp, 1000, 32)),
        format!("{:.0}", linpack_tpp(&rs6k, 1000, 32)),
    ]);

    let mut st =
        Table::new("STREAM (fixed-size long-vector bandwidth), SX-4/1", &["Operation", "MB/s"]);
    for r in stream_table(&sx4) {
        st.row(&[r.op.name().to_string(), format!("{:.0}", r.mb_per_s)]);
    }

    let mut hint_fig =
        Figure::new("HINT QUIPS trajectory (cache machines peak early, Crays run flat)");
    for m in [presets::rs6000_590(), presets::cray_ymp()] {
        let r = run_hint(&m, 200_000);
        let mut s = ncar_suite::Series::new(m.name.clone(), "subdivisions", "MQUIPS");
        for (x, y) in r.trajectory {
            s.push(x as f64, y);
        }
        hint_fig.push(s);
    }
    let _ = hint_mquips(&presets::sparc20()); // exercised by table1 as well

    vec![Artifact::Table(lp), Artifact::Table(st), Artifact::Figure(hint_fig)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prodload_fast_path_produces_all_tests() {
        let arts = prodload_experiment(false);
        let Artifact::Table(t) = &arts[0] else { panic!() };
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[4][1].contains("minutes"));
    }

    #[test]
    fn io_and_network_render() {
        let io = io();
        let net = network();
        assert!(io[0].render().contains("T170L18"));
        assert!(net[0].render().contains("ftp"));
    }

    #[test]
    fn linpack_1000_beats_100_on_sx4() {
        let arts = other_suites();
        let Artifact::Table(lp) = &arts[0] else { panic!() };
        let small: f64 = lp.rows[0][1].parse().unwrap();
        let large: f64 = lp.rows[1][1].parse().unwrap();
        assert!(large > 1.5 * small, "{small} vs {large}");
    }
}
