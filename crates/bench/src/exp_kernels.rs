//! Kernel experiments: Tables 1-3, Figures 5-7, the RADABS headline, and
//! the §4.1 correctness battery.

use ncar_kernels::elefunt;
use ncar_kernels::fft::{run_fft_point, LoopOrder};
use ncar_kernels::membw::{sweep, MembwKind};
use ncar_kernels::paranoia;
use ncar_kernels::radabs::radabs_benchmark;
use ncar_suite::{
    constant_volume_ladder, rfft_instances, xpose_ladder, Artifact, FftFamily, Figure, Series,
    Table, KTRIES_DEFAULT, KTRIES_VFFT, VFFT_M,
};
use othersuites::hint_mquips;
use sxsim::presets;

/// Table 1: HINT MQUIPS vs RADABS Mflops across the four comparison
/// machines — the experiment that shows HINT inverting the vector-machine
/// ranking.
pub fn table1() -> Vec<Artifact> {
    let machines = presets::table1_machines();
    let mut t = Table::new(
        "Table 1: HINT (MQUIPS) vs RADABS (Cray-equivalent Mflops), single processors",
        &["Benchmark", "SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI YMP"],
    );
    let hint: Vec<String> = machines.iter().map(|m| format!("{:.1}", hint_mquips(m))).collect();
    let rad: Vec<String> = machines.iter().map(|m| format!("{:.1}", radabs_benchmark(m))).collect();
    t.row(&[vec!["HINT (MQUIPS)".to_string()], hint].concat());
    t.row(&[vec!["RADABS (MFLOPS)".to_string()], rad].concat());
    let mut paper = Table::new(
        "Paper's Table 1 (for comparison)",
        &["Benchmark", "SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI YMP"],
    );
    paper.row(&["HINT (MQUIPS)".into(), "3.5".into(), "5.2".into(), "1.7".into(), "3.1".into()]);
    paper.row(&[
        "RADABS (MFLOPS)".into(),
        "12.8".into(),
        "16.5".into(),
        "60.8".into(),
        "178.1".into(),
    ]);
    vec![Artifact::Table(t), Artifact::Table(paper)]
}

/// Table 2: the benchmarked system's specifications.
pub fn table2() -> Vec<Artifact> {
    let m = presets::sx4_benchmarked();
    let mut t = Table::new(
        "Table 2: NEC SX-4/32 system used for the benchmark results",
        &["Item", "Value"],
    );
    t.row(&["Clock Rate".into(), format!("{:.1} ns", m.clock_ns)]);
    t.row(&["Peak FLOP Rate Per Processor".into(), "2 GFLOPS (at the 8.0 ns design point)".into()]);
    t.row(&["Peak Memory Bandwidth".into(), "16 GB/sec/proc".into()]);
    t.row(&["Processors".into(), format!("{}", m.procs)]);
    t.row(&["Disk Capacity".into(), "282 GB".into()]);
    t.row(&["Main Memory".into(), "8 GB".into()]);
    t.row(&["Extended Memory".into(), "4 GB".into()]);
    t.row(&["Cooling".into(), "air cooled".into()]);
    t.row(&["Power Consumption".into(), "122.8 KVA".into()]);
    vec![Artifact::Table(t)]
}

/// Table 3: ELEFUNT intrinsic throughput on the SX-4/1.
pub fn table3() -> Vec<Artifact> {
    let m = presets::sx4_benchmarked();
    let mut t = Table::new(
        "Table 3: single-processor 64-bit intrinsic throughput (millions of calls/second), SX-4/1",
        &["Function", "Mcalls/s"],
    );
    for (f, rate) in elefunt::table3(&m) {
        t.row(&[f.name().to_string(), format!("{rate:.1}")]);
    }
    vec![Artifact::Table(t)]
}

/// §4.1: PARANOIA and ELEFUNT pass/fail.
pub fn correctness() -> Vec<Artifact> {
    let p = paranoia::run();
    let paranoia_art = Artifact::Verdict {
        title: "PARANOIA (arithmetic operation test)".into(),
        passed: p.passed(),
        details: p.log.clone(),
    };
    let (ok, reports) = elefunt::accuracy_suite();
    let elefunt_art = Artifact::Verdict {
        title: "ELEFUNT (elementary function accuracy)".into(),
        passed: ok,
        details: reports
            .iter()
            .map(|r| format!("{}: max {:.2} ULP via {}", r.function.name(), r.max_ulp, r.identity))
            .collect(),
    };
    vec![paranoia_art, elefunt_art]
}

/// Figure 5: COPY / IA / XPOSE bandwidth ladders on the SX-4/1.
pub fn fig5() -> Vec<Artifact> {
    let m = presets::sx4_benchmarked();
    let mut fig = Figure::new(
        "Figure 5: memory bandwidth (MB/sec) for COPY, IA and XPOSE on an SX-4/1 (KTRIES=20)",
    );
    let ladder = constant_volume_ladder(1_000_000);
    let xl = xpose_ladder(1_000_000, 1000);
    // The three curves are independent: sweep them host-parallel (each
    // sweep also fans out over its own ladder).
    let jobs =
        vec![(MembwKind::Copy, ladder.clone()), (MembwKind::Ia, ladder), (MembwKind::Xpose, xl)];
    for s in ncar_suite::par_map(jobs, |(kind, lad)| sweep(&m, kind, &lad, KTRIES_DEFAULT)) {
        fig.push(s);
    }
    vec![Artifact::Figure(fig)]
}

/// Figure 6: RFFT Mflops vs FFT length on the SX-4/1.
pub fn fig6() -> Vec<Artifact> {
    let m = presets::sx4_benchmarked();
    let mut fig =
        Figure::new("Figure 6: RFFT (\"scalar\" loop order) Mflops on an SX-4/1 (KTRIES=20)");
    for family in FftFamily::ALL {
        let pts: Vec<(f64, f64)> = ncar_suite::par_map(rfft_instances(family, 1_000_000), |inst| {
            let p = run_fft_point(&m, inst.n, inst.m, LoopOrder::AxisFastest);
            (inst.n as f64, p.mflops)
        });
        let mut s = Series::new(family.label(), "N", "Mflops");
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.push(s);
    }
    vec![Artifact::Figure(fig)]
}

/// Figure 7: VFFT Mflops vs vector length on the SX-4/1.
pub fn fig7() -> Vec<Artifact> {
    let m = presets::sx4_benchmarked();
    let mut fig =
        Figure::new("Figure 7: VFFT (\"vector\" loop order) Mflops on an SX-4/1 (KTRIES=5)");
    let _ = KTRIES_VFFT; // timing is deterministic; constant kept for fidelity

    // One curve per family at its largest paper length, swept over the
    // paper's vector lengths M; the families are independent so they run
    // host-parallel.
    for s in ncar_suite::par_map(FftFamily::ALL.to_vec(), |family| {
        let n = *family.vfft_lengths().last().unwrap();
        let mut s =
            Series::new(format!("{} (N={n})", family.label()), "M (vector length)", "Mflops");
        for &mm in VFFT_M.iter() {
            let p = run_fft_point(&m, n, mm, LoopOrder::InstanceFastest);
            s.push(mm as f64, p.mflops);
        }
        s
    }) {
        fig.push(s);
    }
    vec![Artifact::Figure(fig)]
}

/// §4.4: the RADABS headline number.
pub fn radabs() -> Vec<Artifact> {
    let got = radabs_benchmark(&presets::sx4_benchmarked());
    vec![
        Artifact::Scalar {
            title: "RADABS on the SX-4/1 (measured on the simulator)".into(),
            value: got,
            unit: "Cray Y-MP equivalent Mflops".into(),
        },
        Artifact::Scalar {
            title: "RADABS on the SX-4/1 (paper)".into(),
            value: 865.9,
            unit: "Cray Y-MP equivalent Mflops".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let arts = table1();
        let Artifact::Table(t) = &arts[0] else { panic!("expected table") };
        let hint: Vec<f64> = t.rows[0][1..].iter().map(|c| c.parse().unwrap()).collect();
        let rad: Vec<f64> = t.rows[1][1..].iter().map(|c| c.parse().unwrap()).collect();
        // HINT: workstations above vector machines.
        assert!(hint[0] > hint[2] && hint[0] > hint[3]);
        assert!(hint[1] > hint[2] && hint[1] > hint[3]);
        // RADABS: vector machines far above workstations.
        assert!(rad[3] > 5.0 * rad[0]);
        assert!(rad[2] > 2.0 * rad[0]);
    }

    #[test]
    fn correctness_passes() {
        for a in correctness() {
            let Artifact::Verdict { passed, title, .. } = &a else { panic!() };
            assert!(passed, "{title} failed");
        }
    }

    #[test]
    fn fig5_copy_dominates() {
        let arts = fig5();
        let Artifact::Figure(f) = &arts[0] else { panic!() };
        let copy_peak = f.series[0].peak();
        let ia_peak = f.series[1].peak();
        let xpose_peak = f.series[2].peak();
        assert!(copy_peak > 2.0 * ia_peak, "COPY {copy_peak} vs IA {ia_peak}");
        assert!(copy_peak > 1.5 * xpose_peak, "COPY {copy_peak} vs XPOSE {xpose_peak}");
    }

    #[test]
    fn vfft_an_order_of_magnitude_above_rfft() {
        let f6 = fig6();
        let f7 = fig7();
        let Artifact::Figure(rf) = &f6[0] else { panic!() };
        let Artifact::Figure(vf) = &f7[0] else { panic!() };
        let rfft_best = rf.series.iter().map(|s| s.peak()).fold(0.0, f64::max);
        let vfft_best = vf.series.iter().map(|s| s.peak()).fold(0.0, f64::max);
        assert!(vfft_best > 5.0 * rfft_best, "VFFT {vfft_best} vs RFFT {rfft_best}");
    }

    #[test]
    fn radabs_near_headline() {
        let arts = radabs();
        let Artifact::Scalar { value, .. } = arts[0] else { panic!() };
        assert!((600.0..1200.0).contains(&value), "{value}");
    }
}
