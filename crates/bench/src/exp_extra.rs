//! Extension experiments beyond the paper's tables:
//!
//! - `projection`: the paper's forward-looking claim that "an additional
//!   15% performance improvement can be realized with ... an 8.0 ns clock"
//!   (§4.7.1), tested by re-running CCM2 on the production-clock model;
//! - `ablations`: which architectural features buy which results —
//!   vector-startup cost vs the RFFT/VFFT gap, bank count vs XPOSE,
//!   gather hardware vs IA, and the multi-node IXS cost of going past one
//!   node.

use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_kernels::fft::run_fft_point;
use ncar_kernels::fft::{charge_transform, LoopOrder};
use ncar_kernels::membw::{run_point, MembwKind};
use ncar_kernels::radabs::radabs;
use ncar_suite::{Artifact, Instance, Table};
use sxsim::{presets, Ixs, Vm};

/// The 8.0 ns projection: same machine, production clock.
pub fn projection() -> Vec<Artifact> {
    let mut t = Table::new(
        "Projection: CCM2 T42L18 on 32 processors, 9.2 ns benchmarked clock vs 8.0 ns production clock",
        &["Clock", "Sim s/step", "Speedup vs 9.2 ns"],
    );
    let step = |clock: f64| {
        let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4(clock));
        m.step(32);
        m.step(32).seconds
    };
    let t92 = step(9.2);
    let t80 = step(8.0);
    t.row(&["9.2 ns".into(), format!("{t92:.4}"), "1.00".into()]);
    t.row(&["8.0 ns".into(), format!("{t80:.4}"), format!("{:.2}", t92 / t80)]);
    vec![
        Artifact::Table(t),
        Artifact::Scalar {
            title: "Paper's projection (clock + tuning)".into(),
            value: 15.0,
            unit: "% improvement anticipated".into(),
        },
    ]
}

/// Architecture ablations: vary one machine parameter, watch one benchmark.
pub fn ablations() -> Vec<Artifact> {
    let mut out = Vec::new();

    // 1. Vector startup vs the coding-style gap (Figures 6/7 mechanism).
    {
        let mut t = Table::new(
            "Ablation: vector startup cycles vs the VFFT/RFFT gap (N=256, M=500)",
            &["Startup cycles", "RFFT Mflops", "VFFT Mflops", "Ratio"],
        );
        for startup in [10.0, 40.0, 160.0] {
            let mut m = presets::sx4_benchmarked();
            m.vector.as_mut().unwrap().startup_cycles = startup;
            let r = run_fft_point(&m, 256, 500, LoopOrder::AxisFastest);
            let v = run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest);
            t.row(&[
                format!("{startup}"),
                format!("{:.0}", r.mflops),
                format!("{:.0}", v.mflops),
                format!("{:.1}", v.mflops / r.mflops),
            ]);
        }
        out.push(Artifact::Table(t));
    }

    // 2. Bank count vs XPOSE (power-of-two stride conflicts).
    {
        let mut t = Table::new(
            "Ablation: memory banks vs XPOSE bandwidth (N=512 transpose)",
            &["Banks", "XPOSE MB/s"],
        );
        for banks in [128usize, 512, 1024, 4096] {
            let mut m = presets::sx4_benchmarked();
            m.memory.banks = banks;
            let p = run_point(&m, MembwKind::Xpose, Instance { n: 512, m: 8 }, 2);
            t.row(&[format!("{banks}"), format!("{:.0}", p.mb_per_s)]);
        }
        out.push(Artifact::Table(t));
    }

    // 3. Gather hardware vs IA.
    {
        let mut t = Table::new(
            "Ablation: gather rate (elements/cycle) vs IA bandwidth",
            &["Gather elems/cycle", "IA MB/s"],
        );
        for rate in [0.5, 1.0, 2.5, 8.0] {
            let mut m = presets::sx4_benchmarked();
            m.vector.as_mut().unwrap().gather_elems_per_cycle = rate;
            let p = run_point(&m, MembwKind::Ia, Instance { n: 262_144, m: 4 }, 2);
            t.row(&[format!("{rate}"), format!("{:.0}", p.mb_per_s)]);
        }
        out.push(Artifact::Table(t));
    }

    // 4. Multi-node spectral transpose over the IXS: what leaving the
    // single shared-memory node costs.
    {
        let mut t = Table::new(
            "Ablation: IXS all-to-all cost of a T170 spectral transpose across nodes",
            &["Nodes", "Exchange ms/step", "Barrier us"],
        );
        let res = Resolution::T170;
        let field_bytes = (res.ncols() * res.nlev() * 8) as u64;
        for nodes in [2usize, 4, 8, 16] {
            let ixs = Ixs::new(nodes);
            let per_pair = field_bytes / (nodes * nodes) as u64;
            let s = ixs.all_to_all_seconds(per_pair);
            t.row(&[
                format!("{nodes}"),
                format!("{:.2}", s * 1e3),
                format!("{:.1}", ixs.barrier_seconds() * 1e6),
            ]);
        }
        out.push(Artifact::Table(t));
    }

    out
}

/// Multi-node scaling over the IXS: the SX-4/512 direction of the paper's
/// architecture section, exercised by the CCM2 proxy.
pub fn multinode() -> Vec<Artifact> {
    let mut t = Table::new(
        "Extension: CCM2 across IXS-coupled nodes (32 processors per node, first step timing)",
        &["Resolution", "Nodes", "Sim s/step", "Speedup vs 1 node"],
    );
    for res in [Resolution::T42, Resolution::T85] {
        let mut base = None;
        for nodes in [1usize, 2, 4] {
            let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
            let s = if nodes == 1 { m.step(32) } else { m.step_multinode(nodes, 32) };
            let one = *base.get_or_insert(s.seconds);
            t.row(&[
                res.name(),
                format!("{nodes}"),
                format!("{:.4}", s.seconds),
                format!("{:.2}", one / s.seconds),
            ]);
        }
    }
    vec![Artifact::Table(t)]
}

/// FTRACE of one CCM2 timestep: where the time goes, phase by phase —
/// the per-routine view behind the paper's Figure 8 analysis.
pub fn ftrace() -> Vec<Artifact> {
    let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
    m.step(4); // spin-up
    let (_t, ft) = m.step_traced(4);
    let mut table = Table::new(
        "FTRACE: one CCM2 T42L18 step on processor 0 of 4 (exclusive per-phase totals)",
        &["Phase", "Calls", "Excl. ms", "Time %", "MFLOPS", "V.op %", "Avg VL"],
    );
    let clock = 9.2;
    let total: f64 = ft.regions().values().map(|r| r.cost.cycles).sum();
    let mut rows: Vec<_> = ft.regions().iter().collect();
    rows.sort_by(|a, b| b.1.cost.cycles.total_cmp(&a.1.cost.cycles));
    for (name, r) in rows {
        table.row(&[
            name.clone(),
            format!("{}", r.calls),
            format!("{:.3}", r.seconds(clock) * 1e3),
            format!("{:.1}", 100.0 * r.cost.cycles / total),
            format!("{:.0}", r.mflops(clock)),
            format!("{:.1}", r.vector_ratio_pct()),
            format!("{:.1}", r.average_vector_length()),
        ]);
    }
    vec![Artifact::Table(table)]
}

/// PROGINF reports for contrasting workloads: the vocabulary behind the
/// paper's analysis (vectorization ratio, average vector length).
pub fn proginf() -> Vec<Artifact> {
    let machine = presets::sx4_benchmarked();
    let mut t = Table::new(
        "PROGINF summaries: why each benchmark behaves as it does",
        &["Workload", "Vector op ratio %", "Avg vector length", "MFLOPS", "Cray-equiv MFLOPS"],
    );

    // RADABS: long vectors, intrinsic-heavy.
    let mut vm = Vm::new(machine.clone());
    let _ = radabs(&mut vm, 8192, 18);
    let p = vm.proginf();
    t.row(&[
        "RADABS (8192 columns)".into(),
        format!("{:.1}", p.vector_operation_ratio_pct),
        format!("{:.0}", p.average_vector_length),
        format!("{:.0}", p.mflops),
        format!("{:.0}", p.cray_equiv_mflops),
    ]);

    // RFFT vs VFFT: same arithmetic, different vector lengths.
    for (label, order, m) in [
        ("RFFT N=256 (axis fastest)", LoopOrder::AxisFastest, 1usize),
        ("VFFT N=256, M=500 (instance fastest)", LoopOrder::InstanceFastest, 500usize),
    ] {
        let mut vm = Vm::new(machine.clone());
        charge_transform(&mut vm, 256, m, order);
        let p = vm.proginf();
        t.row(&[
            label.into(),
            format!("{:.1}", p.vector_operation_ratio_pct),
            format!("{:.1}", p.average_vector_length),
            format!("{:.0}", p.mflops),
            format!("{:.0}", p.cray_equiv_mflops),
        ]);
    }

    // HINT: scalar through and through.
    let r = othersuites::run_hint(&machine, 20_000);
    let _ = r;
    let mut vm = Vm::new(machine);
    vm.charge_scalar_loop(20_000, 40.0, 24.0, 12.0, sxsim::LocalityPattern::Streaming);
    let p = vm.proginf();
    t.row(&[
        "HINT-like adaptive subdivision".into(),
        format!("{:.1}", p.vector_operation_ratio_pct),
        format!("{:.1}", p.average_vector_length),
        format!("{:.0}", p.mflops),
        format!("{:.0}", p.cray_equiv_mflops),
    ]);

    vec![Artifact::Table(t)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proginf_contrasts_hold() {
        let arts = proginf();
        let Artifact::Table(t) = &arts[0] else { panic!() };
        let ratio = |row: usize| -> f64 { t.rows[row][1].parse().unwrap() };
        let avl = |row: usize| -> f64 { t.rows[row][2].parse().unwrap() };
        assert!(ratio(0) > 95.0, "RADABS should be highly vectorized");
        assert!(avl(2) > 5.0 * avl(1), "VFFT vectors much longer than RFFT");
        assert_eq!(ratio(3), 0.0, "HINT is scalar");
    }

    #[test]
    fn faster_clock_speeds_up_ccm2() {
        let arts = projection();
        let Artifact::Table(t) = &arts[0] else { panic!() };
        let speedup: f64 = t.rows[1][2].parse().unwrap();
        // 9.2/8.0 = 1.15: the clock alone delivers the paper's 15%.
        assert!((1.05..1.25).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn higher_startup_widens_fft_gap() {
        let arts = ablations();
        let Artifact::Table(t) = &arts[0] else { panic!() };
        let lo: f64 = t.rows[0][3].parse().unwrap();
        let hi: f64 = t.rows[2][3].parse().unwrap();
        assert!(hi > lo, "startup should widen the gap: {lo} vs {hi}");
    }

    #[test]
    fn more_banks_help_xpose() {
        let arts = ablations();
        let Artifact::Table(t) = &arts[1] else { panic!() };
        let few: f64 = t.rows[0][1].parse().unwrap();
        let many: f64 = t.rows[3][1].parse().unwrap();
        assert!(many >= few, "{few} vs {many}");
    }

    #[test]
    fn gather_rate_drives_ia() {
        let arts = ablations();
        let Artifact::Table(t) = &arts[2] else { panic!() };
        let slow: f64 = t.rows[0][1].parse().unwrap();
        let fast: f64 = t.rows[3][1].parse().unwrap();
        assert!(fast > 2.0 * slow, "{slow} vs {fast}");
    }
}
