//! Application experiments: Table 4, Figure 8, Table 5, Table 6 (CCM2),
//! Table 7 (MOM) and the POP Mflops headline (§4.7).

use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_suite::{Artifact, Figure, Series, Table};
use ocean_models::{Mom, MomConfig, Pop, PopConfig};
use superux::Sfs;
use sxsim::{presets, JobDemand, Node};

/// Table 4: CCM2 resolutions, grid spacings, time steps.
pub fn table4() -> Vec<Artifact> {
    let mut t = Table::new(
        "Table 4: typical CCM2 resolutions, grid spacings, and time steps",
        &["Model Resolution", "Horizontal Grid Size", "Nominal Grid Spacing", "Time Step"],
    );
    for r in Resolution::ALL {
        t.row(&[
            r.name(),
            format!("{} x {}", r.nlat(), r.nlon()),
            format!("{} degrees", r.spacing_degrees()),
            format!("{} min.", r.timestep_minutes()),
        ]);
    }
    vec![Artifact::Table(t)]
}

/// Measure one steady-state CCM2 step at a resolution/processor count.
fn ccm2_step(res: Resolution, procs: usize) -> ccm_proxy::StepTiming {
    let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
    m.step(procs); // forward (spin-up) step
    m.step(procs)
}

/// Figure 8: CCM2 sustained Cray-equivalent Gflops vs processors, for
/// T42, T106 and T170.
pub fn fig8() -> Vec<Artifact> {
    let clock = presets::sx4_benchmarked().clock_ns;
    let mut fig = Figure::new(
        "Figure 8: CCM2 performance (Cray-equivalent Gflops) vs processors on the SX-4/32",
    );
    for res in [Resolution::T42, Resolution::T106, Resolution::T170] {
        // Each (resolution, procs) run is an independent model: fan the six
        // processor counts out across host cores.
        let pts: Vec<(f64, f64)> = ncar_suite::par_map(vec![1usize, 2, 4, 8, 16, 32], |procs| {
            let t = ccm2_step(res, procs);
            (procs as f64, t.timing.cray_gflops(clock))
        });
        let mut s = Series::new(res.name(), "processors", "Cray-equivalent Gflops");
        for (x, y) in pts {
            s.push(x, y);
        }
        fig.push(s);
    }
    vec![
        Artifact::Figure(fig),
        Artifact::Scalar {
            title: "Paper's anchor: CCM2 T170L18 on 32 processors".into(),
            value: 24.0,
            unit: "Cray-equivalent Gflops sustained".into(),
        },
    ]
}

/// Table 5: time to simulate one year of climate at T42L18 and T63L18 on
/// the 32-processor node, including the daily history/restart writes
/// (~15 GB over the T63 year).
pub fn table5() -> Vec<Artifact> {
    let mut t = Table::new(
        "Table 5: seconds to simulate one year (32 processors, daily history writes through SFS)",
        &["Resolution", "Simulated", "Paper"],
    );
    let paper = [("T42L18", 1327.53), ("T63L18", 3452.48)];
    for (i, res) in [Resolution::T42, Resolution::T63].into_iter().enumerate() {
        let step = ccm2_step(res, 32);
        let model = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
        let steps_per_year = 365 * res.steps_per_day();
        let compute = steps_per_year as f64 * step.seconds;
        // 365 daily history writes; the application blocks only for the
        // XMU staging leg.
        let mut fs = Sfs::benchmarked();
        let bytes_per_day = model.history_bytes_per_day();
        let mut io_blocked = 0.0;
        let mut now = 0.0;
        for _ in 0..365 {
            now += compute / 365.0;
            let w = fs.write(now, bytes_per_day, res.nlat());
            io_blocked += w.blocked_s;
            now += w.blocked_s;
        }
        let total = compute + io_blocked;
        t.row(&[res.name(), format!("{total:.2}"), format!("{}", paper[i].1)]);
    }
    vec![Artifact::Table(t)]
}

/// Table 6: the ensemble test — one 4-processor CCM2 T42 12-day run vs
/// eight concurrent copies filling the node.
pub fn table6() -> Vec<Artifact> {
    let res = Resolution::T42;
    let step = ccm2_step(res, 4);
    let steps = 12 * res.steps_per_day();
    let single = steps as f64 * step.seconds;

    let node = Node::new(presets::sx4_benchmarked());
    let job = JobDemand {
        solo_cycles: 0.0,
        procs: 4,
        bytes_per_cycle_per_proc: step.bytes_per_cycle_per_proc,
    };
    let stretch = node.coschedule_stretch(&[job; 8]).expect("8 x 4 procs fit a 32-processor node");
    let multi = single * stretch;
    let degradation = (multi / single - 1.0) * 100.0;

    let mut t = Table::new(
        "Table 6: ensemble test — 12-day CCM2 T42L18 on 4 processors, single vs 8 concurrent copies",
        &["Case", "Wall seconds", "Degradation"],
    );
    t.row(&["single 4-proc job".into(), format!("{single:.2}"), "-".into()]);
    t.row(&["eight 4-proc jobs".into(), format!("{multi:.2}"), format!("{degradation:.2}%")]);
    t.row(&["paper".into(), "-".into(), "1.89%".into()]);
    vec![Artifact::Table(t)]
}

/// Table 7: MOM high-resolution benchmark — 350 timesteps at 1, 4, 8, 16,
/// 32 CPUs, time and speedup.
pub fn table7() -> Vec<Artifact> {
    let mut t = Table::new(
        "Table 7: MOM ocean model, 350 time steps (1-degree, 45 levels)",
        &["CPUs", "Time (s)", "Speedup", "Paper time", "Paper speedup"],
    );
    let paper: [(usize, f64, f64); 5] = [
        (1, 1861.25, 1.00),
        (4, 696.92, 2.70),
        (8, 519.74, 3.66),
        (16, 331.67, 5.88),
        (32, 226.62, 9.06),
    ];
    let mut base = None;
    for (procs, ptime, pspeed) in paper {
        let mut m = Mom::new(MomConfig::high_resolution(), presets::sx4_benchmarked());
        // One diagnostics period, scaled to 350 steps (steady state).
        let block: f64 = (0..10).map(|_| m.step(procs).seconds).sum();
        let total = 35.0 * block;
        let one_cpu = *base.get_or_insert(total);
        let speedup = one_cpu / total;
        t.row(&[
            format!("{procs}"),
            format!("{total:.2}"),
            format!("{speedup:.2}"),
            format!("{ptime}"),
            format!("{pspeed}"),
        ]);
    }
    vec![Artifact::Table(t)]
}

/// §4.7.3: POP 2-degree single-processor Mflops.
pub fn pop() -> Vec<Artifact> {
    let mut m = Pop::new(PopConfig::two_degree(), presets::sx4_benchmarked());
    let got = m.mflops(3);
    let mut vec_cfg = PopConfig::two_degree();
    vec_cfg.cshift_vectorized = true;
    let mut mv = Pop::new(vec_cfg, presets::sx4_benchmarked());
    let vectorized = mv.mflops(3);
    vec![
        Artifact::Scalar {
            title: "POP 2-degree, 1 processor, scalar CSHIFT (as benchmarked)".into(),
            value: got,
            unit: "Mflops".into(),
        },
        Artifact::Scalar {
            title: "POP 2-degree, 1 processor (paper, pre-release F90 compiler)".into(),
            value: 537.0,
            unit: "Mflops".into(),
        },
        Artifact::Scalar {
            title: "POP 2-degree, 1 processor, vectorized CSHIFT (ablation)".into(),
            value: vectorized,
            unit: "Mflops".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_rows() {
        let arts = table4();
        let Artifact::Table(t) = &arts[0] else { panic!() };
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][0], "T42L18");
        assert_eq!(t.rows[4][1], "256 x 512");
        assert_eq!(t.rows[3][3], "7.5 min.");
    }

    #[test]
    fn ensemble_degradation_small() {
        let arts = table6();
        let Artifact::Table(t) = &arts[0] else { panic!() };
        let deg: f64 = t.rows[1][2].trim_end_matches('%').parse().unwrap();
        assert!(deg > 0.0 && deg < 6.0, "degradation {deg}%");
    }

    #[test]
    fn pop_scalar_slower_than_vectorized() {
        let arts = pop();
        let Artifact::Scalar { value: scalar, .. } = arts[0] else { panic!() };
        let Artifact::Scalar { value: vector, .. } = arts[2] else { panic!() };
        assert!(vector > 1.2 * scalar, "{vector} vs {scalar}");
        assert!((300.0..900.0).contains(&scalar));
    }
}
