//! `ncar-bench` — regenerate every table and figure of the SC'96 paper
//! "Architecture and Application: The Performance of the NEC SX-4 on the
//! NCAR Benchmark Suite" on the simulated machine.
//!
//! ```text
//! ncar-bench [--json] [--jobs N] <experiment>...
//! ncar-bench all            # everything (slow: full CCM2/MOM runs)
//! ncar-bench list           # list experiment names
//! ncar-bench serve …        # daemon mode: serve suites over TCP (sxd)
//! ```

mod exp_apps;
mod exp_check;
mod exp_extra;
mod exp_kernels;
mod exp_system;
mod perf;
mod serve;

use ncar_suite::Artifact;

/// (name, description, runner)
type Experiment = (&'static str, &'static str, fn() -> Vec<Artifact>);

fn experiments() -> Vec<Experiment> {
    vec![
        ("table1", "HINT vs RADABS across four machines", exp_kernels::table1),
        ("table2", "benchmarked SX-4/32 specifications", exp_kernels::table2),
        ("table3", "ELEFUNT intrinsic throughput, SX-4/1", exp_kernels::table3),
        ("correctness", "PARANOIA + ELEFUNT accuracy (pass/fail)", exp_kernels::correctness),
        ("fig5", "COPY/IA/XPOSE memory bandwidth ladders", exp_kernels::fig5),
        ("fig6", "RFFT Mflops vs FFT length", exp_kernels::fig6),
        ("fig7", "VFFT Mflops vs vector length", exp_kernels::fig7),
        ("radabs", "RADABS Cray-equivalent Mflops headline", exp_kernels::radabs),
        ("table4", "CCM2 resolutions/grids/time steps", exp_apps::table4),
        ("fig8", "CCM2 Gflops vs processors (T42/T106/T170)", exp_apps::fig8),
        ("table5", "one-year T42/T63 simulations with history I/O", exp_apps::table5),
        ("table6", "ensemble test (1 vs 8 concurrent jobs)", exp_apps::table6),
        ("table7", "MOM 350-step scaling", exp_apps::table7),
        ("pop", "POP 2-degree Mflops (+ CSHIFT ablation)", exp_apps::pop),
        ("prodload", "production job mix (measured rates)", || {
            exp_system::prodload_experiment(true)
        }),
        ("io", "history-tape I/O benchmark", exp_system::io),
        ("hippi", "HIPPI packet-size sweep", exp_system::hippi),
        ("network", "FDDI/IP NETWORK benchmark", exp_system::network),
        ("othersuites", "LINPACK / STREAM / HINT context suites", exp_system::other_suites),
        ("projection", "8.0 ns production-clock projection (§4.7.1)", exp_extra::projection),
        ("ablations", "architecture ablations (startup/banks/gather/IXS)", exp_extra::ablations),
        ("proginf", "PROGINF summaries of contrasting workloads", exp_extra::proginf),
        ("multinode", "CCM2 across IXS-coupled nodes (extension)", exp_extra::multinode),
        ("ftrace", "FTRACE phase breakdown of a CCM2 step", exp_extra::ftrace),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let exps = experiments();

    // Daemon/client subcommands take over argument parsing entirely.
    if let Some(sub) = args.first().map(String::as_str) {
        let rest = &args[1..];
        let code = match sub {
            "serve" => Some(serve::cmd_serve(rest, &exps)),
            "submit" => Some(serve::cmd_submit(rest)),
            "stats" => Some(serve::cmd_stats(rest)),
            "metrics" => Some(serve::cmd_metrics(rest)),
            "shutdown" => Some(serve::cmd_shutdown(rest)),
            "drain" => Some(serve::cmd_drain(rest)),
            "flood" => Some(serve::cmd_flood(rest, &exps)),
            "raw" => Some(serve::cmd_raw(rest)),
            "perf" => Some(perf::cmd_perf(rest, &exps)),
            _ => None,
        };
        if let Some(code) = code {
            std::process::exit(code);
        }
    }

    // `--jobs N` caps the worker threads every experiment's internal
    // parallel fan-out uses (core::par::par_map_with).
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        if pos + 1 >= args.len() {
            eprintln!("--jobs needs a thread count");
            std::process::exit(2);
        }
        match args[pos + 1].parse::<usize>() {
            Ok(n) => ncar_suite::set_host_parallelism(n),
            Err(_) => {
                eprintln!("--jobs wants a number, got {:?}", args[pos + 1]);
                std::process::exit(2);
            }
        }
        args.drain(pos..pos + 2);
    }

    let json = args.iter().any(|a| a == "--json");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if names.iter().any(|n| n.as_str() == "check") {
        let baseline_path = args.iter().position(|a| a == "--baseline").map(|pos| {
            if pos + 1 >= args.len() {
                eprintln!("--baseline needs a file path");
                std::process::exit(2);
            }
            args[pos + 1].clone()
        });
        let opts = exp_check::CheckOpts {
            deny_warnings: args.iter().any(|a| a == "--deny-warnings"),
            json,
            matrix: args.iter().any(|a| a == "--matrix"),
            baseline_path,
        };
        std::process::exit(exp_check::run(&opts));
    }

    if names.is_empty() || names.iter().any(|n| n.as_str() == "list") {
        eprintln!("usage: ncar-bench [--json] [--jobs N] <experiment>... | all | list\n");
        eprintln!(
            "       ncar-bench check [--deny-warnings] [--json] [--matrix] [--baseline FILE]"
        );
        eprintln!(
            "       ncar-bench serve [--addr A] [--workers N] [--cache-cap N] \
             [--admit-timeout SECS] [--state-dir DIR] [--drain-deadline SECS] \
             [--idle-timeout SECS] [--dispatchers N] [--pipeline-depth K] \
             [--fastpath BOOL] [--cluster N]"
        );
        eprintln!(
            "       ncar-bench submit <suite> [--addr A] [--machine M] [--param k=v]... \
             [--show-route true] [--pipeline N]"
        );
        eprintln!("       ncar-bench stats|shutdown|raw <line> [--addr A]");
        eprintln!("       ncar-bench drain [--addr A] [--deadline SECS] [--member K]");
        eprintln!("       ncar-bench metrics [--addr A] [--json true] [--watch SECS]");
        eprintln!(
            "       ncar-bench flood [--addr A] [--clients N] [--jobs M] [--suite s]... \
             [--pipeline K] [--cluster N]"
        );
        eprintln!("       ncar-bench perf [--smoke] [--out FILE] [--runs K] [--validate FILE]");
        eprintln!("experiments:");
        for (name, desc, _) in &exps {
            eprintln!("  {name:<12} {desc}");
        }
        std::process::exit(if names.is_empty() { 2 } else { 0 });
    }

    let run_all = names.iter().any(|n| n.as_str() == "all");
    let mut ran = 0;
    for (name, _desc, runner) in &exps {
        if run_all || names.iter().any(|n| n.as_str() == *name) {
            if !json {
                println!("==> {name}");
            }
            for artifact in runner() {
                if json {
                    println!("{}", artifact.to_json());
                } else {
                    println!("{}", artifact.render());
                }
            }
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no such experiment; try `ncar-bench list`");
        std::process::exit(2);
    }
}
