//! `ncar-bench check` — run the `sxcheck` analyzer: seeded-pathology
//! fixtures first (the checker's own self-test), then a traced run of the
//! stock kernel suite, then (with the `audit` feature) the cost-ledger
//! audit. All output is byte-identical across runs.

use ncar_kernels::membw::{copy_kernel, ia_kernel, xpose_kernel};
use ncar_kernels::radabs::radabs;
use ncar_suite::Instance;
use sxsim::{presets, Ftrace, Vm};

/// Trace the representative kernels of the suite under FTRACE regions.
/// Returns the Vm (ledger + trace still attached) and its Ftrace.
fn stock_suite() -> (Vm, Ftrace) {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    ft.region("copy", &mut vm, |vm| {
        copy_kernel(vm, Instance { n: 100_000, m: 10 });
    });
    ft.region("ia", &mut vm, |vm| {
        ia_kernel(vm, Instance { n: 100_000, m: 10 }, 42);
    });
    ft.region("xpose", &mut vm, |vm| {
        xpose_kernel(vm, Instance { n: 1_000, m: 1_000 });
    });
    ft.region("radabs", &mut vm, |vm| {
        radabs(vm, 512, 18);
    });
    (vm, ft)
}

/// Run the full check. Returns the process exit code:
/// - `2` if a seeded pathology was not flagged or a clean fixture was
///   (the checker itself is broken);
/// - `1` if `--deny-warnings` and any findings exist;
/// - `0` otherwise.
pub fn run(deny_warnings: bool) -> i32 {
    let mut findings = 0usize;
    let mut self_test_ok = true;

    println!("==> sxcheck fixtures (seeded pathologies + clean controls)");
    for mut f in sxcheck::fixtures::run_all() {
        let expect = if f.expect.is_empty() {
            "expects no findings".to_string()
        } else {
            format!("expects {}", f.expect.join(", "))
        };
        println!("[{}] {expect}", f.name);
        print!("{}", f.report.render());
        findings += f.report.len();
        if !f.satisfied() {
            self_test_ok = false;
            println!("FIXTURE FAILED: {} did not produce the expected report", f.name);
        }
    }

    println!("\n==> sxcheck stock suite (COPY/IA/XPOSE/RADABS traced)");
    let (mut vm, ft) = stock_suite();
    let model = vm.model().clone();
    let trace = vm.take_trace().expect("stock suite runs traced");
    let mut report = sxcheck::check_trace(&model, &trace);
    print!("{}", report.render());
    findings += report.len();

    audit_section(&vm, &trace, &ft, &mut findings);

    if !self_test_ok {
        println!("\nsxcheck self-test FAILED");
        return 2;
    }
    if deny_warnings && findings > 0 {
        println!("\n--deny-warnings: {findings} findings, failing");
        return 1;
    }
    0
}

#[cfg(feature = "audit")]
fn audit_section(vm: &Vm, trace: &sxsim::OpTrace, ft: &Ftrace, findings: &mut usize) {
    println!("\n==> ledger audit (feature `audit`)");
    let mut report = sxcheck::Report::new();
    report.extend(sxcheck::audit::audit_vm(vm, trace));
    report.extend(sxcheck::audit::audit_ftrace(vm, ft));
    print!("{}", report.render());
    *findings += report.len();
}

#[cfg(not(feature = "audit"))]
fn audit_section(_vm: &Vm, _trace: &sxsim::OpTrace, _ft: &Ftrace, _findings: &mut usize) {
    println!("\n==> ledger audit skipped (rebuild with `--features audit`)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_suite_report_is_deterministic() {
        let render = || {
            let (mut vm, _ft) = stock_suite();
            let model = vm.model().clone();
            let trace = vm.take_trace().unwrap();
            sxcheck::check_trace(&model, &trace).render()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn stock_suite_flags_only_the_gather_probe() {
        let (mut vm, _ft) = stock_suite();
        let model = vm.model().clone();
        let trace = vm.take_trace().unwrap();
        let mut report = sxcheck::check_trace(&model, &trace);
        // IA is a gather-bandwidth probe, so SXC003 on `ia` is the expected
        // (and correct) characterization; nothing else should fire.
        for d in report.diagnostics() {
            assert_eq!((d.code, d.region.as_str()), ("SXC003", "ia"), "{d}");
        }
    }

    #[cfg(feature = "audit")]
    #[test]
    fn stock_suite_ledger_audits_clean() {
        let (mut vm, ft) = stock_suite();
        let trace = vm.take_trace().unwrap();
        assert!(sxcheck::audit::audit_vm(&vm, &trace).is_empty());
        assert!(sxcheck::audit::audit_ftrace(&vm, &ft).is_empty());
    }
}
