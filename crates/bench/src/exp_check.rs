//! `ncar-bench check` — run the `sxcheck` analyzer: seeded-pathology
//! fixtures first (the checker's own self-test), then a traced run of the
//! stock kernel suite, then (with the `audit` feature) the cost-ledger
//! audit. All output is byte-identical across runs.
//!
//! Three gating surfaces stack on the base run:
//!
//! - `--json` emits one `sxcheck-v1` document (via [`ncar_suite::Json`],
//!   so it round-trips through the same parser the daemon wire protocol
//!   uses) instead of the human report;
//! - `--matrix` runs the stock suite on *every* machine preset, not just
//!   the benchmarked SX-4 — the lints are model-relative, so a stride
//!   that is harmless on 1024 banks can collide on 256;
//! - `sxcheck.baseline` (or `--baseline FILE`) suppresses *known*
//!   findings per (machine, code, region), so `--matrix --deny-warnings`
//!   fails CI only on findings that are new.
//!
//! Exit codes: `2` when the checker itself is broken (a seeded pathology
//! not flagged, a clean fixture flagged, an unreadable baseline); `1`
//! when `--deny-warnings` and gating findings exist; `0` otherwise. In
//! matrix mode the gate counts only non-baselined stock-suite findings;
//! in single mode it counts everything, fixtures included — the fixtures
//! *must* report, so plain `check --deny-warnings` always exits 1.

use std::path::Path;

use ncar_kernels::membw::{copy_kernel, ia_kernel, xpose_kernel};
use ncar_kernels::radabs::radabs;
use ncar_suite::{Instance, Json};
use sxcheck::fixtures::Fixture;
use sxcheck::{Baseline, Diagnostic};
use sxsim::{presets, Ftrace, MachineModel, Vm};

/// Default suppression file, looked for in the working directory when
/// `--matrix` runs without an explicit `--baseline`.
pub const BASELINE_FILE: &str = "sxcheck.baseline";

/// What the `check` subcommand was asked to do.
#[derive(Debug, Clone, Default)]
pub struct CheckOpts {
    /// Fail (exit 1) when gating findings exist.
    pub deny_warnings: bool,
    /// Emit the `sxcheck-v1` JSON document instead of the text report.
    pub json: bool,
    /// Run the stock suite on every machine preset.
    pub matrix: bool,
    /// Explicit suppression file (overrides the [`BASELINE_FILE`] probe).
    pub baseline_path: Option<String>,
}

/// Trace the representative kernels of the suite under FTRACE regions on
/// the given machine. Returns the Vm (ledger + trace attached) and its
/// Ftrace.
fn stock_suite_on(model: MachineModel) -> (Vm, Ftrace) {
    let mut vm = Vm::new(model);
    vm.start_trace();
    let mut ft = Ftrace::new();
    ft.region("copy", &mut vm, |vm| {
        copy_kernel(vm, Instance { n: 100_000, m: 10 });
    });
    ft.region("ia", &mut vm, |vm| {
        ia_kernel(vm, Instance { n: 100_000, m: 10 }, 42);
    });
    ft.region("xpose", &mut vm, |vm| {
        xpose_kernel(vm, Instance { n: 1_000, m: 1_000 });
    });
    ft.region("radabs", &mut vm, |vm| {
        radabs(vm, 512, 18);
    });
    (vm, ft)
}

/// The stock suite on the benchmarked SX-4 (the single-machine default).
#[cfg(test)]
fn stock_suite() -> (Vm, Ftrace) {
    stock_suite_on(presets::sx4_benchmarked())
}

/// One machine's stock-suite findings, partitioned against the baseline.
struct MachineRun {
    machine: &'static str,
    /// (diagnostic, suppressed-by-baseline).
    findings: Vec<(Diagnostic, bool)>,
    rendered: String,
}

/// Run the stock suite on each machine key and judge it. Single-machine
/// mode also runs the ledger audit (whose findings gate like the lints).
fn run_machines(keys: &[&'static str], baseline: &Baseline) -> (Vec<MachineRun>, usize) {
    let mut runs = Vec::new();
    let mut audit_findings = 0usize;
    for &key in keys {
        let model = presets::by_name(key).expect("preset names resolve");
        let (mut vm, ft) = stock_suite_on(model);
        let model = vm.model().clone();
        let trace = vm.take_trace().expect("stock suite runs traced");
        let mut report = sxcheck::check_trace(&model, &trace);
        if keys.len() == 1 {
            audit_findings = audit_extend(&vm, &trace, &ft, &mut report);
        }
        let rendered = report.render();
        let findings = report
            .diagnostics()
            .iter()
            .map(|d| (d.clone(), baseline.is_suppressed(key, d)))
            .collect();
        runs.push(MachineRun { machine: key, findings, rendered });
    }
    (runs, audit_findings)
}

#[cfg(feature = "audit")]
fn audit_extend(
    vm: &Vm,
    trace: &sxsim::OpTrace,
    ft: &Ftrace,
    report: &mut sxcheck::Report,
) -> usize {
    let before = report.len();
    report.extend(sxcheck::audit::audit_vm(vm, trace));
    report.extend(sxcheck::audit::audit_ftrace(vm, ft));
    report.len() - before
}

#[cfg(not(feature = "audit"))]
fn audit_extend(
    _vm: &Vm,
    _trace: &sxsim::OpTrace,
    _ft: &Ftrace,
    _report: &mut sxcheck::Report,
) -> usize {
    0
}

/// Resolve and parse the suppression baseline for this invocation.
fn load_baseline(opts: &CheckOpts) -> Result<Baseline, String> {
    let path = match (&opts.baseline_path, opts.matrix) {
        (Some(p), _) => Some(p.clone()),
        (None, true) if Path::new(BASELINE_FILE).exists() => Some(BASELINE_FILE.to_string()),
        _ => None,
    };
    let Some(path) = path else { return Ok(Baseline::empty()) };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Run the full check with the standard fixtures.
pub fn run(opts: &CheckOpts) -> i32 {
    let baseline = match load_baseline(opts) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("sxcheck: {msg}");
            return 2;
        }
    };
    run_with(opts, sxcheck::fixtures::run_all(), &baseline)
}

/// The engine behind [`run`], parameterized over the fixture set (so the
/// exit-code contract tests can inject a broken fixture) and an already
/// parsed baseline.
fn run_with(opts: &CheckOpts, fixtures: Vec<Fixture>, baseline: &Baseline) -> i32 {
    let mut self_test_ok = true;
    let mut fixture_findings = 0usize;
    let mut fixture_rows: Vec<(Fixture, bool, String)> = Vec::new();
    for mut f in fixtures {
        let satisfied = f.satisfied();
        if !satisfied {
            self_test_ok = false;
        }
        fixture_findings += f.report.len();
        let rendered = f.report.render();
        fixture_rows.push((f, satisfied, rendered));
    }

    let keys: Vec<&'static str> =
        if opts.matrix { presets::PRESET_NAMES.to_vec() } else { vec!["sx4-9.2"] };
    let (runs, audit_findings) = run_machines(&keys, baseline);

    let stock_findings: usize = runs.iter().map(|r| r.findings.len()).sum();
    let suppressed: usize =
        runs.iter().map(|r| r.findings.iter().filter(|(_, s)| *s).count()).sum();
    let fresh = stock_findings - suppressed;
    let total = fixture_findings + stock_findings;

    // What --deny-warnings gates on: in matrix mode only un-baselined
    // stock-suite findings; in single mode everything (the historical
    // contract — the fixtures are *supposed* to report).
    let gating = if opts.matrix { fresh } else { total };

    let exit = if !self_test_ok {
        2
    } else if opts.deny_warnings && gating > 0 {
        1
    } else {
        0
    };

    if opts.json {
        println!("{}", to_json(opts, &fixture_rows, &runs, self_test_ok, exit));
        return exit;
    }

    println!("==> sxcheck fixtures (seeded pathologies + clean controls)");
    for (f, satisfied, rendered) in &fixture_rows {
        let expect = if f.expect.is_empty() {
            "expects no findings".to_string()
        } else {
            format!("expects {}", f.expect.join(", "))
        };
        println!("[{}] {expect}", f.name);
        print!("{rendered}");
        if !satisfied {
            println!("FIXTURE FAILED: {} did not produce the expected report", f.name);
        }
    }

    for r in &runs {
        println!("\n==> sxcheck stock suite on {} (COPY/IA/XPOSE/RADABS traced)", r.machine);
        print!("{}", r.rendered);
        for (d, s) in &r.findings {
            if *s {
                println!("  baselined: {}", Baseline::line_for(r.machine, d));
            }
        }
    }
    if !opts.matrix {
        audit_note(audit_findings);
    }

    if !self_test_ok {
        println!("\nsxcheck self-test FAILED");
    } else if opts.deny_warnings && gating > 0 {
        if opts.matrix {
            println!(
                "\n--deny-warnings: {fresh} new finding(s) not in the baseline, failing; \
                 to accept them, add:"
            );
            for r in &runs {
                for (d, s) in &r.findings {
                    if !*s {
                        println!("  {}", Baseline::line_for(r.machine, d));
                    }
                }
            }
        } else {
            println!("\n--deny-warnings: {gating} findings, failing");
        }
    } else if opts.matrix {
        println!(
            "\nmatrix clean: {stock_findings} finding(s), {suppressed} baselined, {fresh} new"
        );
    }
    exit
}

#[cfg(feature = "audit")]
fn audit_note(findings: usize) {
    println!("\n==> ledger audit (feature `audit`): {findings} finding(s)");
}

#[cfg(not(feature = "audit"))]
fn audit_note(_findings: usize) {
    println!("\n==> ledger audit skipped (rebuild with `--features audit`)");
}

fn diag_json(d: &Diagnostic, suppressed: Option<bool>) -> Json {
    let mut fields = vec![
        ("severity".to_string(), Json::Str(d.severity.label().to_string())),
        ("code".to_string(), Json::Str(d.code.to_string())),
        ("region".to_string(), Json::Str(d.region.clone())),
        ("message".to_string(), Json::Str(d.message.clone())),
        ("hint".to_string(), Json::Str(d.hint.clone())),
    ];
    if let Some(s) = suppressed {
        fields.push(("suppressed".to_string(), Json::Bool(s)));
    }
    Json::Obj(fields)
}

/// The stable `sxcheck-v1` document. Field order is fixed; every value
/// goes through [`ncar_suite::Json`], so the output round-trips through
/// `Json::parse` byte-identically.
fn to_json(
    opts: &CheckOpts,
    fixture_rows: &[(Fixture, bool, String)],
    runs: &[MachineRun],
    self_test_ok: bool,
    exit: i32,
) -> Json {
    let fixtures = Json::Arr(
        fixture_rows
            .iter()
            .map(|(f, satisfied, _)| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(f.name.to_string())),
                    (
                        "expect".to_string(),
                        Json::Arr(f.expect.iter().map(|c| Json::Str(c.to_string())).collect()),
                    ),
                    ("satisfied".to_string(), Json::Bool(*satisfied)),
                    ("findings".to_string(), Json::Num(f.report.len() as f64)),
                ])
            })
            .collect(),
    );
    let machines = Json::Arr(
        runs.iter()
            .map(|r| {
                let new = r.findings.iter().filter(|(_, s)| !*s).count();
                Json::Obj(vec![
                    ("machine".to_string(), Json::Str(r.machine.to_string())),
                    (
                        "findings".to_string(),
                        Json::Arr(r.findings.iter().map(|(d, s)| diag_json(d, Some(*s))).collect()),
                    ),
                    ("new".to_string(), Json::Num(new as f64)),
                    ("suppressed".to_string(), Json::Num((r.findings.len() - new) as f64)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("schema".to_string(), Json::Str("sxcheck-v1".to_string())),
        ("mode".to_string(), Json::Str(if opts.matrix { "matrix" } else { "single" }.to_string())),
        ("deny_warnings".to_string(), Json::Bool(opts.deny_warnings)),
        ("self_test_ok".to_string(), Json::Bool(self_test_ok)),
        ("fixtures".to_string(), fixtures),
        ("machines".to_string(), machines),
        ("exit".to_string(), Json::Num(exit as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_suite_report_is_deterministic() {
        let render = || {
            let (mut vm, _ft) = stock_suite();
            let model = vm.model().clone();
            let trace = vm.take_trace().unwrap();
            sxcheck::check_trace(&model, &trace).render()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn stock_suite_flags_only_the_gather_probe() {
        let (mut vm, _ft) = stock_suite();
        let model = vm.model().clone();
        let trace = vm.take_trace().unwrap();
        let mut report = sxcheck::check_trace(&model, &trace);
        // IA is a gather-bandwidth probe, so SXC003 on `ia` is the expected
        // (and correct) characterization; nothing else should fire.
        for d in report.diagnostics() {
            assert_eq!((d.code, d.region.as_str()), ("SXC003", "ia"), "{d}");
        }
    }

    #[cfg(feature = "audit")]
    #[test]
    fn stock_suite_ledger_audits_clean() {
        let (mut vm, ft) = stock_suite();
        let trace = vm.take_trace().unwrap();
        assert!(sxcheck::audit::audit_vm(&vm, &trace).is_empty());
        assert!(sxcheck::audit::audit_ftrace(&vm, &ft).is_empty());
    }

    // --- exit-code contract -------------------------------------------

    fn opts(deny: bool, matrix: bool) -> CheckOpts {
        CheckOpts { deny_warnings: deny, json: true, matrix, baseline_path: None }
    }

    #[test]
    fn exit_0_without_deny_even_with_findings() {
        let code = run_with(&opts(false, false), sxcheck::fixtures::run_all(), &Baseline::empty());
        assert_eq!(code, 0);
    }

    #[test]
    fn exit_1_when_deny_and_findings_exist() {
        // The seeded pathologies *must* report, so plain --deny-warnings
        // always trips — this is the contract ci.sh relies on.
        let code = run_with(&opts(true, false), sxcheck::fixtures::run_all(), &Baseline::empty());
        assert_eq!(code, 1);
    }

    #[test]
    fn exit_2_when_a_fixture_is_broken() {
        // A fixture that expects a code its report does not contain means
        // the checker itself is broken — worse than findings.
        let broken =
            Fixture { name: "broken", expect: &["SXC999"], report: sxcheck::Report::new() };
        let code = run_with(&opts(false, false), vec![broken], &Baseline::empty());
        assert_eq!(code, 2);
    }

    #[test]
    fn exit_2_beats_exit_1_under_deny() {
        let broken =
            Fixture { name: "broken", expect: &["SXC999"], report: sxcheck::Report::new() };
        let code = run_with(&opts(true, false), vec![broken], &Baseline::empty());
        assert_eq!(code, 2);
    }

    #[test]
    fn unreadable_baseline_is_exit_2() {
        let o = CheckOpts {
            deny_warnings: false,
            json: true,
            matrix: true,
            baseline_path: Some("/nonexistent/sxcheck.baseline".to_string()),
        };
        assert_eq!(run(&o), 2);
    }

    // --- matrix + baseline gating -------------------------------------

    /// Baseline text accepting every current matrix finding.
    fn full_baseline() -> Baseline {
        let (runs, _) = run_machines(presets::PRESET_NAMES.as_ref(), &Baseline::empty());
        let lines: Vec<String> = runs
            .iter()
            .flat_map(|r| r.findings.iter().map(|(d, _)| Baseline::line_for(r.machine, d)))
            .collect();
        Baseline::parse(&lines.join("\n")).unwrap()
    }

    #[test]
    fn matrix_deny_passes_with_a_complete_baseline() {
        let code = run_with(&opts(true, true), sxcheck::fixtures::run_all(), &full_baseline());
        assert_eq!(code, 0, "every stock finding baselined => nothing new => clean gate");
    }

    #[test]
    fn matrix_deny_fails_without_a_baseline_iff_findings_exist() {
        let (runs, _) = run_machines(presets::PRESET_NAMES.as_ref(), &Baseline::empty());
        let any: usize = runs.iter().map(|r| r.findings.len()).sum();
        let code = run_with(&opts(true, true), sxcheck::fixtures::run_all(), &Baseline::empty());
        assert_eq!(code, if any > 0 { 1 } else { 0 });
        assert!(any > 0, "the gather probe reports on the vector machines");
    }

    #[test]
    fn committed_baseline_matches_the_current_matrix() {
        // The repo's sxcheck.baseline must stay in sync with the lints:
        // every current finding suppressed, no stale machine keys needed.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../sxcheck.baseline");
        let text = std::fs::read_to_string(&manifest).expect("committed sxcheck.baseline");
        let baseline = Baseline::parse(&text).unwrap();
        let (runs, _) = run_machines(presets::PRESET_NAMES.as_ref(), &Baseline::empty());
        for r in &runs {
            for (d, _) in &r.findings {
                assert!(
                    baseline.is_suppressed(r.machine, d),
                    "finding missing from sxcheck.baseline: {}",
                    Baseline::line_for(r.machine, d)
                );
            }
        }
    }

    // --- sxcheck-v1 JSON ----------------------------------------------

    #[test]
    fn json_document_round_trips_through_core_json() {
        let baseline = full_baseline();
        let mut fixture_rows = Vec::new();
        for mut f in sxcheck::fixtures::run_all() {
            let satisfied = f.satisfied();
            let rendered = f.report.render();
            fixture_rows.push((f, satisfied, rendered));
        }
        let (runs, _) = run_machines(presets::PRESET_NAMES.as_ref(), &baseline);
        let doc = to_json(&opts(true, true), &fixture_rows, &runs, true, 0);
        let text = doc.to_string();
        let reparsed = Json::parse(&text).expect("sxcheck-v1 parses");
        assert_eq!(reparsed.to_string(), text, "print -> parse -> print is a fixed point");
        // Spot-check the stable envelope.
        assert!(text.starts_with("{\"schema\":\"sxcheck-v1\""), "{}", &text[..60]);
        assert!(text.contains("\"mode\":\"matrix\""));
    }

    #[test]
    fn json_is_deterministic_across_runs() {
        let build = || {
            let (runs, _) = run_machines(&["sx4-9.2"], &Baseline::empty());
            to_json(&opts(false, false), &[], &runs, true, 0).to_string()
        };
        assert_eq!(build(), build());
    }
}
