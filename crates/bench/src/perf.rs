//! `ncar-bench perf` — the in-repo wall-clock harness that proves the
//! simulator's own hot path is fast.
//!
//! The paper's argument is about *sustained* performance; ours is too, one
//! level down: the analytic simulator must charge millions of vector ops
//! per second or the daemon serves machine models slower than the models
//! run. This subcommand times fixed macro-workloads (the Figure 5 ladder's
//! charge stream, the Figure 6 RFFT families, a short CCM2 run, an sxd
//! flood) with warmup + median-of-K and writes `BENCH_<pr>.json` so every
//! later PR can compare against the trajectory.
//!
//! Schema (`ncar-bench-perf-v1`):
//!
//! ```text
//! { "schema": "ncar-bench-perf-v1", "smoke": bool, "runs": K,
//!   "machine": "sx4-9.2",
//!   "workloads": { "<name>": { "wall_ms": f, "sim_seconds": f,
//!                              "ops_charged": u, "ops_per_sec": f } } }
//! ```
//!
//! `wall_ms` is host wall-clock (median of K timed runs after one warmup;
//! for an even K the two middle samples are averaged); `sim_seconds` is
//! simulated seconds charged by one run; `ops_charged` is the number of
//! vector operations the ledger recorded — except for `sxd_flood`, where
//! it counts completed *jobs* and `ops_per_sec` is jobs/s, a latency
//! number not comparable to the others; `ops_per_sec` is
//! `ops_charged / wall_ms * 1000` — the headline throughput number the
//! acceptance criteria compare across PRs.
//!
//! `climate_t42` runs through the charge-program cache (record one step,
//! replay it per timed run), so its wall time — like the other
//! charge-stream workloads — measures the simulator's charging
//! throughput, not the functional model arithmetic around it.

use std::time::Instant;

use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution};
use ncar_kernels::fft::{charge_transform, LoopOrder};
use ncar_suite::{constant_volume_ladder, rfft_instances, xpose_ladder, FftFamily, Json};
use sxd::{flood, Client, FloodConfig, Server, ServerConfig};
use sxsim::{presets, Access, MachineModel, VecOp, Vm, VopClass};

use crate::serve;
use crate::Experiment;

/// Machine every charge-stream workload runs on (the benchmarked SX-4).
const MACHINE: &str = "sx4-9.2";

fn machine() -> MachineModel {
    presets::by_name(MACHINE).expect("the benchmarked SX-4 preset exists")
}

/// One measured workload: median host wall time over `runs` timed
/// executions (after one warmup), plus the deterministic per-run ledger.
struct Sample {
    wall_ms: f64,
    sim_seconds: f64,
    ops_charged: u64,
    ops_per_sec: f64,
}

/// Median of the timed samples. For an even count the two middle samples
/// are averaged — indexing `len / 2` alone picks the upper-middle one,
/// which skews the reported wall time high on noisy hosts.
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(f64::total_cmp);
    let mid = walls.len() / 2;
    if walls.len().is_multiple_of(2) {
        0.5 * (walls[mid - 1] + walls[mid])
    } else {
        walls[mid]
    }
}

fn measure(runs: usize, mut f: impl FnMut() -> (f64, u64)) -> Sample {
    f(); // warmup: page in code and data, fill allocator pools
    let mut walls = Vec::with_capacity(runs);
    let (mut sim_seconds, mut ops_charged) = (0.0, 0);
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let (s, o) = f();
        walls.push(t.elapsed().as_secs_f64() * 1e3);
        sim_seconds = s;
        ops_charged = o;
    }
    let wall_ms = median(&mut walls);
    let ops_per_sec = if wall_ms > 0.0 { ops_charged as f64 / wall_ms * 1e3 } else { 0.0 };
    Sample { wall_ms, sim_seconds, ops_charged, ops_per_sec }
}

/// Replay the Figure 5 charge stream: for every ladder instance, the COPY,
/// IA (gather + scatter) and XPOSE kernels' vector operations, with the
/// same per-op fidelity the kernels charge (`m` ops of length `n`, or
/// `m*n` stride-`n` column ops for XPOSE). Pure simulator hot path — no
/// functional data movement — so wall time is charging throughput.
fn fig5_ladder(volume: usize, xpose_max_n: usize) -> (f64, u64) {
    let mut vm = Vm::new(machine());
    for inst in constant_volume_ladder(volume) {
        let copy =
            VecOp::new(inst.n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(1)]);
        let ia_gather =
            VecOp::new(inst.n, VopClass::Logical, &[Access::Indexed], &[Access::Stride(1)]);
        let ia_scatter =
            VecOp::new(inst.n, VopClass::Logical, &[Access::Stride(1)], &[Access::Indexed]);
        vm.charge_vector_op_repeated(&copy, inst.m);
        vm.charge_vector_op_repeated(&ia_gather, inst.m);
        vm.charge_vector_op_repeated(&ia_scatter, inst.m);
    }
    for inst in xpose_ladder(volume, xpose_max_n) {
        let column =
            VecOp::new(inst.n, VopClass::Logical, &[Access::Stride(1)], &[Access::Stride(inst.n)]);
        vm.charge_vector_op_repeated(&column, inst.m * inst.n);
    }
    (vm.lifetime_cost().seconds(vm.model().clock_ns), vm.stats().vector_ops)
}

/// The Figure 6 regime: charge the RFFT (axis-fastest) transform for every
/// length of all three families, repeated `reps` times.
fn fig6_rfft(volume: usize, reps: usize) -> (f64, u64) {
    let mut vm = Vm::new(machine());
    for _ in 0..reps.max(1) {
        for family in FftFamily::ALL {
            for inst in rfft_instances(family, volume) {
                charge_transform(&mut vm, inst.n, inst.m, LoopOrder::AxisFastest);
            }
        }
    }
    (vm.lifetime_cost().seconds(vm.model().clock_ns), vm.stats().vector_ops)
}

/// A short CCM2 run at T42 on 4 simulated processors, through the charge
/// program cache: one real step records the step's charge sequence
/// (outside the timed region, like the other workloads' setup), and the
/// returned closure replays it `steps` times per timed run — the
/// record-once/replay-many path the applications use. Each replay's
/// ledger is bit-identical to a real step's, so `sim_seconds` and
/// `ops_charged` match the op-by-op run while wall time measures pure
/// charging throughput.
fn climate_t42(steps: usize, smoke: bool) -> impl FnMut() -> (f64, u64) {
    let config = if smoke {
        Ccm2Config::adiabatic(Resolution::T42)
    } else {
        Ccm2Config::benchmark(Resolution::T42)
    };
    let mut model = Ccm2Proxy::new(config, machine());
    let (_, program) = model.record_step_program(4);
    move || {
        let ops_before = model.op_stats().vector_ops;
        let mut sim_seconds = 0.0;
        for _ in 0..steps.max(1) {
            sim_seconds += model.replay_step(&program).seconds;
        }
        (sim_seconds, model.op_stats().vector_ops - ops_before)
    }
}

/// An in-process sxd flood: bind a daemon on an ephemeral port, flood it
/// with light kernel suites (the cache-heavy ensemble regime), and read
/// the suite ledger back from STATS. As of BENCH_7 the flood runs the
/// pipelined serving path: the daemon allows `pipeline` frames in flight
/// per connection and each client batches its submits to that depth, so
/// repeat configurations resolve on the reactor-thread fast path instead
/// of round-tripping through the dispatcher pool one at a time.
///
/// **`ops_charged` counts completed *jobs*, not vector operations** — a
/// job is a whole kernel suite round-tripped through the protocol. Its
/// `ops_per_sec` is therefore jobs per second and is NOT comparable to
/// the charge-stream workloads' vector-ops-per-second headline numbers.
/// It is also not comparable across BENCH generations once the serving
/// shape changes: BENCH_6 measured one-frame-per-round-trip serving;
/// BENCH_7 measures the pipelined fast path at larger job volumes.
fn sxd_flood(
    experiments: &[Experiment],
    clients: usize,
    jobs: usize,
    suites: &[&str],
    pipeline: usize,
) -> Result<(f64, u64), String> {
    let server_config = ServerConfig { pipeline_depth: pipeline.max(1), ..ServerConfig::default() };
    let server = Server::bind(serve::registry(experiments), server_config)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let config = FloodConfig {
        addr: addr.clone(),
        clients,
        jobs,
        suites: suites.iter().map(|s| s.to_string()).collect(),
        machine: MACHINE.to_string(),
        pipeline,
    };
    let outcome = flood(&config).map_err(|e| format!("flood: {e}"))?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let sim_seconds = match stats.get("suite_seconds") {
        Some(Json::Obj(members)) => members.iter().filter_map(|(_, v)| v.as_f64()).sum(),
        _ => 0.0,
    };
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    handle.join().map_err(|_| "daemon thread panicked".to_string())?.map_err(|e| e.to_string())?;
    if !outcome.ok() {
        return Err(format!("flood acceptance problems: {:?}", outcome.problems));
    }
    Ok((sim_seconds, outcome.completed as u64))
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn render(smoke: bool, runs: usize, results: &[(&str, Sample)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"ncar-bench-perf-v1\",\"smoke\":{smoke},\"runs\":{runs},\
         \"machine\":\"{MACHINE}\",\"workloads\":{{"
    ));
    for (i, (name, s)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"wall_ms\":{},\"sim_seconds\":{},\"ops_charged\":{},\
             \"ops_per_sec\":{}}}",
            json_f64(s.wall_ms),
            json_f64(s.sim_seconds),
            s.ops_charged,
            json_f64(s.ops_per_sec),
        ));
    }
    out.push_str("}}");
    out
}

/// Validate a `BENCH_*.json` file against the `ncar-bench-perf-v1` schema.
fn validate_text(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("ncar-bench-perf-v1") => {}
        other => return Err(format!("schema must be \"ncar-bench-perf-v1\", got {other:?}")),
    }
    if doc.get("smoke").and_then(Json::as_bool).is_none() {
        return Err("missing boolean \"smoke\"".into());
    }
    if doc.get("runs").and_then(Json::as_u64).is_none() {
        return Err("missing integer \"runs\"".into());
    }
    let workloads = match doc.get("workloads") {
        Some(Json::Obj(members)) => members,
        _ => return Err("missing object \"workloads\"".into()),
    };
    if workloads.is_empty() {
        return Err("\"workloads\" is empty".into());
    }
    for (name, w) in workloads {
        for key in ["wall_ms", "sim_seconds", "ops_charged", "ops_per_sec"] {
            let v = w
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("workload {name:?} lacks numeric {key:?}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("workload {name:?} has bad {key:?}: {v}"));
            }
        }
        if w.get("ops_charged").and_then(Json::as_u64).unwrap_or(0) == 0 {
            return Err(format!("workload {name:?} charged zero ops"));
        }
    }
    Ok(workloads.len())
}

/// `ncar-bench perf [--smoke] [--out FILE] [--runs K] [--validate FILE]`
pub fn cmd_perf(args: &[String], experiments: &[Experiment]) -> i32 {
    let mut smoke = false;
    let mut out_path = "BENCH_7.json".to_string();
    let mut runs: Option<usize> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage("--out needs a path"),
            },
            "--runs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(k)) if k > 0 => runs = Some(k),
                _ => return usage("--runs needs a positive count"),
            },
            "--validate" => match it.next() {
                Some(v) => validate = Some(v.clone()),
                None => return usage("--validate needs a path"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path) {
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                1
            }
            Ok(text) => match validate_text(&text) {
                Ok(n) => {
                    println!("{path}: valid ncar-bench-perf-v1 ({n} workloads)");
                    0
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    1
                }
            },
        };
    }

    let runs = runs.unwrap_or(if smoke { 3 } else { 5 });
    // Workload sizes: full exercises the ladders at the paper's volumes;
    // smoke shrinks everything so CI finishes in seconds.
    let (fig5_volume, xpose_max_n) = if smoke { (20_000, 128) } else { (1_000_000, 1000) };
    let (fig6_volume, fig6_reps) = if smoke { (20_000, 2) } else { (1_000_000, 20) };
    let climate_steps = if smoke { 1 } else { 2 };
    let (flood_clients, flood_jobs, flood_pipeline) = if smoke { (2, 16, 4) } else { (8, 512, 8) };
    let flood_suites: &[&str] = if smoke { &["table3"] } else { &["table3", "correctness"] };

    let mut results: Vec<(&str, Sample)> = Vec::new();

    eprintln!("perf: fig5_ladder (volume {fig5_volume}, {runs} runs)...");
    results.push(("fig5_ladder", measure(runs, || fig5_ladder(fig5_volume, xpose_max_n))));

    eprintln!("perf: fig6_rfft (volume {fig6_volume} x{fig6_reps}, {runs} runs)...");
    results.push(("fig6_rfft", measure(runs, || fig6_rfft(fig6_volume, fig6_reps))));

    eprintln!("perf: climate_t42 ({climate_steps} steps, {runs} runs)...");
    results.push(("climate_t42", measure(runs, climate_t42(climate_steps, smoke))));

    eprintln!(
        "perf: sxd_flood ({flood_clients} clients x {flood_jobs} jobs, \
         pipeline {flood_pipeline}, {runs} runs)..."
    );
    let mut flood_err = None;
    results.push((
        "sxd_flood",
        measure(runs, || {
            match sxd_flood(experiments, flood_clients, flood_jobs, flood_suites, flood_pipeline) {
                Ok(v) => v,
                Err(e) => {
                    flood_err = Some(e);
                    (0.0, 0)
                }
            }
        }),
    ));
    if let Some(e) = flood_err {
        eprintln!("error: sxd_flood workload failed: {e}");
        return 1;
    }

    let text = render(smoke, runs, &results);
    if let Err(e) = validate_text(&text) {
        eprintln!("error: emitted JSON fails its own schema: {e}");
        return 1;
    }
    if let Err(e) = std::fs::write(&out_path, format!("{text}\n")) {
        eprintln!("error: cannot write {out_path}: {e}");
        return 1;
    }

    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>14}",
        "workload", "wall_ms", "sim_seconds", "ops_charged", "ops_per_sec"
    );
    for (name, s) in &results {
        println!(
            "{name:<14} {:>12.3} {:>14.4} {:>14} {:>14.0}",
            s.wall_ms, s.sim_seconds, s.ops_charged, s.ops_per_sec
        );
    }
    println!("wrote {out_path}");
    0
}

fn usage(detail: &str) -> i32 {
    eprintln!("error: {detail}");
    eprintln!("usage: ncar-bench perf [--smoke] [--out FILE] [--runs K] [--validate FILE]");
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_charge_and_account() {
        let (sim, ops) = fig5_ladder(512, 16);
        assert!(sim > 0.0 && ops > 0);
        let (sim, ops) = fig6_rfft(256, 1);
        assert!(sim > 0.0 && ops > 0);
        let (sim, ops) = climate_t42(1, true)();
        assert!(sim > 0.0 && ops > 0);
    }

    #[test]
    fn climate_replay_runs_are_deterministic_and_account_per_run() {
        let mut f = climate_t42(1, true);
        let (s1, o1) = f();
        let (s2, o2) = f();
        // Every run replays the same program against the same machine: the
        // same simulated seconds bitwise, and a per-run (not cumulative)
        // op count.
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(o1, o2);
    }

    #[test]
    fn median_averages_the_middle_pair_for_even_counts() {
        // Skewed even-length sample: upper-middle indexing would say 3.0.
        assert_eq!(median(&mut [1.0, 2.0, 3.0, 100.0]), 2.5);
        assert_eq!(median(&mut [100.0, 1.0]), 50.5);
        // Odd counts keep the true middle, regardless of input order.
        assert_eq!(median(&mut [9.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn schema_roundtrip_and_rejection() {
        let sample =
            Sample { wall_ms: 1.5, sim_seconds: 0.25, ops_charged: 42, ops_per_sec: 28_000.0 };
        let text = render(true, 3, &[("fig5_ladder", sample)]);
        assert_eq!(validate_text(&text), Ok(1));
        assert!(validate_text("{}").is_err());
        assert!(validate_text("{\"schema\":\"ncar-bench-perf-v1\"}").is_err());
        let zero = Sample { wall_ms: 1.0, sim_seconds: 0.0, ops_charged: 0, ops_per_sec: 0.0 };
        let text = render(true, 3, &[("w", zero)]);
        assert!(validate_text(&text).is_err(), "zero ops must be rejected");
    }
}
